//! # HiveMind
//!
//! A full-stack reproduction of *"HiveMind: A Hardware-Software System Stack
//! for Serverless Edge Swarms"* (ISCA 2022) in Rust.
//!
//! This facade crate re-exports every layer of the stack so applications can
//! depend on a single crate:
//!
//! * [`sim`] — deterministic discrete-event simulation kernel
//! * [`net`] — network substrate (wireless medium, switches, links, RPC costs)
//! * [`accel`] — FPGA acceleration fabric models (remote memory + RPC offload)
//! * [`faas`] — serverless substrate (containers, invokers, schedulers, data plane)
//! * [`swarm`] — edge devices and the physical world (drones, cars, fields, mazes)
//! * [`apps`] — the S1–S10 benchmark suite and multi-phase mission scenarios
//! * [`core`] — the HiveMind contribution: DSL, placement synthesis, controller
//!
//! ## Quickstart
//!
//! ```rust
//! use hivemind::core::experiment::{Experiment, ExperimentConfig};
//! use hivemind::core::platform::Platform;
//! use hivemind::apps::scenario::Scenario;
//!
//! let config = ExperimentConfig::scenario(Scenario::StationaryItems)
//!     .platform(Platform::HiveMind)
//!     .devices(16)
//!     .seed(7);
//! let outcome = Experiment::new(config).run();
//! assert!(outcome.mission.completed);
//! ```

pub use hivemind_accel as accel;
pub use hivemind_apps as apps;
pub use hivemind_core as core;
pub use hivemind_faas as faas;
pub use hivemind_net as net;
pub use hivemind_sim as sim;
pub use hivemind_swarm as swarm;

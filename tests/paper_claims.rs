//! The paper's headline quantitative claims, asserted as tests.
//!
//! Absolute numbers are not expected to match a real testbed; these encode
//! the *shapes* the reproduction must preserve: who wins, in which
//! direction, and (loosely) by what kind of factor.

use hivemind::accel::rpc_accel::{accelerated_rpc_profile, ACCEL_MRPS_PER_CORE, ACCEL_RTT_SECS};
use hivemind::apps::learning::{run_campaign, RetrainMode};
use hivemind::apps::scenario::Scenario;
use hivemind::apps::suite::App;
use hivemind::core::experiment::{Experiment, ExperimentConfig};
use hivemind::core::platform::Platform;
use hivemind::faas::dataplane::{DataPlane, ExchangeProtocol};
use hivemind::net::rpc::RpcProfile;
use hivemind::sim::rng::RngForge;
use hivemind::sim::time::{SimDuration, SimTime};

fn single(app: App, platform: Platform, seed: u64) -> hivemind::core::metrics::Outcome {
    Experiment::new(
        ExperimentConfig::single_app(app)
            .platform(platform)
            .duration_secs(30.0)
            .seed(seed),
    )
    .run()
}

/// Sec. 2.2 / Fig. 3a: networking is a first-order latency component of
/// centralized execution, and HiveMind slashes it (Fig. 12: 33% → 9.3%).
/// Measured at mission-rate load, where the centralized uplinks run near
/// saturation — the regime the paper's end-to-end numbers come from.
#[test]
fn network_share_drops_under_hivemind() {
    let at_stream_rate = |platform: Platform| {
        Experiment::new(
            ExperimentConfig::single_app(App::FaceRecognition)
                .platform(platform)
                .duration_secs(30.0)
                .input_scale(2.0)
                .rate_scale(4.0)
                .seed(1),
        )
        .run()
    };
    let cen = at_stream_rate(Platform::CentralizedFaaS)
        .tasks
        .network_fraction();
    let hm = at_stream_rate(Platform::HiveMind).tasks.network_fraction();
    assert!(
        hm < cen * 0.6,
        "network share must drop by a large factor: {cen:.3} -> {hm:.3}"
    );
}

/// Fig. 11 / Sec. 5.1: HiveMind beats centralized end to end.
///
/// Compared on latency samples pooled across replicates (seeds derived
/// from one root) rather than a single seed: the claim is about the
/// distributions, and single-seed medians sit close enough to flip on
/// borderline apps like S10.
#[test]
fn hivemind_beats_centralized_on_every_heavy_app() {
    let runner = hivemind::core::runner::Runner::from_env();
    for app in [App::TextRecognition, App::Slam, App::FaceRecognition] {
        let config = |platform: Platform| {
            ExperimentConfig::single_app(app)
                .platform(platform)
                .duration_secs(30.0)
                .seed(2)
        };
        let cen = runner.run_replicates(&config(Platform::CentralizedFaaS), 5);
        let hm = runner.run_replicates(&config(Platform::HiveMind), 5);
        assert!(
            hm.median_task_ms() < cen.median_task_ms(),
            "{app}: {0} vs {1}",
            hm.median_task_ms(),
            cen.median_task_ms()
        );
    }
}

/// Sec. 2.3's three exceptions: S3/S7 comparable across cloud and edge,
/// S4 better at the edge.
#[test]
fn light_apps_match_paper_exceptions() {
    for app in [App::DroneDetection, App::WeatherAnalytics] {
        let mut cen = single(app, Platform::CentralizedFaaS, 3);
        let mut edge = single(app, Platform::DistributedEdge, 3);
        let ratio = edge.median_task_ms() / cen.median_task_ms();
        assert!(
            (0.2..5.0).contains(&ratio),
            "{app} should be comparable, ratio {ratio}"
        );
    }
    let mut cen = single(App::ObstacleAvoidance, Platform::CentralizedFaaS, 3);
    let mut edge = single(App::ObstacleAvoidance, Platform::DistributedEdge, 3);
    assert!(
        edge.median_task_ms() < cen.median_task_ms(),
        "S4 wins at the edge"
    );
}

/// Sec. 2.3: on-board execution leaves Scenario B incomplete (battery).
#[test]
fn distributed_scenario_b_runs_out_of_battery() {
    let o = Experiment::new(
        ExperimentConfig::scenario(Scenario::MovingPeople)
            .platform(Platform::DistributedEdge)
            .seed(11),
    )
    .run();
    assert!(!o.mission.completed);
    assert!(o.battery.depleted > 0);

    let hm = Experiment::new(
        ExperimentConfig::scenario(Scenario::MovingPeople)
            .platform(Platform::HiveMind)
            .seed(11),
    )
    .run();
    assert!(hm.mission.completed);
    assert_eq!(hm.battery.depleted, 0);
}

/// Fig. 5a: serverless is far faster than an equal-cost fixed allocation.
#[test]
fn serverless_beats_fixed_allocation_by_a_wide_margin() {
    let mut fixed = single(App::FaceRecognition, Platform::CentralizedIaaS, 4);
    let mut faas = single(App::FaceRecognition, Platform::CentralizedFaaS, 4);
    assert!(
        fixed.p99_task_ms() > 3.0 * faas.p99_task_ms(),
        "fixed p99 {} vs serverless p99 {}",
        fixed.p99_task_ms(),
        faas.p99_task_ms()
    );
}

/// Fig. 6c: CouchDB ≫ direct RPC ≫ in-memory; remote memory ≈ in-memory
/// class.
#[test]
fn data_plane_protocol_ordering() {
    let mut plane = DataPlane::new();
    let mut rng = RngForge::new(5).stream("claims");
    let mut mean = |proto: ExchangeProtocol| {
        let mut total = 0.0;
        for i in 0..200u64 {
            let t = SimTime::ZERO + SimDuration::from_secs(i);
            total += plane.exchange(t, proto, 200_000, &mut rng).as_secs_f64();
        }
        total / 200.0
    };
    let db = mean(ExchangeProtocol::CouchDb);
    let rpc = mean(ExchangeProtocol::DirectRpc);
    let memory = mean(ExchangeProtocol::InMemory);
    let rdma = mean(ExchangeProtocol::RemoteMemory);
    assert!(db > 3.0 * rpc, "CouchDB {db} vs RPC {rpc}");
    assert!(rpc > memory, "RPC {rpc} vs in-memory {memory}");
    assert!(rdma < rpc, "remote memory {rdma} vs RPC {rpc}");
}

/// Sec. 4.5: the accelerated RPC stack's calibration constants.
#[test]
fn accelerated_rpc_matches_paper_constants() {
    assert!((ACCEL_RTT_SECS - 2.1e-6).abs() < 1e-12);
    assert!((ACCEL_MRPS_PER_CORE - 12.4e6).abs() < 1.0);
    let fast = accelerated_rpc_profile();
    let slow = RpcProfile::software();
    assert!(slow.mean_one_way_secs(64) / fast.mean_one_way_secs(64) > 10.0);
}

/// Fig. 15: retraining policies order None < Self < Swarm.
#[test]
fn continuous_learning_ordering() {
    let none = run_campaign(RetrainMode::None, 16, 120, 6, 7);
    let per = run_campaign(RetrainMode::PerDevice, 16, 120, 6, 7);
    let swarm = run_campaign(RetrainMode::SwarmWide, 16, 120, 6, 7);
    assert!(per.correct_pct > none.correct_pct);
    assert!(swarm.correct_pct > per.correct_pct);
}

/// Fig. 14: HiveMind's bandwidth sits between distributed and centralized.
#[test]
fn bandwidth_ordering_across_platforms() {
    let cen = single(App::FaceRecognition, Platform::CentralizedFaaS, 6).bandwidth;
    let hm = single(App::FaceRecognition, Platform::HiveMind, 6).bandwidth;
    let dist = single(App::FaceRecognition, Platform::DistributedEdge, 6).bandwidth;
    assert!(
        dist.total_mb < hm.total_mb,
        "distributed ships only results"
    );
    assert!(hm.total_mb < cen.total_mb, "HiveMind filters the stream");
}

/// Sec. 5.6 / Fig. 18: the fast model tracks the detailed DES closely at
/// the benchmark operating point.
#[test]
fn analytic_model_tracks_des_for_representative_apps() {
    use hivemind::core::analytic::QuickModel;
    for app in [App::FaceRecognition, App::SoilAnalytics] {
        let des = Experiment::new(
            ExperimentConfig::single_app(app)
                .platform(Platform::CentralizedFaaS)
                .duration_secs(60.0)
                .seed(8),
        )
        .run();
        let model = QuickModel::testbed(Platform::CentralizedFaaS, app).predict(8000, 8);
        let ratio = model.median() / des.tasks.total.median();
        assert!(
            (0.7..1.4).contains(&ratio),
            "{app}: model median {} vs DES {}",
            model.median(),
            des.tasks.total.median()
        );
    }
}

//! Cross-crate integration: full missions and benchmarks exercising the
//! whole stack (swarm world → network fabric → serverless cluster →
//! controller) through the public facade.

use hivemind::apps::scenario::Scenario;
use hivemind::apps::suite::App;
use hivemind::core::experiment::{Experiment, ExperimentConfig};
use hivemind::core::platform::Platform;

#[test]
fn every_platform_completes_scenario_a() {
    for platform in Platform::MAIN {
        let o = Experiment::new(
            ExperimentConfig::scenario(Scenario::StationaryItems)
                .platform(platform)
                .seed(1),
        )
        .run();
        assert!(
            o.mission.completed,
            "{platform}: scenario A should finish at testbed scale"
        );
        assert!(
            o.mission.targets_found >= 11,
            "{platform}: found {}",
            o.mission.targets_found
        );
        assert!(o.mission.duration_secs > 30.0);
        assert!(!o.tasks.is_empty());
    }
}

#[test]
fn every_ablation_platform_runs_every_app() {
    for platform in Platform::ABLATIONS {
        let mut o = Experiment::new(
            ExperimentConfig::single_app(App::SoilAnalytics)
                .platform(platform)
                .duration_secs(10.0)
                .seed(2),
        )
        .run();
        assert_eq!(o.tasks.len(), 160, "{platform}");
        assert!(o.median_task_ms() > 0.0, "{platform}");
    }
}

#[test]
fn outcomes_are_reproducible_across_runs() {
    let run = || {
        Experiment::new(
            ExperimentConfig::scenario(Scenario::MovingPeople)
                .platform(Platform::HiveMind)
                .seed(9),
        )
        .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.mission.duration_secs, b.mission.duration_secs);
    assert_eq!(a.mission.targets_found, b.mission.targets_found);
    assert_eq!(a.bandwidth.total_mb, b.bandwidth.total_mb);
    assert_eq!(a.battery.mean_pct, b.battery.mean_pct);
    assert_eq!(a.tasks.len(), b.tasks.len());
}

#[test]
fn swarm_scaling_preserves_hivemind_mission_time() {
    let time_at = |devices: u32| {
        Experiment::new(
            ExperimentConfig::scenario(Scenario::StationaryItems)
                .platform(Platform::HiveMind)
                .devices(devices)
                .seed(1),
        )
        .run()
        .mission
        .duration_secs
    };
    let small = time_at(16);
    let large = time_at(256);
    assert!(
        large < small * 3.0,
        "HiveMind must scale: 16 drones {small:.0}s vs 256 drones {large:.0}s"
    );
}

#[test]
fn centralized_collapses_at_scale_hivemind_does_not() {
    let run = |platform: Platform| {
        Experiment::new(
            ExperimentConfig::scenario(Scenario::StationaryItems)
                .platform(platform)
                .devices(512)
                .seed(1),
        )
        .run()
    };
    let hm = run(Platform::HiveMind);
    let cen = run(Platform::CentralizedFaaS);
    assert!(hm.mission.completed, "HiveMind finishes at 512 drones");
    assert!(
        cen.mission.duration_secs > 4.0 * hm.mission.duration_secs,
        "centralized must hit its scalability wall: {:.0}s vs {:.0}s",
        cen.mission.duration_secs,
        hm.mission.duration_secs
    );
}

#[test]
fn car_fleet_missions_complete_on_hivemind() {
    for scenario in [Scenario::TreasureHunt, Scenario::CarMaze] {
        let o = Experiment::new(
            ExperimentConfig::scenario(scenario)
                .platform(Platform::HiveMind)
                .seed(3),
        )
        .run();
        assert!(o.mission.completed, "{scenario:?}");
        assert_eq!(o.mission.targets_found, 14, "{scenario:?}");
        assert!(
            o.battery.max_pct < 100.0,
            "cars are not power-constrained ({scenario:?})"
        );
    }
}

#[test]
fn fault_injection_never_loses_tasks() {
    for fault_rate in [0.05, 0.10, 0.20] {
        let o = Experiment::new(
            ExperimentConfig::single_app(App::FaceRecognition)
                .platform(Platform::CentralizedFaaS)
                .duration_secs(20.0)
                .fault_rate(fault_rate)
                .seed(4),
        )
        .run();
        assert_eq!(o.tasks.len(), 320, "rate {fault_rate}");
        assert!(o.faults_recovered > 0, "rate {fault_rate}");
    }
}

#[test]
fn active_task_series_tracks_load_profile() {
    let o = Experiment::new(
        ExperimentConfig::single_app(App::FaceRecognition)
            .platform(Platform::CentralizedFaaS)
            .duration_secs(90.0)
            .load_profile(vec![(0.0, 2), (30.0, 16), (60.0, 2)])
            .seed(5),
    )
    .run();
    use hivemind::sim::time::SimTime;
    let low = o
        .active_tasks
        .value_at(SimTime::from_secs(25))
        .unwrap_or(0.0);
    let high = o
        .active_tasks
        .value_at(SimTime::from_secs(55))
        .unwrap_or(0.0);
    assert!(
        high > low,
        "active functions must track the ramp: {low} -> {high}"
    );
}

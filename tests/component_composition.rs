//! The composable-DES claim, demonstrated generically: the network fabric
//! and the serverless cluster are both [`Component`]s, so an orchestrator
//! that knows nothing about their internals can co-simulate them in exact
//! global time order — frames flow through the wireless fabric, arrivals
//! become invocations, completions flow back.

use hivemind::faas::cluster::{Cluster, ClusterParams};
use hivemind::faas::types::{AppId, AppProfile, Completion, Invocation};
use hivemind::net::fabric::{Delivery, Fabric, Transfer};
use hivemind::net::topology::{Node, Topology, TopologyParams};
use hivemind::sim::component::{earliest, Component};
use hivemind::sim::rng::RngForge;
use hivemind::sim::time::{SimDuration, SimTime};

#[test]
fn fabric_and_cluster_compose_through_the_trait() {
    let mut fabric = Fabric::new(Topology::new(TopologyParams::default()));
    let mut cluster = Cluster::new(ClusterParams::default(), RngForge::new(5));
    cluster.register_app(AppId(0), AppProfile::test_profile(80.0));

    // Stimulus: every device uploads one frame per second for 10 seconds.
    let n_frames = 16 * 10;
    let mut tag = 0u64;
    for second in 0..10u64 {
        for dev in 0..16u32 {
            Component::handle(
                &mut fabric,
                SimTime::from_secs(second),
                Transfer {
                    src: Node::Device(dev),
                    dst: Node::Server(dev % 12),
                    bytes: 2_000_000,
                    tag,
                },
            );
            tag += 1;
        }
    }

    // Generic orchestration loop: always advance the earliest component.
    let mut completions: Vec<Completion> = Vec::new();
    let mut deliveries = 0usize;
    loop {
        let next = earliest([
            Component::next_wakeup(&fabric),
            Component::next_wakeup(&cluster),
        ]);
        let Some(t) = next else { break };

        let mut delivered: Vec<Delivery> = Vec::new();
        Component::advance(&mut fabric, t, &mut delivered);
        for d in delivered {
            deliveries += 1;
            // Route: network arrival -> function invocation.
            Component::handle(
                &mut cluster,
                d.delivered_at,
                Invocation::root(AppId(0), d.tag),
            );
        }
        let mut done: Vec<Completion> = Vec::new();
        Component::advance(&mut cluster, t, &mut done);
        completions.extend(done);
    }

    assert_eq!(deliveries, n_frames, "every frame crossed the network");
    assert_eq!(completions.len(), n_frames, "every frame was processed");
    // Causality across the component boundary: a function never finishes
    // before its frame was even sent.
    for c in &completions {
        let sent_second = c.tag / 16;
        assert!(c.finished > SimTime::from_secs(sent_second));
        assert!(c.latency() >= SimDuration::from_millis(80));
    }
    // Chronological completion stream.
    for pair in completions.windows(2) {
        assert!(pair[0].finished <= pair[1].finished);
    }
}

//! Property-based tests over the core data structures and invariants,
//! spanning crates.

use hivemind::apps::kernels::dedup::{deduplicate, Observation, UnionFind};
use hivemind::apps::kernels::embedding::observe;
use hivemind::apps::kernels::ocr::{recognize, SignImage};
use hivemind::net::fabric::{Fabric, Transfer};
use hivemind::net::topology::{Node, Topology, TopologyParams};
use hivemind::sim::rng::RngForge;
use hivemind::sim::shard::{merge_keyed, EffectKey, ShardMap};
use hivemind::sim::stats::Summary;
use hivemind::sim::time::{SimDuration, SimTime};
use hivemind::swarm::geometry::{partition_field, Rect};
use hivemind::swarm::maze::{wall_follower, Maze};
use hivemind::swarm::route::{astar, Cell, GridMap};
use proptest::prelude::*;

proptest! {
    /// Partitioning any field among any swarm conserves area exactly and
    /// produces one region per device.
    #[test]
    fn partition_conserves_area(
        w in 10.0f64..2000.0,
        h in 10.0f64..2000.0,
        n in 1u32..300,
    ) {
        let field = Rect::new(0.0, 0.0, w, h);
        let regions = partition_field(&field, n);
        prop_assert_eq!(regions.len(), n as usize);
        let total: f64 = regions.iter().map(|r| r.area()).sum();
        prop_assert!((total - field.area()).abs() < 1e-6 * field.area().max(1.0));
        for r in &regions {
            prop_assert!(field.contains(r.center()));
        }
    }

    /// Every transfer injected into the fabric is delivered exactly once,
    /// never before its send time, and deliveries are chronological.
    #[test]
    fn fabric_conserves_transfers(
        sends in prop::collection::vec(
            (0u64..5_000_000_000, 0u32..16, 0u32..12, 1u64..5_000_000),
            1..60,
        ),
    ) {
        let mut fabric = Fabric::new(Topology::new(TopologyParams::default()));
        let mut sends = sends;
        sends.sort_by_key(|&(t, ..)| t);
        for &(t, dev, srv, bytes) in &sends {
            fabric.send(
                SimTime::from_nanos(t),
                Transfer {
                    src: Node::Device(dev),
                    dst: Node::Server(srv),
                    bytes,
                    tag: t,
                },
            );
        }
        let mut deliveries = Vec::new();
        while let Some(wake) = fabric.next_wakeup() {
            deliveries.extend(fabric.advance_to(wake));
        }
        prop_assert_eq!(deliveries.len(), sends.len());
        for d in &deliveries {
            prop_assert!(d.delivered_at > d.sent_at);
        }
        for pair in deliveries.windows(2) {
            prop_assert!(pair[0].delivered_at <= pair[1].delivered_at);
        }
        // Ids unique.
        let mut ids: Vec<_> = deliveries.iter().map(|d| d.id).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), deliveries.len());
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn summary_quantiles_monotone(samples in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let s: Summary = samples.iter().copied().collect();
        let q25 = s.quantile(0.25);
        let q50 = s.quantile(0.5);
        let q99 = s.quantile(0.99);
        prop_assert!(q25 <= q50 && q50 <= q99);
        prop_assert!(s.min() <= q25 && q99 <= s.max());
    }

    /// Every generated maze is perfect (n−1 passages) and solvable by the
    /// wall follower.
    #[test]
    fn mazes_are_perfect_and_solvable(w in 2u32..20, h in 2u32..20, seed in 0u64..500) {
        let maze = Maze::generate(w, h, RngForge::new(seed));
        prop_assert_eq!(maze.passage_count(), (w * h - 1) as usize);
        let t = wall_follower(&maze);
        prop_assert!(t.reached);
    }

    /// A* paths, when they exist, are connected, obstacle-free, and no
    /// longer than the naive perimeter route.
    #[test]
    fn astar_paths_are_valid(
        blocks in prop::collection::vec((0u32..20, 0u32..20), 0..60),
        seed in 0u64..100,
    ) {
        let mut map = GridMap::new(20, 20);
        for &(x, y) in &blocks {
            if (x, y) != (0, 0) && (x, y) != (19, 19) {
                map.block(Cell { x, y });
            }
        }
        let _ = seed;
        if let Some(path) = astar(&map, Cell { x: 0, y: 0 }, Cell { x: 19, y: 19 }) {
            prop_assert_eq!(path[0], Cell { x: 0, y: 0 });
            prop_assert_eq!(*path.last().unwrap(), Cell { x: 19, y: 19 });
            for pair in path.windows(2) {
                let dx = pair[0].x.abs_diff(pair[1].x);
                let dy = pair[0].y.abs_diff(pair[1].y);
                prop_assert_eq!(dx + dy, 1);
                prop_assert!(map.is_free(pair[1]));
            }
            prop_assert!(path.len() <= 400);
        }
    }

    /// Union-find set counts never increase, and dedup's unique count is
    /// bounded by the observation count.
    #[test]
    fn union_find_monotone(ops in prop::collection::vec((0usize..30, 0usize..30), 0..100)) {
        let mut uf = UnionFind::new(30);
        let mut last = uf.set_count();
        for &(a, b) in &ops {
            uf.union(a, b);
            let now = uf.set_count();
            prop_assert!(now <= last);
            prop_assert!(now >= 1);
            last = now;
        }
    }

    /// Deduplication with a sane threshold never invents more people than
    /// observations and never returns zero for non-empty input.
    #[test]
    fn dedup_count_bounds(people in 1u32..12, reps in 1u32..4, seed in 0u64..50) {
        let mut rng = RngForge::new(seed).stream("prop");
        let obs: Vec<Observation> = (0..people)
            .flat_map(|p| {
                (0..reps).map(move |r| (p, r))
            })
            .map(|(p, r)| Observation {
                device: r,
                embedding: observe(p, 0.03, &mut rng),
                truth: p,
            })
            .collect();
        let result = deduplicate(&obs, 0.8);
        prop_assert!(result.unique_count >= 1);
        prop_assert!(result.unique_count <= obs.len());
        // At tight noise the count is exact.
        prop_assert_eq!(result.unique_count, people as usize);
    }

    /// The sharded engine's exchange order is partition-invariant: for
    /// any set of keyed events and any shard count, merging the
    /// per-shard batches yields exactly the single-shard (globally
    /// sorted) stream. This is the data-structure core of the
    /// `HIVEMIND_SHARDS` byte-determinism contract.
    #[test]
    fn shard_merge_equals_single_shard_order(
        events in prop::collection::vec((0u64..50_000_000, 0u32..16), 1..120),
        shards in 1u32..9,
    ) {
        // Stamp per-lane monotone sequence numbers, as the engine does.
        let mut seq = [0u64; 16];
        let mut keyed: Vec<(EffectKey, usize)> = events
            .iter()
            .enumerate()
            .map(|(i, &(nanos, lane))| {
                seq[lane as usize] += 1;
                (
                    EffectKey::new(SimTime::from_nanos(nanos), lane, seq[lane as usize]),
                    i,
                )
            })
            .collect();

        // Reference: the single-shard semantics — one global sort.
        let mut reference = keyed.clone();
        reference.sort_by_key(|&(k, _)| k);

        // Partition lanes into shard batches (each batch sorted, as
        // shards emit), merge, and demand the identical stream.
        let map = ShardMap::new(16, shards);
        let mut batches: Vec<Vec<(EffectKey, usize)>> =
            (0..map.shards()).map(|_| Vec::new()).collect();
        keyed.sort_by_key(|&(k, _)| k);
        for (k, v) in keyed {
            batches[map.shard_of(k.lane) as usize].push((k, v));
        }
        prop_assert_eq!(merge_keyed(batches), reference);
    }

    /// A shard map tiles the device range exactly: every device belongs
    /// to one shard, blocks are contiguous, and sizes differ by at most
    /// one.
    #[test]
    fn shard_map_tiles_the_fleet(devices in 1u32..5000, shards in 1u32..64) {
        let map = ShardMap::new(devices, shards);
        let mut covered = 0u32;
        let mut sizes = Vec::new();
        for s in 0..map.shards() {
            let range = map.range(s);
            prop_assert_eq!(range.start, covered, "blocks must be contiguous");
            for d in range.clone() {
                prop_assert_eq!(map.shard_of(d), s);
            }
            sizes.push(range.len());
            covered = range.end;
        }
        prop_assert_eq!(covered, devices);
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1, "block sizes differ by more than one");
    }

    /// OCR round-trips any string over its alphabet when noise-free.
    #[test]
    fn ocr_roundtrips_clean_text(chars in prop::collection::vec(0usize..15, 1..8)) {
        use hivemind::apps::kernels::ocr::ALPHABET;
        let text: String = chars.iter().map(|&i| ALPHABET[i]).collect();
        let img = SignImage::render(&text);
        prop_assert_eq!(recognize(&img), text);
    }

    /// Durations never go negative through the sampling pipeline.
    #[test]
    fn distributions_sample_non_negative(median in 1e-6f64..10.0, sigma in 0.0f64..2.0, seed in 0u64..100) {
        use hivemind::sim::dist::Dist;
        let d = Dist::lognormal_median_sigma(median, sigma);
        let mut rng = RngForge::new(seed).stream("prop");
        for _ in 0..100 {
            prop_assert!(d.sample(&mut rng) >= SimDuration::ZERO);
        }
        prop_assert!(d.mean_secs() >= median * 0.99);
    }
}

proptest! {
    // Each case runs two full experiments; keep the fleet small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Task conservation under injected chaos: every task the app issues
    /// either completes (possibly after retries) or is counted lost —
    /// nothing silently vanishes. With the paper's retry-forever default
    /// the lost count is exactly zero.
    #[test]
    fn tasks_are_conserved_under_faults(
        fault_rate in 0.0f64..0.3,
        loss in 0.0f64..0.15,
        seed in 0u64..64,
    ) {
        use hivemind::core::prelude::*;

        let plan = FaultPlan::default()
            .function_fault_rate(fault_rate.max(1e-3))
            .packet_loss(loss)
            .retry(RetryPolicy::bounded(3, SimDuration::from_millis(20)));
        let cfg = ExperimentConfig::single_app(
            hivemind::apps::suite::App::FaceRecognition,
        )
        .platform(Platform::CentralizedFaaS)
        .duration(SimDuration::from_secs(8))
        .seed(seed)
        .plan(RunPlan::new().trace(true));

        // Bounded give-up retry: issued = completed + lost.
        let chaotic =
            Experiment::new(cfg.clone().plan(RunPlan::new().trace(true).faults(plan.clone()))).run();
        let issued = chaotic
            .trace
            .as_ref()
            .expect("tracing enabled")
            .count("task", "submit") as u64;
        let completed = chaotic.tasks.len() as u64;
        let lost = chaotic.recovery.map(|r| r.tasks_lost).unwrap_or(0);
        prop_assert_eq!(issued, completed + lost,
            "issued {} != completed {} + lost {}", issued, completed, lost);

        // Retry-forever (the paper's respawn semantics): nothing is lost
        // and every issued task completes.
        let forever = Experiment::new(
            cfg.plan(RunPlan::new().trace(true).faults(plan.retry(RetryPolicy::default()))),
        )
        .run();
        let issued = forever
            .trace
            .as_ref()
            .expect("tracing enabled")
            .count("task", "submit") as u64;
        prop_assert_eq!(forever.recovery.map(|r| r.tasks_lost).unwrap_or(0), 0);
        prop_assert_eq!(issued, forever.tasks.len() as u64);
    }
}

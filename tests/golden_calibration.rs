//! Tier-2 golden calibration tests (slow; excluded from the default
//! suite). Run with:
//!
//! ```text
//! cargo test --release --test golden_calibration -- --ignored
//! ```
//!
//! These pin the reproduction's two headline calibration numbers to the
//! paper within an explicit tolerance band, so a regression in the
//! queueing model, the platform cost tables, or the runner's seed
//! derivation shows up as a hard failure rather than a silently drifted
//! figure.

use hivemind::apps::suite::App;
use hivemind::core::analytic::{deviation_pct, QuickModel};
use hivemind::core::experiment::ExperimentConfig;
use hivemind::core::platform::Platform;
use hivemind::core::runner::Runner;

const DURATION_SECS: f64 = 60.0;

/// Sec. 5.6 / Fig. 18: across every app × platform cell, the analytic
/// queueing model's p99 must stay within 5% of the detailed DES on
/// average (the paper reports < 5% everywhere on its testbed).
#[test]
#[ignore = "tier-2 golden calibration: ~30 full DES runs"]
fn analytic_model_tracks_des_within_five_percent() {
    let platforms = [
        Platform::CentralizedFaaS,
        Platform::DistributedEdge,
        Platform::HiveMind,
    ];
    let cells: Vec<(App, Platform)> = App::ALL
        .into_iter()
        .flat_map(|app| platforms.map(|p| (app, p)))
        .collect();
    let configs: Vec<ExperimentConfig> = cells
        .iter()
        .map(|&(app, platform)| {
            ExperimentConfig::single_app(app)
                .platform(platform)
                .duration_secs(DURATION_SECS)
                .seed(8)
        })
        .collect();
    let outcomes = Runner::from_env().run_configs(&configs);

    let mut mean_abs = 0.0;
    let mut worst: f64 = 0.0;
    for (&(app, platform), des) in cells.iter().zip(outcomes) {
        let mut qm = QuickModel::testbed(platform, app);
        qm.duration_secs = DURATION_SECS;
        let model = qm.predict(8000, 8);
        let dev = deviation_pct(des.tasks.total.p99(), model.p99()).abs();
        mean_abs += dev;
        worst = worst.max(dev);
    }
    mean_abs /= cells.len() as f64;

    assert!(
        mean_abs < 5.0,
        "mean |p99 deviation| {mean_abs:.2}% exceeds the paper's 5% bound"
    );
    // Individual cells may exceed the mean bound, but none should be
    // wildly off — that signals a broken cost table, not noise.
    assert!(
        worst < 15.0,
        "worst-cell |p99 deviation| {worst:.2}% signals a calibration break"
    );
}

/// Sec. 5.1 / Fig. 12: HiveMind's mean end-to-end latency improvement
/// over the centralized cloud sits in the paper's reported band
/// (56% on average, up to 2.85x on individual apps). Latencies are
/// pooled over replicates via the deterministic runner, so this number
/// is stable across machines and thread counts.
///
/// The two halves of the claim live in different load regimes:
/// - the *average* comes from mission-rate load (the regime the paper's
///   end-to-end numbers come from; centralized uplinks near saturation);
/// - the *up to 2.85x* factor is a per-app ratio at moderate load —
///   under saturation the ratio diverges and stops being comparable.
#[test]
#[ignore = "tier-2 golden calibration: 4x10 full DES runs with replicates"]
fn hivemind_improvement_over_centralized_matches_paper() {
    let runner = Runner::from_env();
    let mean_total = |app: App, platform: Platform, rate_scale: f64| {
        runner
            .run_replicates(
                &ExperimentConfig::single_app(app)
                    .platform(platform)
                    .duration_secs(DURATION_SECS)
                    .input_scale(2.0)
                    .rate_scale(rate_scale)
                    .seed(2),
                2,
            )
            .merged_tasks()
            .total
            .mean()
    };

    let mut improvements = vec![];
    let mut best_speedup: f64 = 0.0;
    for app in App::ALL {
        let cen = mean_total(app, Platform::CentralizedFaaS, 4.0);
        let hm = mean_total(app, Platform::HiveMind, 4.0);
        improvements.push(1.0 - hm / cen);
        let cen_idle = mean_total(app, Platform::CentralizedFaaS, 1.0);
        let hm_idle = mean_total(app, Platform::HiveMind, 1.0);
        best_speedup = best_speedup.max(cen_idle / hm_idle);
        println!(
            "{:<6} improvement at mission rate {:>6.1}%, moderate-load speedup {:.2}x",
            app.label(),
            100.0 * (1.0 - hm / cen),
            cen_idle / hm_idle,
        );
    }
    let improvement = improvements.iter().sum::<f64>() / improvements.len() as f64;
    println!(
        "mean per-app improvement {:.1}% (paper ~56%), best speedup {best_speedup:.2}x (paper up to 2.85x)",
        improvement * 100.0
    );

    assert!(
        (0.40..0.70).contains(&improvement),
        "mean improvement {:.1}% outside the paper's ~56% band",
        improvement * 100.0
    );
    assert!(
        (1.8..5.0).contains(&best_speedup),
        "best per-app speedup {best_speedup:.2}x outside the paper's ~2.85x band"
    );
}

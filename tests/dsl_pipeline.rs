//! DSL → synthesis → execution pipeline: the user-facing programming
//! model drives placement decisions consistent with what the engine does.

use std::collections::HashMap;

use hivemind::apps::suite::App;
use hivemind::core::dsl::{
    Constraint, Directive, GraphError, PlacementSite, TaskDef, TaskGraphBuilder,
};
use hivemind::core::engine::{Engine, EngineConfig};
use hivemind::core::platform::Platform;
use hivemind::core::synthesis::{
    bindings, enumerate_placements, explore, single_app_placement, Binding, Objective, TaskCost,
};

fn scenario_b_graph() -> hivemind::core::dsl::TaskGraph {
    TaskGraphBuilder::new()
        .constraint(Constraint::ExecTime { secs: 300.0 })
        .task(TaskDef::new("createRoute").code("t/route"))
        .task(
            TaskDef::new("collectImage")
                .code("t/collect")
                .parent("createRoute"),
        )
        .task(
            TaskDef::new("obstacleAvoidance")
                .code("t/oa")
                .parent("collectImage"),
        )
        .task(
            TaskDef::new("faceRecognition")
                .code("t/face")
                .parent("collectImage"),
        )
        .task(
            TaskDef::new("deduplication")
                .code("t/dedup")
                .parent("faceRecognition"),
        )
        .parallel("obstacleAvoidance", "faceRecognition")
        .serial("faceRecognition", "deduplication")
        .directive(Directive::Place {
            task: "obstacleAvoidance".into(),
            site: PlacementSite::Edge,
        })
        .build()
        .expect("Listing 3 is valid")
}

fn scenario_b_costs() -> HashMap<String, TaskCost> {
    let mut costs = HashMap::new();
    costs.insert("createRoute".into(), TaskCost::from_app(App::Maze));
    costs.insert(
        "collectImage".into(),
        TaskCost {
            cloud_exec: 0.001,
            edge_slowdown: 1.0,
            boundary_bytes: 16_000_000,
        },
    );
    costs.insert(
        "obstacleAvoidance".into(),
        TaskCost::from_app(App::ObstacleAvoidance),
    );
    costs.insert(
        "faceRecognition".into(),
        TaskCost::from_app(App::FaceRecognition),
    );
    costs.insert("deduplication".into(), TaskCost::from_app(App::PeopleDedup));
    costs
}

#[test]
fn exploration_prunes_to_meaningful_models() {
    let graph = scenario_b_graph();
    // 5 tasks; collectImage auto-pinned (sensor), obstacleAvoidance pinned
    // by directive → 2^3 = 8 meaningful models.
    let placements = enumerate_placements(&graph);
    assert_eq!(placements.len(), 8);
    for p in &placements {
        assert_eq!(p["collectImage"], PlacementSite::Edge);
        assert_eq!(p["obstacleAvoidance"], PlacementSite::Edge);
    }
}

#[test]
fn performance_objective_offloads_heavy_recognition() {
    let graph = scenario_b_graph();
    let ranked = explore(
        &graph,
        &scenario_b_costs(),
        Platform::HiveMind,
        Objective::Performance,
    );
    let best = &ranked[0].placement;
    assert_eq!(
        best["faceRecognition"],
        PlacementSite::Cloud,
        "a 10x edge slowdown on FaceNet must push it to the cloud"
    );
    // The winner is consistent with the engine's per-app decision.
    assert_eq!(
        single_app_placement(App::FaceRecognition, Platform::HiveMind),
        PlacementSite::Cloud
    );
    // And exploration is exhaustive: the winner's latency is minimal.
    for candidate in &ranked[1..] {
        assert!(candidate.profile.latency >= ranked[0].profile.latency - 1e-12);
    }
}

#[test]
fn bindings_match_fig8_arrows() {
    let graph = scenario_b_graph();
    let ranked = explore(
        &graph,
        &scenario_b_costs(),
        Platform::HiveMind,
        Objective::Performance,
    );
    let b = bindings(&graph, &ranked[0].placement);
    let find = |child: &str| {
        b.iter()
            .find(|(_, c, _)| c == child)
            .map(|&(_, _, binding)| binding)
            .expect("edge exists")
    };
    // Edge → cloud crossing uses the synthesized RPC API; cloud-internal
    // edges use the serverless data plane; on-device edges share memory.
    assert_eq!(find("faceRecognition"), Binding::CrossTierRpc);
    assert_eq!(find("deduplication"), Binding::ServerlessDataPlane);
    assert_eq!(find("obstacleAvoidance"), Binding::OnDevice);
}

#[test]
fn engine_placements_agree_with_synthesis() {
    let engine = Engine::new(EngineConfig::testbed(Platform::HiveMind));
    for app in App::ALL {
        assert_eq!(
            engine.placement_of(app),
            single_app_placement(app, Platform::HiveMind),
            "{app}"
        );
    }
}

#[test]
fn invalid_graphs_are_rejected_before_synthesis() {
    let err = TaskGraphBuilder::new()
        .task(TaskDef::new("a").parent("b"))
        .task(TaskDef::new("b").parent("a"))
        .build()
        .unwrap_err();
    assert!(matches!(err, GraphError::Cycle(_)));
}

#[test]
fn power_objective_changes_the_winner() {
    let graph = scenario_b_graph();
    let costs = scenario_b_costs();
    let perf = explore(&graph, &costs, Platform::HiveMind, Objective::Performance);
    let power = explore(&graph, &costs, Platform::HiveMind, Objective::Power);
    // Minimizing device energy pushes every free task to the cloud.
    for (task, site) in &power[0].placement {
        if task != "collectImage" && task != "obstacleAvoidance" {
            assert_eq!(*site, PlacementSite::Cloud, "{task}");
        }
    }
    assert!(power[0].profile.edge_energy <= perf[0].profile.edge_energy);
}

//! Fault tolerance end to end (Sec. 4.6): a drone dies mid-mission, the
//! controller detects the missed heartbeats and repartitions its area
//! among the neighbours (Fig. 10); separately, serverless functions fail
//! and OpenWhisk-style respawn hides it (Fig. 5c).
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use hivemind::core::prelude::*;

fn main() {
    println!("Part 1 — device failure during Scenario A (Fig. 10)\n");
    let healthy = Experiment::new(
        ExperimentConfig::scenario(Scenario::StationaryItems)
            .platform(Platform::HiveMind)
            .seed(11),
    )
    .run();
    let failed = Experiment::new(
        ExperimentConfig::scenario(Scenario::StationaryItems)
            .platform(Platform::HiveMind)
            .plan(RunPlan::new().fail_device(20.0, 5)) // drone 5 crashes 20 s in
            .seed(11),
    )
    .run();
    println!(
        "{:<26} {:>9} {:>9} {:>11}",
        "", "time (s)", "found", "battery max"
    );
    println!(
        "{:<26} {:>9.1} {:>6}/15 {:>10.1}%",
        "healthy swarm",
        healthy.mission.duration_secs,
        healthy.mission.targets_found,
        healthy.battery.max_pct
    );
    println!(
        "{:<26} {:>9.1} {:>6}/15 {:>10.1}%",
        "drone 5 lost at t=20s",
        failed.mission.duration_secs,
        failed.mission.targets_found,
        failed.battery.max_pct
    );
    println!("\nThe neighbours inherit strips of drone 5's area and fly an extra sweep,");
    println!("so the mission still completes and the lost drone's items are recovered.\n");

    println!("Part 2 — function failures under load (Fig. 5c)\n");
    println!(
        "{:<12} {:>8} {:>11} {:>12}",
        "fault rate", "tasks", "recovered", "p99 (ms)"
    );
    let rates = [0.0, 0.05, 0.10, 0.20];
    let configs = rates.map(|fault_rate| {
        ExperimentConfig::single_app(App::FaceRecognition)
            .platform(Platform::CentralizedFaaS)
            .duration_secs(60.0)
            .fault_rate(fault_rate)
            .seed(4)
    });
    let outcomes = hivemind::core::runner::Runner::from_env().run_configs(&configs);
    for (fault_rate, mut o) in rates.into_iter().zip(outcomes) {
        let p99 = o.p99_task_ms();
        println!(
            "{:<12} {:>8} {:>11} {:>12.1}",
            format!("{:.0}%", fault_rate * 100.0),
            o.tasks.len(),
            o.faults_recovered,
            p99,
        );
    }
    println!("\nEvery task completes even at 20% failures — failed attempts are");
    println!("respawned on fresh containers before they hurt the end-to-end run.");

    println!("\nPart 3 — the unified fault plane (FaultPlan)\n");
    // The same knob as Part 2's `fault_rate`, plus network loss, a server
    // crash, and an SLO, composed declaratively on one plan. An active
    // plan makes the outcome carry `recovery` statistics.
    let chaotic = Experiment::new(
        ExperimentConfig::single_app(App::FaceRecognition)
            .platform(Platform::CentralizedFaaS)
            .duration_secs(30.0)
            .seed(4)
            .plan(
                RunPlan::new().faults(
                    FaultPlan::default()
                        .function_fault_rate(0.10)
                        .packet_loss(0.05)
                        .server_crash(1, 10.0, 8.0) // server 1 down for 8 s
                        .slo(SimDuration::from_secs(2)),
                ),
            ),
    )
    .run();
    let r = chaotic.recovery.expect("active plan yields recovery stats");
    println!("tasks completed        {:>8}", chaotic.tasks.len());
    println!("tasks retried          {:>8}", r.tasks_retried);
    println!("tasks lost             {:>8}", r.tasks_lost);
    println!("packets lost           {:>8}", r.packets_lost);
    println!("server crashes         {:>8}", r.server_crashes);
    println!("invocations rescheduled{:>8}", r.invocations_rescheduled);
    println!("SLO violations (>2s)   {:>8}", r.slo_violations);
    println!("\nWith the default retry-forever policy nothing is lost; swap in");
    println!("RetryPolicy::bounded(..) to study give-up behaviour, or run the");
    println!("chaos_sweep bench binary for the full degradation grid.");
}

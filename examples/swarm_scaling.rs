//! Swarm-size scalability (Sec. 5.6 / Fig. 17b): the same mission run on
//! progressively larger simulated swarms, with network links scaled
//! proportionally, comparing HiveMind to the centralized baseline.
//!
//! ```text
//! cargo run --release --example swarm_scaling
//! ```

use hivemind::core::prelude::*;

fn main() {
    println!("Scenario A at increasing swarm sizes (simulated; links scale with swarm)\n");
    println!(
        "{:>7} {:>22} {:>26}",
        "drones", "HiveMind time/battery", "Centralized time/battery"
    );
    let sizes = [16u32, 64, 256, 1024];
    // One config per (size, platform) cell; the runner fans the whole
    // sweep across threads and hands outcomes back in sweep order.
    let configs: Vec<_> = sizes
        .iter()
        .flat_map(|&devices| {
            [Platform::HiveMind, Platform::CentralizedFaaS].map(|platform| {
                ExperimentConfig::scenario(Scenario::StationaryItems)
                    .platform(platform)
                    .devices(devices)
                    .seed(1)
            })
        })
        .collect();
    let outcomes = Runner::from_env().run_configs(&configs);
    for (&devices, pair) in sizes.iter().zip(outcomes.chunks_exact(2)) {
        let (hm, cen) = (&pair[0], &pair[1]);
        println!(
            "{:>7} {:>12.0}s / {:>5.1}% {:>16.0}s / {:>5.1}%{}",
            devices,
            hm.mission.duration_secs,
            hm.battery.mean_pct,
            cen.mission.duration_secs,
            cen.battery.mean_pct,
            if cen.mission.completed {
                ""
            } else {
                "  (INCOMPLETE)"
            },
        );
    }
    println!("\nThe centralized controller serializes scheduling decisions and its data");
    println!("plane funnels every frame through CouchDB — both walls arrive well before");
    println!("1024 drones. HiveMind shards its scheduler and keeps most bytes local.");
}

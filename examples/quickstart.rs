//! Quickstart: run one benchmark app on two platforms and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hivemind::apps::suite::App;
use hivemind::core::experiment::{Experiment, ExperimentConfig};
use hivemind::core::platform::Platform;

fn main() {
    println!("HiveMind quickstart: S9 (text recognition), 16 drones, 60 s of load\n");
    for platform in [
        Platform::CentralizedFaaS,
        Platform::DistributedEdge,
        Platform::HiveMind,
    ] {
        let mut outcome = Experiment::new(
            ExperimentConfig::single_app(App::TextRecognition)
                .platform(platform)
                .duration_secs(60.0)
                .seed(7),
        )
        .run();
        println!(
            "{:<18}  median {:>8.1} ms   p99 {:>8.1} ms   battery {:>4.1}%   uplink {:>6.1} MB/s",
            platform.label(),
            outcome.median_task_ms(),
            outcome.p99_task_ms(),
            outcome.battery.mean_pct,
            outcome.bandwidth.mean_mbps,
        );
    }
    println!("\nHiveMind offloads the heavy OCR to the serverless cluster over its");
    println!("accelerated fabric, while filtering the camera stream on-device first.");
}

//! Quickstart: run one benchmark app on two platforms and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hivemind::core::prelude::*;

fn main() {
    println!("HiveMind quickstart: S9 (text recognition), 16 drones, 60 s of load\n");
    let platforms = [
        Platform::CentralizedFaaS,
        Platform::DistributedEdge,
        Platform::HiveMind,
    ];
    // The three runs are independent; fan them across threads
    // (HIVEMIND_THREADS picks the worker count).
    let configs = platforms.map(|platform| {
        ExperimentConfig::single_app(App::TextRecognition)
            .platform(platform)
            .duration(SimDuration::from_secs(60))
            .seed(7)
    });
    let outcomes = Runner::from_env().run_configs(&configs);
    for (platform, mut outcome) in platforms.into_iter().zip(outcomes) {
        println!(
            "{:<18}  median {:>8.1} ms   p99 {:>8.1} ms   battery {:>4.1}%   uplink {:>6.1} MB/s",
            platform.label(),
            outcome.median_task_ms(),
            outcome.p99_task_ms(),
            outcome.battery.mean_pct,
            outcome.bandwidth.mean_mbps,
        );
    }
    println!("\nHiveMind offloads the heavy OCR to the serverless cluster over its");
    println!("accelerated fabric, while filtering the camera stream on-device first.");
}

//! Scenario B — "Moving People": count 25 people who move freely around
//! the field, so the same person is photographed by several drones and
//! must be deduplicated from FaceNet-style embeddings. Shows the effect
//! of the continuous-learning policy (Fig. 15).
//!
//! ```text
//! cargo run --release --example people_counting
//! ```

use hivemind::core::prelude::*;

fn main() {
    println!("Scenario B: counting 25 moving people (ground truth hidden from the swarm)\n");
    println!(
        "{:<10} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "retrain", "counted", "correct %", "missed %", "phantom %", "time (s)"
    );
    let configs = RetrainMode::ALL.map(|mode| {
        ExperimentConfig::scenario(Scenario::MovingPeople)
            .platform(Platform::HiveMind)
            .retrain(mode)
            .seed(3)
    });
    let outcomes = Runner::from_env().run_configs(&configs);
    for (mode, outcome) in RetrainMode::ALL.into_iter().zip(outcomes) {
        let q = outcome
            .mission
            .detection
            .expect("scenario B scores detection");
        println!(
            "{:<10} {:>6}/25 {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            mode.label(),
            outcome.mission.targets_found,
            q.correct_pct,
            q.false_negative_pct,
            q.false_positive_pct,
            outcome.mission.duration_secs,
        );
    }
    println!("\nSwarm-wide retraining tightens the embedding space, so union-find");
    println!("deduplication merges repeat sightings instead of inventing phantoms.");

    // The paper's Sec. 2.3 observation: running recognition on-board
    // drains the batteries before the mission can finish.
    let distributed = Experiment::new(
        ExperimentConfig::scenario(Scenario::MovingPeople)
            .platform(Platform::DistributedEdge)
            .seed(3),
    )
    .run();
    println!(
        "\nDistributed-edge attempt: completed = {}, depleted drones = {} of 16",
        distributed.mission.completed, distributed.battery.depleted
    );
}

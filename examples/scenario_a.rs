//! Scenario A — "Stationary Items": 16 drones locate 15 tennis balls in a
//! field, on all four coordination platforms (the paper's Fig. 1 setup).
//!
//! ```text
//! cargo run --release --example scenario_a
//! ```

use hivemind::core::prelude::*;

fn main() {
    println!("Scenario A: locating 15 tennis balls with a 16-drone swarm\n");
    println!(
        "{:<18} {:>10} {:>10} {:>8} {:>10}",
        "platform", "time (s)", "battery %", "found", "completed"
    );
    let configs = Platform::MAIN.map(|platform| {
        ExperimentConfig::scenario(Scenario::StationaryItems)
            .platform(platform)
            .devices(16)
            .seed(7)
    });
    let outcomes = Runner::from_env().run_configs(&configs);
    for (platform, outcome) in Platform::MAIN.into_iter().zip(outcomes) {
        println!(
            "{:<18} {:>10.1} {:>10.1} {:>5}/15 {:>10}",
            platform.label(),
            outcome.mission.duration_secs,
            outcome.battery.mean_pct,
            outcome.mission.targets_found,
            outcome.mission.completed,
        );
    }
    println!("\nCentralized platforms pay for shipping the full camera stream over the");
    println!("two 867 Mb/s routers; the distributed swarm grinds through recognition on");
    println!("1 GHz Cortex-A8s; HiveMind splits the work and finishes with the flight.");
}

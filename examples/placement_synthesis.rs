//! The HiveMind DSL and program-synthesis pipeline (Listings 1–3 +
//! Fig. 8): declare Scenario B's task graph, enumerate the meaningful
//! cloud/edge execution models, and rank them under different objectives.
//!
//! ```text
//! cargo run --release --example placement_synthesis
//! ```

use std::collections::HashMap;

use hivemind::core::dsl::{Directive, LearnScope, PlacementSite, TaskDef, TaskGraphBuilder};
use hivemind::core::prelude::*;
use hivemind::core::synthesis::{explore, Objective, TaskCost};

fn main() {
    // Listing 3: people recognition and deduplication.
    let graph = TaskGraphBuilder::new()
        .task(TaskDef::new("createRoute").code("tasks/create_route"))
        .task(
            TaskDef::new("collectImage")
                .code("tasks/collect_image")
                .arg("resolution", "1024p")
                .parent("createRoute"),
        )
        .task(
            TaskDef::new("obstacleAvoidance")
                .code("tasks/obstacle_avoid")
                .parent("collectImage"),
        )
        .task(
            TaskDef::new("faceRecognition")
                .code("tasks/face_rec")
                .parent("collectImage"),
        )
        .task(
            TaskDef::new("deduplication")
                .code("tasks/dedup")
                .parent("faceRecognition"),
        )
        .parallel("obstacleAvoidance", "faceRecognition")
        .serial("faceRecognition", "deduplication")
        .directive(Directive::Place {
            task: "obstacleAvoidance".into(),
            site: PlacementSite::Edge,
        })
        .directive(Directive::Learn {
            task: "faceRecognition".into(),
            scope: LearnScope::Swarm,
        })
        .directive(Directive::Persist {
            task: "deduplication".into(),
        })
        .build()
        .expect("Listing 3 is a valid task graph");

    println!(
        "Task graph: {} tasks, topological order {:?}\n",
        graph.len(),
        graph.topological_names()
    );

    let mut costs = HashMap::new();
    costs.insert("createRoute".into(), TaskCost::from_app(App::Maze));
    costs.insert(
        "collectImage".into(),
        TaskCost {
            cloud_exec: 0.001,
            edge_slowdown: 1.0,
            boundary_bytes: 16_000_000,
        },
    );
    costs.insert(
        "obstacleAvoidance".into(),
        TaskCost::from_app(App::ObstacleAvoidance),
    );
    costs.insert(
        "faceRecognition".into(),
        TaskCost::from_app(App::FaceRecognition),
    );
    costs.insert("deduplication".into(), TaskCost::from_app(App::PeopleDedup));

    for objective in [Objective::Performance, Objective::Power] {
        let ranked = explore(&graph, &costs, Platform::HiveMind, objective);
        println!(
            "objective {objective:?}: {} meaningful execution models explored",
            ranked.len()
        );
        let best = &ranked[0];
        let mut names: Vec<&String> = best.placement.keys().collect();
        names.sort();
        for name in names {
            println!("  {:<18} -> {:?}", name, best.placement[name.as_str()]);
        }
        println!(
            "  predicted: latency {:.0} ms/invocation, edge energy {:.2} J, cloud {:.2} core-s\n",
            best.profile.latency * 1e3,
            best.profile.edge_energy,
            best.profile.cloud_core_secs
        );
    }
    println!("(collectImage is pinned to the edge automatically — sensor data cannot be");
    println!(" collected in the cloud; obstacleAvoidance is pinned by the Place directive)");
}

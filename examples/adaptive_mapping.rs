//! Runtime task re-mapping (Sec. 4.2): "At runtime, HiveMind can change
//! its task mapping if the user-provided goals are not met."
//!
//! A user hints that text recognition should run on the drones. The probe
//! window shows the on-board queue blowing past the 2-second latency goal,
//! so the controller re-maps the task to the serverless backend — at task
//! granularity, with in-flight tasks finishing where they started.
//!
//! ```text
//! cargo run --release --example adaptive_mapping
//! ```

use hivemind::core::adaptive::run_adaptive_from;
use hivemind::core::dsl::PlacementSite;
use hivemind::core::prelude::*;

fn main() {
    let cfg = ExperimentConfig::single_app(App::TextRecognition)
        .platform(Platform::HiveMind)
        .seed(3);

    println!("Goal: median OCR task latency under 2.0 s");
    println!("User hint: run panelRecognition at the edge\n");
    let out = run_adaptive_from(
        &cfg,
        App::TextRecognition,
        Some(PlacementSite::Edge),
        2.0,
        30.0,
        30.0,
    );
    println!(
        "probe window : placement {:?}, median {:.2} s  {}",
        out.initial_placement,
        out.probe_median_secs,
        if out.probe_median_secs > 2.0 {
            "(GOAL VIOLATED)"
        } else {
            ""
        }
    );
    if out.remapped {
        println!(
            "controller   : re-mapping {} to {:?}",
            App::TextRecognition,
            out.final_placement
        );
    }
    println!(
        "steady window: placement {:?}, median {:.2} s  {}",
        out.final_placement,
        out.steady_median_secs,
        if out.steady_median_secs <= 2.0 {
            "(goal met)"
        } else {
            ""
        }
    );
    println!(
        "\n{} tasks processed across both windows.",
        out.records.len()
    );
}

//! The robotic-car port (Sec. 5.5): a 14-rover fleet runs the Treasure
//! Hunt (OCR'd instruction panels) and an unknown-maze traversal, across
//! the three platforms — the paper's Fig. 16.
//!
//! ```text
//! cargo run --release --example car_missions
//! ```

use hivemind::core::prelude::*;

fn main() {
    println!("Robotic-car missions (14 rovers, Raspberry Pi class)\n");
    let platforms = [
        Platform::CentralizedFaaS,
        Platform::DistributedEdge,
        Platform::HiveMind,
    ];
    for scenario in [Scenario::TreasureHunt, Scenario::CarMaze] {
        println!("{}:", scenario.name());
        println!(
            "  {:<18} {:>10} {:>11} {:>8}",
            "platform", "time (s)", "battery %", "goals"
        );
        let configs = platforms.map(|platform| {
            ExperimentConfig::scenario(scenario)
                .platform(platform)
                .seed(5)
        });
        let outcomes = Runner::from_env().run_configs(&configs);
        for (platform, outcome) in platforms.into_iter().zip(outcomes) {
            println!(
                "  {:<18} {:>10.1} {:>11.1} {:>5}/14",
                platform.label(),
                outcome.mission.duration_secs,
                outcome.battery.mean_pct,
                outcome.mission.targets_found,
            );
        }
        println!();
    }
    println!("Every panel decision gates the car's next move, so the OCR round-trip");
    println!("sits on the critical path — which is where the accelerated RPC stack");
    println!("and warm serverless containers pay off for the centralized backends.");
}

//! Offline stand-in for the subset of [`proptest`](https://docs.rs/proptest)
//! used by this workspace.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a minimal property-testing harness that is source-compatible with the
//! tests it runs:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`);
//! * range, tuple, and [`collection::vec`] strategies plus [`any`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`];
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: no shrinking (a failing case prints
//! its generated inputs instead), and generation is deterministic in the
//! test's name, so a failure always reproduces bit-identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// A `prop_assume!` precondition failed; skip the case.
    Reject,
}

impl TestCaseError {
    /// A falsified-property error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Whether this is an assumption rejection rather than a failure.
    pub fn is_rejection(&self) -> bool {
        matches!(self, TestCaseError::Reject)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject => write!(f, "assumption rejected"),
        }
    }
}

/// The deterministic case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream depends only on `name`, so every run of a
    /// given test explores the same cases.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. The stand-in equivalent of proptest's `Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % width) as i128;
                (self.start as i128 + draw) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.len.start < self.len.end, "empty length range");
            let width = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % width) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A vector strategy with lengths drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

/// Everything a `proptest!` test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests.
///
/// Source-compatible with the real crate for the forms used here:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     /// Doc comment.
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(0.0f64..1.0, 1..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            (<$crate::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err(e) if e.is_rejection() => continue,
                    ::core::result::Result::Err(e) => panic!(
                        "property {} falsified at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        inputs,
                    ),
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {{
        let cond: bool = $cond;
        if !cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    }};
    ($cond:expr, $($fmt:tt)+) => {{
        let cond: bool = $cond;
        if !cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Skips the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, f in -1.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u32..3, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 3));
        }

        #[test]
        fn tuples_compose(pair in (0u64..4, 0.0f64..1.0)) {
            prop_assert!(pair.0 < 4);
            prop_assert!(pair.1 < 1.0);
        }

        #[test]
        fn assume_skips_cases(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_form_parses(b in any::<bool>()) {
            prop_assert!(u8::from(b) <= 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = 0u64..1000;
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failures_panic_with_inputs() {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}

//! Offline stand-in for the subset of [`criterion`](https://docs.rs/criterion)
//! used by this workspace.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a minimal wall-clock benchmarking harness covering the API the benches
//! under `crates/bench/benches/` consume: [`criterion_group!`] (both the
//! plain and `name = …; config = …; targets = …` forms),
//! [`criterion_main!`], [`Criterion::bench_function`], benchmark groups
//! with [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], and
//! [`black_box`].
//!
//! Reported numbers are median iteration times without criterion's
//! statistical machinery — good enough to spot order-of-magnitude
//! regressions, not publication-grade.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque barrier preventing the optimizer from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    /// Defaults to 300 ms warm-up / 1 s measurement / 20 samples. With
    /// `HIVEMIND_BENCH_QUICK=1` in the environment (the CI perf-smoke
    /// job), every benchmark instead runs a fast low-fidelity pass —
    /// explicit `warm_up_time`/`measurement_time` overrides are clamped
    /// down too, since quick mode wins over per-bench configuration.
    fn default() -> Self {
        if quick_mode() {
            Criterion {
                warm_up: Duration::from_millis(20),
                measurement: Duration::from_millis(100),
                sample_size: 5,
            }
        } else {
            Criterion {
                warm_up: Duration::from_millis(300),
                measurement: Duration::from_secs(1),
                sample_size: 20,
            }
        }
    }
}

/// Whether `HIVEMIND_BENCH_QUICK=1` requested a fast low-fidelity pass.
fn quick_mode() -> bool {
    std::env::var("HIVEMIND_BENCH_QUICK").is_ok_and(|v| v == "1")
}

impl Criterion {
    /// Sets the warm-up time before measurement starts (ignored in quick
    /// mode, which keeps its own shorter budget).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        if !quick_mode() {
            self.warm_up = d;
        }
        self
    }

    /// Sets the target total measurement time per benchmark (ignored in
    /// quick mode, which keeps its own shorter budget).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        if !quick_mode() {
            self.measurement = d;
        }
        self
    }

    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let mut c = self.effective();
        run_one(&mut c, &full, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let mut c = self.effective();
        run_one(&mut c, &full, &mut |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}

    fn effective(&self) -> Criterion {
        let mut c = self.criterion.clone();
        if let Some(n) = self.sample_size {
            c.sample_size = n;
        }
        c
    }
}

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter label.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An id made of a parameter label alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher<'a> {
    config: &'a Criterion,
    reported: Option<Duration>,
}

impl Bencher<'_> {
    /// Measures `f`, timing `sample_size` batches after warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate a batch size targeting measurement_time
        // split across the samples.
        let warm_end = Instant::now() + self.config.warm_up;
        let mut warm_iters: u32 = 0;
        let warm_start = Instant::now();
        loop {
            black_box(f());
            warm_iters += 1;
            if Instant::now() >= warm_end {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.config.measurement.as_secs_f64() / self.config.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut samples: Vec<f64> = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        self.reported = Some(Duration::from_secs_f64(median));
    }
}

fn run_one(c: &mut Criterion, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        config: c,
        reported: None,
    };
    f(&mut b);
    match b.reported {
        Some(t) => println!("{id:<50} time: [{}]", fmt_time(t)),
        None => println!("{id:<50} (no measurement)"),
    }
}

fn fmt_time(t: Duration) -> String {
    let ns = t.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).fold(0, |a, b| a.wrapping_add(b))
    }

    #[test]
    fn bench_function_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(3);
        c.bench_function("sum", |b| b.iter(|| sum_to(black_box(1000))));
    }

    #[test]
    fn groups_and_ids_work() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| sum_to(n))
        });
        g.bench_with_input(BenchmarkId::from_parameter(99), &99u64, |b, &n| {
            b.iter(|| sum_to(n))
        });
        g.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").0, "f/p");
        assert_eq!(BenchmarkId::from_parameter(7).0, "7");
    }
}

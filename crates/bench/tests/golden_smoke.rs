//! Golden snapshots of every figure binary's `--smoke` output.
//!
//! The perf work on the simulator hot path is constrained to be
//! byte-identical: any change to RNG draw order, event tie-breaking, or
//! float summation order shows up here as a diff. Each figure binary runs
//! in smoke mode (a seconds-scale deterministic slice of its sweep) and
//! its stdout is byte-compared against `tests/goldens/<bin>.smoke.txt`.
//! `chaos_sweep --smoke` and `overload_sweep --smoke` additionally cover
//! the full `Outcome` JSON serialization (recovery and shed blocks
//! included), and a subset re-runs under `HIVEMIND_THREADS=1` and
//! `HIVEMIND_THREADS=8` to pin thread-count invariance.
//!
//! To regenerate after an intentional output change:
//!
//! ```text
//! HIVEMIND_UPDATE_GOLDENS=1 cargo test --release -p hivemind-bench --test golden_smoke
//! ```

use std::path::PathBuf;
use std::process::Command;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("{name}.smoke.txt"))
}

/// Runs `bin --smoke` and returns its stdout. The child environment is
/// scrubbed of every fidelity knob so the run is smoke-mode regardless of
/// the invoking shell; `threads` pins the runner's worker count.
fn smoke_stdout(bin: &str, exe: &str, threads: Option<&str>) -> String {
    let mut cmd = Command::new(exe);
    cmd.arg("--smoke")
        .env_remove("HIVEMIND_FULL")
        .env_remove("HIVEMIND_SMOKE")
        .env_remove("HIVEMIND_THREADS");
    if let Some(n) = threads {
        cmd.env("HIVEMIND_THREADS", n);
    }
    let out = cmd
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} --smoke exited with {}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap_or_else(|e| panic!("{bin} wrote non-UTF-8 output: {e}"))
}

fn check_golden(bin: &str, exe: &str) {
    let got = smoke_stdout(bin, exe, None);
    let path = golden_path(bin);
    if std::env::var("HIVEMIND_UPDATE_GOLDENS").is_ok_and(|v| v == "1") {
        std::fs::write(&path, &got)
            .unwrap_or_else(|e| panic!("failed to write {}: {e}", path.display()));
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with HIVEMIND_UPDATE_GOLDENS=1",
            path.display()
        )
    });
    assert!(
        got == want,
        "{bin} --smoke output changed (vs {}).\n\
         If intentional, regenerate with HIVEMIND_UPDATE_GOLDENS=1.\n\
         --- first differing line ---\n{}",
        path.display(),
        first_diff(&want, &got)
    );
}

fn first_diff(want: &str, got: &str) -> String {
    for (i, (w, g)) in want.lines().zip(got.lines()).enumerate() {
        if w != g {
            return format!("line {}:\n  golden: {w}\n  actual: {g}", i + 1);
        }
    }
    format!(
        "line counts differ: golden {} vs actual {}",
        want.lines().count(),
        got.lines().count()
    )
}

macro_rules! golden {
    ($($name:ident),+ $(,)?) => {
        $(
            #[test]
            fn $name() {
                check_golden(stringify!($name), env!(concat!("CARGO_BIN_EXE_", stringify!($name))));
            }
        )+
    };
}

golden!(fig01, fig03, fig04, fig05, fig06, fig11, fig12, fig13, fig14, fig15, fig16, fig17, fig18,);

/// `chaos_sweep --smoke` prints full `Outcome::to_json` lines — the
/// golden that pins the outcome-JSON serialization (shortest-roundtrip
/// floats included) byte-for-byte.
#[test]
fn chaos_sweep() {
    check_golden("chaos_sweep", env!("CARGO_BIN_EXE_chaos_sweep"));
}

/// `overload_sweep --smoke` runs a saturated cluster under the full
/// overload policy (bound + deadline + breaker + spillover + ingress
/// backpressure) and prints outcome JSON including the `"shed"` block —
/// the golden that pins shed accounting byte-for-byte.
#[test]
fn overload_sweep() {
    check_golden("overload_sweep", env!("CARGO_BIN_EXE_overload_sweep"));
}

/// `mc_sweep --smoke` exhaustively explores the smaller protocol
/// instances and prints their state-space statistics plus the three
/// planted-bug counterexample schedules — the golden that pins the
/// model checker's exploration order, fingerprint dedup, and schedule
/// rendering byte-for-byte.
#[test]
fn mc_sweep() {
    check_golden("mc_sweep", env!("CARGO_BIN_EXE_mc_sweep"));
}

/// `partition_sweep --smoke` runs a partitioned fleet with lease-based
/// autonomy armed and prints outcome JSON including the `"reconnect"`
/// block — the golden that pins the disconnect plane's degrade, buffer
/// and exactly-once replay accounting byte-for-byte.
#[test]
fn partition_sweep() {
    check_golden("partition_sweep", env!("CARGO_BIN_EXE_partition_sweep"));
}

/// A subset re-runs under explicit worker counts: the parallel replicate
/// runner must produce byte-identical output regardless of
/// `HIVEMIND_THREADS`.
#[test]
fn thread_count_invariance() {
    for (bin, exe) in [
        ("fig04", env!("CARGO_BIN_EXE_fig04")),
        ("fig13", env!("CARGO_BIN_EXE_fig13")),
        ("chaos_sweep", env!("CARGO_BIN_EXE_chaos_sweep")),
        ("overload_sweep", env!("CARGO_BIN_EXE_overload_sweep")),
        ("mc_sweep", env!("CARGO_BIN_EXE_mc_sweep")),
        ("partition_sweep", env!("CARGO_BIN_EXE_partition_sweep")),
    ] {
        let one = smoke_stdout(bin, exe, Some("1"));
        let eight = smoke_stdout(bin, exe, Some("8"));
        assert!(one == eight, "{bin} output depends on HIVEMIND_THREADS");
    }
}

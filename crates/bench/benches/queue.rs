//! Microbenchmarks for the calendar event queue the engines schedule
//! through. Two access patterns matter:
//!
//! * **push/pop mixed** — the DES kernel's steady state: one or two
//!   pending events, every push immediately followed by a pop.
//! * **hold** — the classic calendar-queue workload (pop the minimum,
//!   push a successor a random gap later) at a fixed pending count,
//!   which is what the sharded swarm engine's action queues look like
//!   mid-mission. Measured at 1k and 100k pending entries, the second
//!   deep enough that bucket-width adaptation decides the outcome.
//!
//! Runs in CI's quick mode via `HIVEMIND_BENCH_QUICK=1` (the criterion
//! stand-in shortens warm-up/measurement; the workload is unchanged).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hivemind_sim::calendar::CalendarQueue;
use hivemind_sim::time::SimTime;

/// Deterministic gap generator (an LCG, not `rand`, so the bench has no
/// dependency on RNG internals it isn't measuring).
struct Lcg(u64);

impl Lcg {
    fn next_gap(&mut self, mean_ns: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Uniform in [1, 2*mean): same mean as exponential, cheap to draw.
        1 + (self.0 >> 33) % (2 * mean_ns)
    }
}

fn bench_push_pop_mixed(c: &mut Criterion) {
    c.bench_function("calendar_push_pop_mixed", |b| {
        let mut q: CalendarQueue<(SimTime, u64), u64> = CalendarQueue::new();
        let mut t = 0u64;
        let mut seq = 0u64;
        b.iter(|| {
            t += 1_000;
            seq += 1;
            q.push((SimTime::from_nanos(black_box(t)), seq), seq);
            q.pop().expect("just pushed")
        })
    });
}

fn bench_hold(c: &mut Criterion) {
    let mut group = c.benchmark_group("calendar_hold");
    for &pending in &[1_000usize, 100_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(pending),
            &pending,
            |b, &pending| {
                let mut q: CalendarQueue<(SimTime, u64), u64> =
                    CalendarQueue::with_capacity(pending);
                let mut lcg = Lcg(0x9E3779B97F4A7C15);
                let mut seq = 0u64;
                for _ in 0..pending {
                    seq += 1;
                    q.push((SimTime::from_nanos(lcg.next_gap(1_000_000)), seq), seq);
                }
                b.iter(|| {
                    let ((t, _), v) = q.pop().expect("hold keeps the queue full");
                    seq += 1;
                    let next = t.as_nanos() + lcg.next_gap(1_000_000);
                    q.push((SimTime::from_nanos(next), seq), v);
                    v
                })
            },
        );
    }
    group.finish();
}

criterion_group!(queue, bench_push_pop_mixed, bench_hold);
criterion_main!(queue);

//! End-to-end experiment benchmarks, one per evaluation table/figure
//! family. These time the *regeneration cost* of the paper's experiments
//! on the simulator (the `fig*` binaries print the actual rows); each uses
//! a reduced configuration so `cargo bench` stays fast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hivemind_apps::learning::{run_campaign, RetrainMode};
use hivemind_apps::scenario::Scenario;
use hivemind_apps::suite::App;
use hivemind_core::analytic::QuickModel;
use hivemind_core::experiment::{Experiment, ExperimentConfig};
use hivemind_core::platform::Platform;

fn small_app(app: App, platform: Platform) -> ExperimentConfig {
    ExperimentConfig::single_app(app)
        .platform(platform)
        .duration_secs(10.0)
        .seed(1)
}

fn fig01_scenario(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig01_scenario_a");
    g.sample_size(10);
    for platform in Platform::MAIN {
        g.bench_with_input(
            BenchmarkId::from_parameter(platform.label()),
            &platform,
            |b, &p| {
                b.iter(|| {
                    Experiment::new(
                        ExperimentConfig::scenario(Scenario::StationaryItems)
                            .platform(p)
                            .seed(1),
                    )
                    .run()
                    .mission
                    .duration_secs
                })
            },
        );
    }
    g.finish();
}

fn fig04_single_apps(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig04_single_app_10s");
    g.sample_size(10);
    for app in [App::FaceRecognition, App::WeatherAnalytics, App::Slam] {
        for platform in [Platform::CentralizedFaaS, Platform::DistributedEdge] {
            g.bench_with_input(
                BenchmarkId::new(app.label(), platform.label()),
                &(app, platform),
                |b, &(a, p)| b.iter(|| Experiment::new(small_app(a, p)).run().tasks.len()),
            );
        }
    }
    g.finish();
}

fn fig13_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_ablation_s9_10s");
    g.sample_size(10);
    for platform in Platform::ABLATIONS {
        g.bench_with_input(
            BenchmarkId::from_parameter(platform.label()),
            &platform,
            |b, &p| {
                b.iter(|| {
                    Experiment::new(small_app(App::TextRecognition, p))
                        .run()
                        .tasks
                        .len()
                })
            },
        );
    }
    g.finish();
}

fn fig15_learning(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_learning_campaign");
    g.sample_size(10);
    for mode in RetrainMode::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(mode.label()), &mode, |b, &m| {
            b.iter(|| run_campaign(m, 16, 40, 6, 42).correct_pct)
        });
    }
    g.finish();
}

fn fig16_cars(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16_car_missions");
    g.sample_size(10);
    for scenario in [Scenario::TreasureHunt, Scenario::CarMaze] {
        g.bench_with_input(
            BenchmarkId::from_parameter(scenario.label()),
            &scenario,
            |b, &s| {
                b.iter(|| {
                    Experiment::new(
                        ExperimentConfig::scenario(s)
                            .platform(Platform::HiveMind)
                            .seed(1),
                    )
                    .run()
                    .mission
                    .duration_secs
                })
            },
        );
    }
    g.finish();
}

fn fig17_swarm_cell(c: &mut Criterion) {
    // One cell of the fig17b swarm sweep, end-to-end: servers scale with
    // the device count at the testbed ratio, exactly as the harness does.
    let mut g = c.benchmark_group("fig17_swarm_cell");
    g.sample_size(10);
    for devices in [64u32, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(devices), &devices, |b, &d| {
            b.iter(|| {
                Experiment::new(
                    ExperimentConfig::scenario(Scenario::StationaryItems)
                        .platform(Platform::HiveMind)
                        .devices(d)
                        .servers((d * 3 / 4).max(12))
                        .seed(1),
                )
                .run()
                .bandwidth
                .mean_mbps
            })
        });
    }
    g.finish();
}

fn fig18_analytic(c: &mut Criterion) {
    c.bench_function("fig18_quickmodel_4k_samples", |b| {
        let model = QuickModel::testbed(Platform::CentralizedFaaS, App::FaceRecognition);
        b.iter(|| model.predict(4000, 8).len())
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = fig01_scenario,
        fig04_single_apps,
        fig13_ablations,
        fig15_learning,
        fig16_cars,
        fig17_swarm_cell,
        fig18_analytic
}
criterion_main!(figures);

//! Microbenchmarks for the real algorithmic kernels behind the benchmark
//! suite (Table-level performance of the building blocks).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hivemind_apps::kernels::dedup::{deduplicate, Observation};
use hivemind_apps::kernels::embedding::observe;
use hivemind_apps::kernels::ocr::{recognize, SignImage};
use hivemind_apps::kernels::slam::{localize, OccupancyGrid, World};
use hivemind_apps::kernels::svm::{tag_dataset, LinearSvm};
use hivemind_sim::rng::RngForge;
use hivemind_swarm::geometry::Rect;
use hivemind_swarm::maze::{wall_follower, Maze};
use hivemind_swarm::route::{astar, coverage_lanes, Cell, GridMap};

fn bench_astar(c: &mut Criterion) {
    let mut map = GridMap::new(64, 64);
    for y in 0..60 {
        map.block(Cell { x: 32, y });
    }
    c.bench_function("astar_64x64_with_wall", |b| {
        b.iter(|| {
            astar(black_box(&map), Cell { x: 0, y: 0 }, Cell { x: 63, y: 0 }).expect("reachable")
        })
    });
}

fn bench_wall_follower(c: &mut Criterion) {
    let maze = Maze::generate(24, 24, RngForge::new(5));
    c.bench_function("wall_follower_24x24", |b| {
        b.iter(|| {
            let t = wall_follower(black_box(&maze));
            assert!(t.reached);
            t.steps()
        })
    });
}

fn bench_dedup(c: &mut Criterion) {
    let mut rng = RngForge::new(7).stream("bench");
    let obs: Vec<Observation> = (0..100)
        .map(|i| Observation {
            device: i % 16,
            embedding: observe(i % 25, 0.03, &mut rng),
            truth: i % 25,
        })
        .collect();
    c.bench_function("dedup_100_observations", |b| {
        b.iter(|| deduplicate(black_box(&obs), 0.8).unique_count)
    });
}

fn bench_ocr(c: &mut Criterion) {
    let mut rng = RngForge::new(9).stream("bench");
    let img = SignImage::render("W12").with_noise(0.05, &mut rng);
    c.bench_function("ocr_recognize_3_glyphs", |b| {
        b.iter(|| recognize(black_box(&img)))
    });
}

fn bench_svm_train(c: &mut Criterion) {
    let mut rng = RngForge::new(11).stream("bench");
    let data = tag_dataset(&mut rng, 200, 8, 1.5);
    c.bench_function("svm_fit_200x8_5_epochs", |b| {
        b.iter(|| {
            let mut svm = LinearSvm::new(8, 0.01);
            svm.fit(black_box(&data), 5);
            svm.accuracy(&data)
        })
    });
}

fn bench_slam(c: &mut Criterion) {
    let mut world = World::new(40, 40);
    for i in 0..40 {
        world.add_obstacle(i, 0);
        world.add_obstacle(i, 39);
    }
    for i in 10..30 {
        world.add_obstacle(i, 20);
    }
    let mut map = OccupancyGrid::new(40, 40);
    for &p in &[(5u32, 5u32), (30, 10), (10, 30), (20, 10)] {
        map.integrate(p, &world.scan_from(p, 40));
    }
    let scan = world.scan_from((15, 10), 40);
    c.bench_function("slam_integrate_scan", |b| {
        b.iter(|| {
            let mut m = map.clone();
            m.integrate((15, 10), black_box(&scan));
            m.coverage()
        })
    });
    c.bench_function("slam_localize_search3", |b| {
        b.iter(|| localize(black_box(&map), (16, 11), &scan, 3))
    });
}

fn bench_coverage(c: &mut Criterion) {
    let region = Rect::new(0.0, 0.0, 40.0, 25.0);
    c.bench_function("coverage_lanes_region", |b| {
        b.iter(|| coverage_lanes(black_box(&region), 6.7))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_astar,
        bench_wall_follower,
        bench_dedup,
        bench_ocr,
        bench_svm_train,
        bench_slam,
        bench_coverage
}
criterion_main!(kernels);

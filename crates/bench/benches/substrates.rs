//! Substrate throughput benchmarks: how fast the simulator itself runs —
//! event kernel, network fabric, serverless cluster, data plane.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hivemind_faas::cluster::{Cluster, ClusterParams};
use hivemind_faas::dataplane::{DataPlane, ExchangeProtocol};
use hivemind_faas::types::{AppId, AppProfile, Invocation};
use hivemind_net::fabric::{Fabric, Transfer};
use hivemind_net::topology::{Node, Topology, TopologyParams};
use hivemind_sim::engine::{Context, Engine, Model};
use hivemind_sim::rng::RngForge;
use hivemind_sim::time::{SimDuration, SimTime};

struct PingPong {
    left: u64,
}
impl Model for PingPong {
    type Event = ();
    fn handle(&mut self, ctx: &mut Context<()>, _ev: ()) {
        if self.left > 0 {
            self.left -= 1;
            ctx.schedule_after(SimDuration::from_micros(1), ());
        }
    }
}

fn bench_event_kernel(c: &mut Criterion) {
    c.bench_function("des_kernel_10k_events", |b| {
        b.iter(|| {
            let mut engine = Engine::new(PingPong { left: 10_000 });
            engine.schedule_at(SimTime::ZERO, ());
            engine.run_to_completion();
            engine.events_processed()
        })
    });
}

fn bench_fabric(c: &mut Criterion) {
    c.bench_function("fabric_1k_uplink_transfers", |b| {
        b.iter(|| {
            let mut fabric = Fabric::new(Topology::new(TopologyParams::default()));
            for i in 0..1000u64 {
                fabric.send(
                    SimTime::from_nanos(i * 1_000_000),
                    Transfer {
                        src: Node::Device((i % 16) as u32),
                        dst: Node::Server((i % 12) as u32),
                        bytes: 100_000,
                        tag: i,
                    },
                );
            }
            let mut n = 0;
            while let Some(t) = fabric.next_wakeup() {
                n += fabric.advance_to(t).len();
            }
            assert_eq!(n, 1000);
            n
        })
    });
}

fn bench_cluster(c: &mut Criterion) {
    c.bench_function("cluster_1k_invocations", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(ClusterParams::default(), RngForge::new(1));
            cluster.register_app(AppId(0), AppProfile::test_profile(50.0));
            for i in 0..1000u64 {
                cluster.submit(
                    SimTime::from_nanos(i * 10_000_000),
                    Invocation::root(AppId(0), i),
                );
            }
            let mut n = 0;
            while let Some(t) = cluster.next_wakeup() {
                n += cluster.advance_to(t).len();
            }
            assert_eq!(n, 1000);
            n
        })
    });
}

fn bench_dataplane(c: &mut Criterion) {
    for (name, proto) in [
        ("dataplane_couchdb", ExchangeProtocol::CouchDb),
        ("dataplane_remote_memory", ExchangeProtocol::RemoteMemory),
    ] {
        c.bench_function(name, |b| {
            let mut plane = DataPlane::new();
            let mut rng = RngForge::new(2).stream("bench");
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                plane.exchange(
                    SimTime::from_nanos(i * 1_000_000),
                    black_box(proto),
                    200_000,
                    &mut rng,
                )
            })
        });
    }
}

criterion_group! {
    name = substrates;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_event_kernel,
        bench_fabric,
        bench_cluster,
        bench_dataplane
}
criterion_main!(substrates);

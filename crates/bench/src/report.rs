//! Shared figure-binary reporting: the `--trace` flag, trace-file export,
//! and the outcome→table-cell helpers every fig binary used to inline.
//!
//! Each binary constructs one [`Report`] from its command line and routes
//! its experiment execution through it:
//!
//! ```no_run
//! use hivemind_bench::report::Report;
//! use hivemind_bench::Workload;
//! use hivemind_core::prelude::*;
//!
//! let report = Report::from_env();
//! let configs: Vec<ExperimentConfig> = Workload::evaluation_set()
//!     .iter()
//!     .map(|w| w.config(Platform::HiveMind, 3))
//!     .collect();
//! let outcomes = report.run_configs(&configs);
//! ```
//!
//! Without `--trace` the report is a pass-through to the harness
//! [`Runner`](hivemind_core::runner::Runner) and tracing stays disabled
//! (zero cost). With `--trace <path>` every experiment the report runs is
//! executed with [`ExperimentConfig::trace`] enabled and its event trace
//! is exported twice: Chrome `trace_event` JSON (load in
//! `chrome://tracing` or Perfetto) and a JSONL sibling with the `.jsonl`
//! extension. Multi-run calls key each file pair by position and seed so
//! a sweep never overwrites itself; the first trace is always written at
//! the exact path given, so `--trace out.trace.json` reliably produces
//! `out.trace.json`.

use std::cell::Cell;
use std::path::{Path, PathBuf};

use hivemind_core::experiment::ExperimentConfig;
use hivemind_core::metrics::Outcome;
use hivemind_core::runner::RunSet;
use hivemind_sim::trace::Trace;

use crate::Workload;

/// Per-binary reporting context: owns the `--trace` flag and fans
/// experiment execution out on the harness runner.
#[derive(Debug)]
pub struct Report {
    trace_path: Option<PathBuf>,
    /// Whether the exact `--trace` path has been written yet (the first
    /// exported trace claims it).
    claimed: Cell<bool>,
}

impl Report {
    /// Builds a report from the process command line via the shared
    /// [`crate::cli`] parser.
    ///
    /// Recognizes `--trace <path>` and `--trace=<path>`; other arguments
    /// are ignored here (the shared parser hands them to the binary).
    pub fn from_env() -> Report {
        crate::cli::Cli::from_env().report()
    }

    /// Builds a report from an explicit argument list (testable variant
    /// of [`Report::from_env`]).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Report {
        crate::cli::Cli::from_args(args).report()
    }

    /// Builds a report straight from a parsed trace path (the shared
    /// [`crate::cli::Cli`] constructs reports this way).
    pub(crate) fn with_trace(trace_path: Option<PathBuf>) -> Report {
        Report {
            trace_path,
            claimed: Cell::new(false),
        }
    }

    /// Whether tracing was requested on the command line.
    pub fn tracing(&self) -> bool {
        self.trace_path.is_some()
    }

    /// Applies the report's tracing decision to a configuration
    /// (preserving the rest of its run plan).
    pub fn configure(&self, mut cfg: ExperimentConfig) -> ExperimentConfig {
        cfg.plan.trace = self.tracing();
        cfg
    }

    /// Runs one experiment; its trace (if enabled) goes to the exact
    /// `--trace` path.
    pub fn run(&self, cfg: ExperimentConfig) -> Outcome {
        let mut outcomes = self.run_configs(std::slice::from_ref(&cfg));
        outcomes.pop().expect("one config in, one outcome out")
    }

    /// Runs a configuration sweep on the harness runner, in config order.
    ///
    /// Trace files are keyed `c<index>-s<seed>` (sweeps often share one
    /// seed, so position disambiguates). Traces are detached from the
    /// returned outcomes once exported, keeping the outcomes cheap to
    /// clone.
    pub fn run_configs(&self, configs: &[ExperimentConfig]) -> Vec<Outcome> {
        let traced: Vec<ExperimentConfig> =
            configs.iter().map(|c| self.configure(c.clone())).collect();
        let mut outcomes = crate::runner().run_configs(&traced);
        if self.tracing() {
            let mut written = Vec::new();
            for (i, (cfg, o)) in traced.iter().zip(&mut outcomes).enumerate() {
                if let Some(trace) = o.trace.take() {
                    let key = if traced.len() == 1 {
                        None
                    } else {
                        Some(format!("c{:02}-s{}", i, cfg.seed))
                    };
                    written.push(self.export(key.as_deref(), &trace));
                }
            }
            announce(&written);
        }
        outcomes
    }

    /// Runs `replicates` derived-seed copies of `base` on the harness
    /// runner, tracing each replicate when `--trace` is set.
    ///
    /// Per-replicate trace files are keyed `s<seed>` by the derived seed
    /// (seeds in a replicate chain are unique), so the same files appear
    /// regardless of `HIVEMIND_THREADS` — and byte-identically so, since
    /// each replicate's trace is a pure function of its configuration.
    pub fn run_replicated(&self, base: &ExperimentConfig, replicates: u64) -> RunSet {
        let set = crate::runner().run_replicates(&self.configure(base.clone()), replicates);
        if self.tracing() {
            let written: Vec<PathBuf> = set
                .traces()
                .map(|(seed, trace)| self.export(Some(&format!("s{seed}")), trace))
                .collect();
            announce(&written);
        }
        set
    }

    /// Writes one trace as a Chrome-trace/JSONL file pair and returns the
    /// Chrome-trace path.
    ///
    /// The first export claims the exact `--trace` path; keyed exports
    /// additionally get a `<stem>.<key>.<ext>` sibling so later runs in
    /// the same invocation never clobber earlier ones.
    fn export(&self, key: Option<&str>, trace: &Trace) -> PathBuf {
        let base = self
            .trace_path
            .as_ref()
            .expect("export is only called when tracing");
        let chrome = match key {
            Some(key) if self.claimed.get() => keyed_path(base, key),
            _ => {
                self.claimed.set(true);
                base.clone()
            }
        };
        write_or_die(&chrome, &trace.to_chrome_trace());
        write_or_die(&chrome.with_extension("jsonl"), &trace.to_jsonl());
        chrome
    }
}

/// Prints one summary line for a batch of exported trace files.
fn announce(written: &[PathBuf]) {
    match written {
        [] => {}
        [only] => println!("trace: {} (+ .jsonl)", only.display()),
        [first, .., last] => println!(
            "trace: {} file pairs, {} .. {} (+ .jsonl each)",
            written.len(),
            first.display(),
            last.display()
        ),
    }
}

/// Inserts a disambiguating key before a trace path's extension:
/// `out.trace.json` + `c03-s1` → `out.trace.c03-s1.json`. Used for every
/// run after the first in a multi-run invocation, and by `all_figures` to
/// give each figure its own trace family.
pub fn keyed_path(base: &Path, key: &str) -> PathBuf {
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let name = match base.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{stem}.{key}.{ext}"),
        None => format!("{stem}.{key}"),
    };
    base.with_file_name(name)
}

fn write_or_die(path: &Path, contents: &str) {
    std::fs::write(path, contents)
        .unwrap_or_else(|e| panic!("failed to write trace file {}: {e}", path.display()));
}

/// A task-latency quantile of an outcome's end-to-end distribution, in
/// seconds. Reads the summary's shared sorted cache, so the per-cell
/// clone-and-resort the figure tables used to pay is gone.
pub fn task_quantile_secs(o: &Outcome, q: f64) -> f64 {
    o.tasks.total.quantile(q)
}

/// Median task latency as a milliseconds table cell.
pub fn task_p50_cell(o: &Outcome) -> String {
    crate::ms(task_quantile_secs(o, 0.5))
}

/// p99 task latency as a milliseconds table cell.
pub fn task_p99_cell(o: &Outcome) -> String {
    crate::ms(task_quantile_secs(o, 0.99))
}

/// The `[p50, p99]` cell pair the per-platform figures print for every
/// workload: task milliseconds for the benchmark apps, job seconds plus
/// completion status for the end-to-end scenarios.
pub fn workload_cells(w: &Workload, o: &Outcome) -> [String; 2] {
    match w {
        Workload::App(_) => [task_p50_cell(o), task_p99_cell(o)],
        Workload::Scenario(_) => [
            format!("{:.1}s", o.mission.duration_secs),
            (if o.mission.completed { "done" } else { "DNF" }).to_string(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hivemind_apps::suite::App;
    use hivemind_core::platform::Platform;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_parsing_accepts_both_spellings() {
        assert!(!Report::from_args(args(&[])).tracing());
        let split = Report::from_args(args(&["--trace", "a.json"]));
        assert_eq!(split.trace_path.as_deref(), Some(Path::new("a.json")));
        let joined = Report::from_args(args(&["--trace=b.json"]));
        assert_eq!(joined.trace_path.as_deref(), Some(Path::new("b.json")));
        let dangling = Report::from_args(args(&["--trace"]));
        assert!(!dangling.tracing());
    }

    #[test]
    fn keyed_paths_insert_before_extension() {
        assert_eq!(
            keyed_path(Path::new("out/x.trace.json"), "c01-s3"),
            Path::new("out/x.trace.c01-s3.json")
        );
        assert_eq!(keyed_path(Path::new("bare"), "s9"), Path::new("bare.s9"));
    }

    #[test]
    fn untraced_report_is_passthrough() {
        let report = Report::from_args(args(&[]));
        let cfg = ExperimentConfig::single_app(App::WeatherAnalytics)
            .platform(Platform::CentralizedFaaS)
            .duration_secs(2.0)
            .seed(1);
        let o = report.run(cfg);
        assert!(o.trace.is_none(), "no --trace, no trace buffering");
        assert!(!o.tasks.is_empty());
    }

    #[test]
    fn traced_sweep_writes_keyed_file_pairs() {
        let dir = std::env::temp_dir().join(format!("hm-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("out.trace.json");
        let report = Report::from_args(args(&["--trace", path.to_str().expect("utf-8 path")]));
        let cfg = ExperimentConfig::single_app(App::WeatherAnalytics)
            .platform(Platform::CentralizedFaaS)
            .duration_secs(2.0)
            .seed(7);
        let outcomes = report.run_configs(&[cfg.clone(), cfg.seed(8)]);
        assert_eq!(outcomes.len(), 2);
        assert!(
            outcomes.iter().all(|o| o.trace.is_none()),
            "traces are detached after export"
        );
        // First run claims the exact path; the second gets a keyed pair.
        for name in ["out.trace.json", "out.trace.jsonl", "out.trace.c01-s8.json"] {
            let p = dir.join(name);
            let body = std::fs::read_to_string(&p)
                .unwrap_or_else(|e| panic!("missing {}: {e}", p.display()));
            assert!(!body.is_empty());
        }
        assert!(std::fs::read_to_string(dir.join("out.trace.json"))
            .expect("chrome trace")
            .starts_with("{\"displayTimeUnit\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cell_helpers_take_shared_outcomes() {
        let report = Report::from_args(args(&[]));
        let w = Workload::App(App::WeatherAnalytics);
        let o = report.run(w.config(Platform::CentralizedFaaS, 3).duration_secs(2.0));
        let [p50, p99] = workload_cells(&w, &o);
        let (p50, p99): (f64, f64) = (p50.parse().expect("ms"), p99.parse().expect("ms"));
        assert!(p50 > 0.0 && p99 >= p50);
    }
}

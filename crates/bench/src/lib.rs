//! # hivemind-bench
//!
//! The figure-regeneration harness. Every table and figure in the paper's
//! evaluation has a binary under `src/bin/` that reruns the corresponding
//! experiment on the simulator stack and prints the paper's rows:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `fig01` | Fig. 1 — end-to-end scenario, 16 real-scale + 1000 simulated drones, 4 platforms |
//! | `fig03` | Fig. 3 — latency breakdown under all-cloud execution; bandwidth/latency vs #drones × resolution |
//! | `fig04` | Fig. 4 — task/job latency, centralized vs distributed |
//! | `fig05` | Fig. 5 — serverless opportunities: concurrency, elasticity, fault tolerance |
//! | `fig06` | Fig. 6 — serverless challenges: variability, instantiation, data exchange |
//! | `fig11` | Fig. 11 — latency across the three platforms |
//! | `fig12` | Fig. 12 — latency breakdown, centralized vs HiveMind |
//! | `fig13` | Fig. 13 — ablation of HiveMind's techniques |
//! | `fig14` | Fig. 14 — battery and network bandwidth per platform |
//! | `fig15` | Fig. 15 — continuous-learning detection quality |
//! | `fig16` | Fig. 16 — robotic-car missions |
//! | `fig17` | Fig. 17 — resolution and swarm-size scalability |
//! | `fig18` | Fig. 18 — simulator validation (DES vs analytic model) |
//!
//! `all_figures` runs the lot; `cargo bench` runs the criterion
//! micro/scenario benchmarks under `benches/`.
//!
//! Every figure binary accepts `--smoke` (or `HIVEMIND_SMOKE=1`): a
//! seconds-scale deterministic slice of the figure — short durations,
//! two repeats, a three-workload set — used by the golden snapshot tests
//! (`tests/golden_smoke.rs`) and the `perf_smoke` baseline harness. The
//! default (no flag) output is untouched by smoke mode.
//!
//! `chaos_sweep` is the odd one out: instead of reproducing a figure it
//! sweeps the unified fault plane (function-fault rate × packet loss,
//! controller failover, device MTBF) and asserts graceful degradation;
//! `chaos_sweep --smoke` prints a small deterministic slice that CI
//! byte-diffs across `HIVEMIND_THREADS` values. `overload_sweep` does the
//! same for the overload-control plane: offered load × admission bound ×
//! circuit breaker, asserting that shedding keeps queueing bounded at the
//! capacity plateau while the unbounded baseline's latency grows without
//! limit.
//!
//! Every figure binary accepts `--trace <path>` to export structured
//! event traces (Chrome `trace_event` JSON + JSONL) for the runs behind
//! its tables — see [`report`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod report;

use hivemind_apps::scenario::Scenario;
use hivemind_apps::suite::App;
use hivemind_core::experiment::{Experiment, ExperimentConfig};
use hivemind_core::metrics::Outcome;
use hivemind_core::platform::Platform;
use hivemind_core::runner::{RunSet, Runner};

/// The twelve evaluation workloads: S1–S10 plus the two drone scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// A single-phase benchmark app.
    App(App),
    /// An end-to-end mission.
    Scenario(Scenario),
}

impl Workload {
    /// S1–S10 followed by ScA/ScB, the x-axis of most figures.
    pub fn evaluation_set() -> Vec<Workload> {
        let mut v: Vec<Workload> = App::ALL.iter().copied().map(Workload::App).collect();
        v.push(Workload::Scenario(Scenario::StationaryItems));
        v.push(Workload::Scenario(Scenario::MovingPeople));
        v
    }

    /// The smoke-mode slice of [`Workload::evaluation_set`]: two apps
    /// with different profiles plus one end-to-end mission, enough to
    /// exercise every execution path in seconds.
    pub fn smoke_set() -> Vec<Workload> {
        vec![
            Workload::App(App::FaceRecognition),
            Workload::App(App::WeatherAnalytics),
            Workload::Scenario(Scenario::StationaryItems),
        ]
    }

    /// [`Workload::smoke_set`] under `--smoke`, the full
    /// [`Workload::evaluation_set`] otherwise.
    pub fn active_set() -> Vec<Workload> {
        if smoke() {
            Workload::smoke_set()
        } else {
            Workload::evaluation_set()
        }
    }

    /// Paper column label.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::App(a) => a.label(),
            Workload::Scenario(s) => s.label(),
        }
    }

    /// The experiment configuration this workload runs under.
    pub fn config(&self, platform: Platform, seed: u64) -> ExperimentConfig {
        let config = match self {
            Workload::App(app) => {
                ExperimentConfig::single_app(*app).duration_secs(single_app_duration_secs())
            }
            Workload::Scenario(s) => ExperimentConfig::scenario(*s),
        };
        config.platform(platform).seed(seed)
    }

    /// Runs this workload on `platform` with `seed`.
    pub fn run(&self, platform: Platform, seed: u64) -> Outcome {
        Experiment::new(self.config(platform, seed)).run()
    }

    /// Runs `replicates` seeds of this workload in parallel (replicate
    /// seeds derived from `root_seed`; workers from `HIVEMIND_THREADS`).
    pub fn run_replicated(&self, platform: Platform, root_seed: u64, replicates: u64) -> RunSet {
        runner().run_replicates(&self.config(platform, root_seed), replicates)
    }
}

/// The harness-wide parallel runner (thread count from
/// `HIVEMIND_THREADS`, default = available parallelism).
pub fn runner() -> Runner {
    Runner::from_env()
}

/// Runs `replicates` derived-seed copies of `config` on the harness
/// runner.
pub fn run_replicated(config: &ExperimentConfig, replicates: u64) -> RunSet {
    runner().run_replicates(config, replicates)
}

/// Single-app workload duration. The paper runs each job for 120 s; set
/// `HIVEMIND_FULL=1` for that, default 60 s keeps the full harness
/// quick, `--smoke` drops to 4 s.
pub fn single_app_duration_secs() -> f64 {
    if full_fidelity() {
        120.0
    } else if smoke() {
        4.0
    } else {
        60.0
    }
}

/// Whether full-fidelity mode is requested (`--full` on the command
/// line or `HIVEMIND_FULL=1`). Delegates to the shared [`cli`] parser.
pub fn full_fidelity() -> bool {
    cli::Cli::from_env().full()
}

/// Whether smoke mode is requested (`--smoke` on the command line or
/// `HIVEMIND_SMOKE=1` in the environment). Smoke mode is the golden-test
/// and perf-baseline slice: every figure prints a deterministic,
/// seconds-scale subset of its tables. Full fidelity wins if both are
/// set. Delegates to the shared [`cli`] parser.
pub fn smoke() -> bool {
    cli::Cli::from_env().smoke()
}

/// Number of repetitions for distribution-style figures.
pub fn repeats() -> u64 {
    if full_fidelity() {
        10
    } else if smoke() {
        2
    } else {
        3
    }
}

/// A fixed-width text table printer for harness output.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i] - cells[i].len();
                if i == 0 {
                    line.push_str(&cells[i]);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(&cells[i]);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats seconds as milliseconds with sensible precision.
pub fn ms(secs: f64) -> String {
    format!("{:.1}", secs * 1e3)
}

/// Formats a fraction as a percentage.
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

/// Prints a figure banner.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_set_has_twelve_columns() {
        let set = Workload::evaluation_set();
        assert_eq!(set.len(), 12);
        assert_eq!(set[0].label(), "S1");
        assert_eq!(set[10].label(), "ScA");
        assert_eq!(set[11].label(), "ScB");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["workload", "median", "p99"]);
        t.row(["S1", "250.0", "900.5"]);
        t.row(["S10", "600.0", "2100.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("workload"));
        assert!(lines[2].ends_with("900.5"));
        // All rows have equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(0.25), "250.0");
        assert_eq!(pct(0.333), "33.3%");
    }
}

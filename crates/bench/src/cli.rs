//! One command-line surface for every harness binary.
//!
//! Each figure binary used to hand-roll its own `std::env::args()` scan
//! (and three of them grew subtly different ones). [`Cli`] is the single
//! parser: it owns the flags the whole harness recognizes and hands the
//! leftovers back for bin-specific switches.
//!
//! Recognized flags:
//!
//! - `--smoke` — the seconds-scale deterministic slice (equivalent to
//!   `HIVEMIND_SMOKE=1`); golden tests and the perf baseline run this.
//! - `--full` — paper-fidelity runs (equivalent to `HIVEMIND_FULL=1`).
//!   Full fidelity wins when both are requested.
//! - `--trace <path>` / `--trace=<path>` — export structured event
//!   traces for every run, via [`Report`].
//!
//! Anything else is collected verbatim in [`Cli::rest`] so binaries with
//! extra switches (`perf_smoke --check`) layer on top instead of
//! re-scanning the command line.

use std::path::{Path, PathBuf};

use crate::report::Report;

/// Parsed harness command line.
#[derive(Debug, Clone)]
pub struct Cli {
    smoke_flag: bool,
    full_flag: bool,
    trace: Option<PathBuf>,
    rest: Vec<String>,
}

impl Cli {
    /// Parses the process command line.
    pub fn from_env() -> Cli {
        Cli::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable variant of
    /// [`Cli::from_env`]).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Cli {
        let mut cli = Cli {
            smoke_flag: false,
            full_flag: false,
            trace: None,
            rest: Vec::new(),
        };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => cli.smoke_flag = true,
                "--full" => cli.full_flag = true,
                "--trace" => cli.trace = args.next().map(PathBuf::from),
                other => match other.strip_prefix("--trace=") {
                    Some(path) => cli.trace = Some(PathBuf::from(path)),
                    None => cli.rest.push(arg),
                },
            }
        }
        cli
    }

    /// Whether `--smoke` itself was passed (ignoring the environment).
    pub fn smoke_flag(&self) -> bool {
        self.smoke_flag
    }

    /// Whether full-fidelity mode is in effect (`--full` or
    /// `HIVEMIND_FULL=1`).
    pub fn full(&self) -> bool {
        self.full_flag
            || std::env::var("HIVEMIND_FULL")
                .map(|v| v == "1")
                .unwrap_or(false)
    }

    /// Whether smoke mode is in effect (`--smoke` or `HIVEMIND_SMOKE=1`,
    /// unless full fidelity overrides it).
    pub fn smoke(&self) -> bool {
        if self.full() {
            return false;
        }
        self.smoke_flag
            || std::env::var("HIVEMIND_SMOKE")
                .map(|v| v == "1")
                .unwrap_or(false)
    }

    /// The `--trace` export path, if any.
    pub fn trace_path(&self) -> Option<&Path> {
        self.trace.as_deref()
    }

    /// The per-binary [`Report`] for this command line.
    pub fn report(&self) -> Report {
        Report::with_trace(self.trace.clone())
    }

    /// Arguments the shared parser did not recognize, in order — the
    /// bin-specific tail (`--check`, `--out PATH`, ...).
    pub fn rest(&self) -> &[String] {
        &self.rest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Cli {
        Cli::from_args(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn recognizes_shared_flags_and_keeps_the_rest() {
        let cli = parse(&["--check", "--smoke", "--trace", "t.json", "--out", "x"]);
        assert!(cli.smoke_flag());
        assert_eq!(cli.trace_path(), Some(Path::new("t.json")));
        assert_eq!(cli.rest(), ["--check", "--out", "x"]);
        assert_eq!(
            parse(&["--trace=u.json"]).trace_path(),
            Some(Path::new("u.json"))
        );
    }

    #[test]
    fn full_beats_smoke() {
        let cli = parse(&["--smoke", "--full"]);
        assert!(cli.full());
        assert!(!cli.smoke(), "full fidelity wins over smoke");
    }

    #[test]
    fn bare_command_line_is_inert() {
        let cli = parse(&[]);
        assert!(!cli.smoke_flag());
        assert!(cli.trace_path().is_none());
        assert!(cli.rest().is_empty());
        assert!(!cli.report().tracing());
    }
}

//! Fig. 16 — porting HiveMind to the 14-car rover swarm: job latency and
//! battery consumption for the Treasure Hunt and Maze scenarios.

use hivemind_bench::report::Report;
use hivemind_bench::{banner, repeats, smoke, Table};
use hivemind_core::prelude::*;

fn main() {
    let report = Report::from_env();
    banner("Figure 16: robotic cars — job latency (s) and battery (%)");
    let mut table = Table::new([
        "scenario",
        "platform",
        "latency p50 (s)",
        "latency max (s)",
        "battery mean (%)",
        "battery max (%)",
        "goals",
    ]);
    let scenarios: &[Scenario] = if smoke() {
        &[Scenario::TreasureHunt]
    } else {
        &[Scenario::TreasureHunt, Scenario::CarMaze]
    };
    for &scenario in scenarios {
        for platform in [
            Platform::CentralizedFaaS,
            Platform::DistributedEdge,
            Platform::HiveMind,
        ] {
            let set = report.run_replicated(
                &ExperimentConfig::scenario(scenario)
                    .platform(platform)
                    .seed(1),
                repeats(),
            );
            let lat = set.mission_durations();
            let goals = set
                .outcomes()
                .last()
                .expect("replicates")
                .mission
                .targets_found;
            table.row([
                scenario.label().to_string(),
                platform.label().to_string(),
                format!("{:.1}", lat.median()),
                format!("{:.1}", lat.max()),
                format!("{:.1}", set.mean_battery_pct()),
                format!("{:.1}", set.max_battery_pct()),
                format!("{goals}/14"),
            ]);
        }
    }
    table.print();
    println!("(paper: performance better and more predictable with HiveMind; the cars gain ~22%");
    println!(" from network acceleration and ~19% from fast remote memory, and being less");
    println!(" power-constrained they keep obstacle avoidance and sensor analytics on-board)");
}

//! Fig. 16 — porting HiveMind to the 14-car rover swarm: job latency and
//! battery consumption for the Treasure Hunt and Maze scenarios.

use hivemind_apps::scenario::Scenario;
use hivemind_bench::{banner, repeats, Table};
use hivemind_core::experiment::{Experiment, ExperimentConfig};
use hivemind_core::platform::Platform;
use hivemind_sim::stats::Summary;

fn main() {
    banner("Figure 16: robotic cars — job latency (s) and battery (%)");
    let mut table = Table::new([
        "scenario",
        "platform",
        "latency p50 (s)",
        "latency max (s)",
        "battery mean (%)",
        "battery max (%)",
        "goals",
    ]);
    for scenario in [Scenario::TreasureHunt, Scenario::CarMaze] {
        for platform in [
            Platform::CentralizedFaaS,
            Platform::DistributedEdge,
            Platform::HiveMind,
        ] {
            let mut lat = Summary::new();
            let mut batt_mean = 0.0;
            let mut batt_max: f64 = 0.0;
            let mut goals = 0;
            let n = repeats();
            for seed in 0..n {
                let o = Experiment::new(
                    ExperimentConfig::scenario(scenario)
                        .platform(platform)
                        .seed(seed + 1),
                )
                .run();
                lat.record(o.mission.duration_secs);
                batt_mean += o.battery.mean_pct / n as f64;
                batt_max = batt_max.max(o.battery.max_pct);
                goals = o.mission.targets_found;
            }
            table.row([
                scenario.label().to_string(),
                platform.label().to_string(),
                format!("{:.1}", lat.median()),
                format!("{:.1}", lat.max()),
                format!("{batt_mean:.1}"),
                format!("{batt_max:.1}"),
                format!("{goals}/14"),
            ]);
        }
    }
    table.print();
    println!("(paper: performance better and more predictable with HiveMind; the cars gain ~22%");
    println!(" from network acceleration and ~19% from fast remote memory, and being less");
    println!(" power-constrained they keep obstacle avoidance and sensor analytics on-board)");
}

//! Fig. 3 — (a) latency breakdown into network / management / cloud
//! execution under all-cloud execution, median and 99th-percentile bars
//! for S1–S10 + the two scenarios; (b) network bandwidth and tail latency
//! for face recognition as drones and frame resolution increase.

use hivemind_bench::report::Report;
use hivemind_bench::{banner, ms, pct, single_app_duration_secs, smoke, Table, Workload};
use hivemind_core::prelude::*;

fn main() {
    let report = Report::from_env();
    banner("Figure 3a: latency breakdown under all-cloud (Centralized FaaS) execution");
    let mut table = Table::new([
        "workload",
        "network",
        "management",
        "execution",
        "median (ms)",
        "p99 (ms)",
    ]);
    let workloads = Workload::active_set();
    let configs: Vec<ExperimentConfig> = workloads
        .iter()
        .map(|w| {
            let cfg = w.config(Platform::CentralizedFaaS, 1);
            match w {
                // The breakdown study ships the benchmark's sensor stream
                // at a 4 MB/s operating point (unsaturated but
                // network-visible, matching the paper's >=22% shares).
                Workload::App(_) => cfg.input_scale(2.0),
                Workload::Scenario(_) => cfg,
            }
        })
        .collect();
    for (w, o) in workloads.iter().zip(report.run_configs(&configs)) {
        let net = o.tasks.network_fraction();
        let mgmt = o.tasks.management_fraction();
        let exec = (1.0 - net - mgmt).max(0.0);
        table.row([
            w.label().to_string(),
            pct(net),
            pct(mgmt),
            pct(exec),
            ms(o.tasks.total.median()),
            ms(o.tasks.total.p99()),
        ]);
    }
    table.print();
    println!("(paper: networking >= 22% of median latency everywhere, 33% on average)");

    banner("Figure 3b: bandwidth + tail latency vs #drones, S1 at 8 fps per resolution");
    let mut table = Table::new(["frame", "drones", "bandwidth (MB/s)", "tail latency (ms)"]);
    // input_scale 1.0 = the default 2 MB batch; sweep 512 KB → 8 MB at
    // the full 8 fps offered load the paper uses for this experiment.
    let mut cells = Vec::new();
    let resolutions: &[(&str, f64)] = if smoke() {
        &[("2MB", 1.0), ("8MB", 4.0)]
    } else {
        &[
            ("512KB", 0.25),
            ("1MB", 0.5),
            ("2MB", 1.0),
            ("4MB", 2.0),
            ("8MB", 4.0),
        ]
    };
    let drone_counts: &[u32] = if smoke() {
        &[4, 16]
    } else {
        &[2, 4, 8, 12, 16]
    };
    for &(label, scale) in resolutions {
        for &drones in drone_counts {
            cells.push((label, scale, drones));
        }
    }
    let sweep: Vec<ExperimentConfig> = cells
        .iter()
        .map(|&(_, scale, drones)| {
            ExperimentConfig::single_app(App::FaceRecognition)
                .platform(Platform::CentralizedFaaS)
                .duration_secs(single_app_duration_secs().min(40.0))
                .devices(drones)
                .input_scale(scale)
                .rate_scale(8.0)
                .seed(1)
        })
        .collect();
    for (&(label, _, drones), o) in cells.iter().zip(report.run_configs(&sweep)) {
        table.row([
            label.to_string(),
            drones.to_string(),
            format!("{:.1}", o.bandwidth.mean_mbps),
            ms(o.tasks.total.p99()),
        ]);
    }
    table.print();
    println!(
        "(paper: latency low below ~4 drones even at max resolution, then the network saturates)"
    );
}

//! Overload sweep — saturation curves and graceful degradation under
//! burst traffic.
//!
//! Sweeps offered load (task-rate scale) against the overload-control
//! plane on a deliberately undersized cluster and prints the saturation
//! curve each policy produces: goodput (completed tasks/s), shed rate,
//! and p99 task latency, plus the knee point where goodput stops scaling
//! with offered load.
//!
//! The contrast the table demonstrates:
//!
//! * **unbounded** (no policy): past the knee, queues and p99 latency
//!   grow without bound while goodput stays pinned at capacity — every
//!   admitted task eventually completes, but arbitrarily late.
//! * **bounded** (queue bound + deadline): goodput plateaus at the same
//!   capacity, but excess work is shed at admission so the p99 of what
//!   *does* complete stays bounded — graceful degradation.
//!
//! A second table shows the retry circuit breaker failing fast through a
//! function-fault storm, and brownout spillover re-routing shed work to
//! degraded on-device execution.
//!
//! The overload plane draws no randomness: every shed, breaker, and
//! spillover decision is a pure function of queue lengths, counters, and
//! event times, so each sweep cell runs the *same* workload sample under
//! a different policy. `--smoke` runs a quick deterministic slice through
//! the replicate runner and prints the outcome JSON; CI diffs that output
//! across `HIVEMIND_THREADS` values to pin down byte-determinism.

use hivemind_bench::{banner, runner, Table};
use hivemind_core::prelude::*;

/// Offered-load multipliers swept against each policy.
const RATES: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];
const DURATION_SECS: f64 = 20.0;

fn config(rate_scale: f64, policy: OverloadPolicy) -> ExperimentConfig {
    // One server: saturation arrives within the sweep range instead of
    // needing thousands of devices.
    ExperimentConfig::single_app(App::Slam)
        .platform(Platform::CentralizedFaaS)
        .servers(1)
        .duration_secs(DURATION_SECS)
        .rate_scale(rate_scale)
        .seed(9)
        .plan(RunPlan::new().overload(policy))
}

struct Cell {
    goodput: f64,
    shed_pct: f64,
    p99_ms: f64,
    mean_queue_secs: f64,
}

fn run_cell(rate_scale: f64, policy: OverloadPolicy) -> Cell {
    let mut outcome = Experiment::new(config(rate_scale, policy)).run();
    let completed = outcome.tasks.len() as u64;
    let shed = outcome.shed.map(|s| s.tasks_shed).unwrap_or(0);
    Cell {
        // Tasks admitted past the arrival window still drain to completion,
        // so divide by the time the mission actually took, not the nominal
        // window: an unbounded backlog stretches the denominator and pins
        // goodput at capacity.
        goodput: completed as f64 / outcome.mission.duration_secs,
        shed_pct: 100.0 * shed as f64 / (completed + shed).max(1) as f64,
        p99_ms: outcome.p99_task_ms(),
        mean_queue_secs: outcome.tasks.management.mean(),
    }
}

/// Index of the knee: the first rate whose goodput gain over the
/// previous rate falls under 10% (goodput stopped scaling with load).
fn knee(cells: &[Cell]) -> usize {
    for i in 1..cells.len() {
        if cells[i].goodput < cells[i - 1].goodput * 1.10 {
            return i;
        }
    }
    cells.len() - 1
}

fn sweep() {
    banner("Overload sweep: saturation curves, unbounded vs bounded admission");
    let bounded_policy = || {
        OverloadPolicy::default()
            .queue_bound(16)
            .queue_deadline(SimDuration::from_secs(4))
    };
    let unbounded: Vec<Cell> = RATES
        .iter()
        .map(|&r| run_cell(r, OverloadPolicy::default()))
        .collect();
    let bounded: Vec<Cell> = RATES
        .iter()
        .map(|&r| run_cell(r, bounded_policy()))
        .collect();

    let mut table = Table::new([
        "offered load",
        "unb goodput/s",
        "unb p99 (ms)",
        "unb queue (s)",
        "bnd goodput/s",
        "bnd p99 (ms)",
        "bnd queue (s)",
        "bnd shed",
    ]);
    for (i, &rate) in RATES.iter().enumerate() {
        table.row([
            format!("{rate:.0}x"),
            format!("{:.1}", unbounded[i].goodput),
            format!("{:.0}", unbounded[i].p99_ms),
            format!("{:.2}", unbounded[i].mean_queue_secs),
            format!("{:.1}", bounded[i].goodput),
            format!("{:.0}", bounded[i].p99_ms),
            format!("{:.2}", bounded[i].mean_queue_secs),
            format!("{:.1}%", bounded[i].shed_pct),
        ]);
    }
    table.print();
    let k = knee(&bounded);
    println!(
        "(knee at {:.0}x offered load; queue bound 16, 4 s queueing deadline)",
        RATES[k]
    );

    // Unbounded baseline: queueing and p99 grow monotonically past the
    // knee — admitted work completes, but arbitrarily late.
    for i in (k.max(1))..RATES.len() {
        assert!(
            unbounded[i].p99_ms > unbounded[i - 1].p99_ms,
            "unbounded p99 must grow with load: {:.0} -> {:.0} ms at {}x",
            unbounded[i - 1].p99_ms,
            unbounded[i].p99_ms,
            RATES[i]
        );
        assert!(
            unbounded[i].mean_queue_secs > unbounded[i - 1].mean_queue_secs,
            "unbounded queueing must grow with load"
        );
    }
    // Bounded policy: goodput plateaus at capacity while p99 stays
    // bounded — the excess is shed at admission instead of queued.
    let peak = bounded.iter().map(|c| c.goodput).fold(0.0, f64::max);
    let last = bounded.last().unwrap();
    assert!(
        last.goodput >= 0.75 * peak,
        "bounded goodput must plateau, not collapse: {:.1}/s vs peak {:.1}/s",
        last.goodput,
        peak
    );
    assert!(
        last.p99_ms < unbounded.last().unwrap().p99_ms,
        "shedding must bound p99 below the unbounded baseline: {:.0} vs {:.0} ms",
        last.p99_ms,
        unbounded.last().unwrap().p99_ms
    );
    assert!(last.shed_pct > 0.0, "past the knee the bound must shed");
    // The admission bound + queueing deadline cap time spent waiting for
    // the cluster: bounded mean queueing must stay a small fraction of
    // the unbounded backlog at the top rate.
    assert!(
        last.mean_queue_secs < 0.5 * unbounded.last().unwrap().mean_queue_secs,
        "the deadline must cap queueing: {:.2} vs {:.2} s unbounded",
        last.mean_queue_secs,
        unbounded.last().unwrap().mean_queue_secs
    );

    banner("Breaker + brownout spillover under a function-fault storm");
    let storm = FaultPlan::default()
        .function_fault_rate(0.9)
        .retry(RetryPolicy::bounded(2, SimDuration::from_millis(20)));
    let base = ExperimentConfig::single_app(App::FaceRecognition)
        .platform(Platform::CentralizedFaaS)
        .duration_secs(20.0)
        .seed(9)
        .plan(RunPlan::new().faults(storm));
    let no_breaker = Experiment::new(base.clone()).run();
    let with_breaker = Experiment::new(
        base.clone().plan(
            base.plan
                .clone()
                .overload(OverloadPolicy::default().breaker(3, SimDuration::from_secs(2))),
        ),
    )
    .run();
    let with_spillover = Experiment::new(
        base.clone().plan(
            base.plan.overload(
                OverloadPolicy::default()
                    .breaker(3, SimDuration::from_secs(2))
                    .spillover(),
            ),
        ),
    )
    .run();
    let mut table = Table::new(["policy", "completed", "lost", "shed", "spilled", "opens"]);
    for (label, o) in [
        ("retries only", &no_breaker),
        ("circuit breaker", &with_breaker),
        ("breaker + spillover", &with_spillover),
    ] {
        let lost = o.recovery.map(|r| r.tasks_lost).unwrap_or(0);
        let (shed, spilled, opens) = o
            .shed
            .map(|s| (s.invocations_shed, s.tasks_spilled, s.breaker_opens))
            .unwrap_or((0, 0, 0));
        table.row([
            label.to_string(),
            o.tasks.len().to_string(),
            lost.to_string(),
            shed.to_string(),
            spilled.to_string(),
            opens.to_string(),
        ]);
    }
    table.print();
    println!("(90% fault rate, 2 bounded retry attempts; breaker opens after 3");
    println!(" consecutive give-ups, 2 s cool-down, half-open probe to close)");
    let breaker_stats = with_breaker.shed.expect("breaker policy yields shed stats");
    assert!(
        breaker_stats.breaker_opens >= 1,
        "the fault storm must trip the breaker"
    );
    assert!(
        breaker_stats.shed_breaker > 0,
        "an open breaker must fail fast"
    );
    assert!(
        breaker_stats.breaker_open_secs > 0.0,
        "open time must accumulate"
    );
    let spill_stats = with_spillover
        .shed
        .expect("spillover policy yields shed stats");
    assert!(
        spill_stats.tasks_spilled > 0,
        "spillover must re-route breaker-shed tasks to the device"
    );
    assert!(
        with_spillover.tasks.len() > with_breaker.tasks.len(),
        "spillover must recover goodput the bare breaker sheds: {} vs {}",
        with_spillover.tasks.len(),
        with_breaker.tasks.len()
    );
}

fn smoke() {
    // A saturated cluster under the full policy (bound + deadline +
    // breaker + spillover + ingress backpressure), through the replicate
    // runner so HIVEMIND_THREADS affects the execution schedule but must
    // not affect any byte of the output.
    let policy = OverloadPolicy::default()
        .queue_bound(8)
        .queue_deadline(SimDuration::from_secs(2))
        .breaker(3, SimDuration::from_secs(2))
        .spillover()
        .net_ingress_bound(8);
    let cfg = ExperimentConfig::single_app(App::Slam)
        .platform(Platform::CentralizedFaaS)
        .servers(1)
        .duration_secs(6.0)
        .rate_scale(4.0)
        .seed(5)
        .plan(RunPlan::new().overload(policy));
    let set = runner().run_replicates(&cfg, 3);
    for (seed, outcome) in set.seeds().iter().zip(set.outcomes()) {
        let s = outcome.shed.expect("active policy yields shed stats");
        assert!(s.invocations_shed > 0, "the saturated queue must shed");
        assert!(s.tasks_spilled > 0, "spillover must re-route shed tasks");
        assert_eq!(s.tasks_shed, 0, "spillover leaves no task abandoned");
        println!("seed {seed}: {}", outcome.to_json());
    }
    println!("overload smoke ok");
}

fn main() {
    if hivemind_bench::cli::Cli::from_env().smoke() {
        smoke();
    } else {
        sweep();
    }
}

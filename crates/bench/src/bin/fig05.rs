//! Fig. 5 — the opportunities of serverless for edge jobs:
//! (a) task latency with fixed vs serverless vs serverless + intra-task
//! parallelism, (b) latency for face recognition under fluctuating load
//! against average- and max-provisioned fixed deployments, and (c) active
//! tasks over time when a fraction of functions fail.

use hivemind_bench::report::Report;
use hivemind_bench::{banner, ms, single_app_duration_secs, smoke, Table, Workload};
use hivemind_core::prelude::*;

fn main() {
    let report = Report::from_env();
    banner("Figure 5a: fixed vs serverless vs serverless + intra-task (median ms)");
    let mut table = Table::new([
        "app",
        "fixed",
        "serverless",
        "serverless (intra)",
        "speedup",
    ]);
    let apps: Vec<Workload> = Workload::active_set()
        .into_iter()
        .filter(|w| matches!(w, Workload::App(_)))
        .collect();
    let configs: Vec<ExperimentConfig> = apps
        .iter()
        .flat_map(|w| {
            let Workload::App(app) = w else {
                unreachable!()
            };
            [
                (Platform::CentralizedIaaS, false),
                (Platform::CentralizedFaaS, false),
                (Platform::CentralizedFaaS, true),
            ]
            .map(|(platform, intra)| {
                ExperimentConfig::single_app(*app)
                    .platform(platform)
                    .duration_secs(single_app_duration_secs())
                    .intra_task(intra)
                    .seed(2)
            })
        })
        .collect();
    let outcomes = report.run_configs(&configs);
    for (w, trio) in apps.iter().zip(outcomes.chunks_exact(3)) {
        let median = |o: &hivemind_core::metrics::Outcome| o.tasks.clone().total.median();
        let (fixed, faas, intra) = (median(&trio[0]), median(&trio[1]), median(&trio[2]));
        table.row([
            w.label().to_string(),
            ms(fixed),
            ms(faas),
            ms(intra),
            format!("{:.1}x", fixed / faas.max(1e-9)),
        ]);
    }
    table.print();
    println!("(paper: serverless ~an order of magnitude faster than the fixed allocation;");
    println!(" maze/weather/soil benefit least; S9/S10 gain dramatically from intra-task)");

    banner("Figure 5b: S1 latency under fluctuating load (median ms per 30 s window)");
    // Ramp: 1 → 4 → 10 → 16 → 6 → 1 active drones (compressed 6× under
    // --smoke, same shape).
    let (profile, total) = if smoke() {
        (
            vec![
                (0.0, 1u32),
                (5.0, 4),
                (10.0, 10),
                (15.0, 16),
                (20.0, 6),
                (25.0, 1),
            ],
            30.0,
        )
    } else {
        (
            vec![
                (0.0, 1u32),
                (30.0, 4),
                (60.0, 10),
                (90.0, 16),
                (120.0, 6),
                (150.0, 1),
            ],
            180.0,
        )
    };
    let deployment = |platform: Platform, workers: Option<u32>| {
        let mut cfg = ExperimentConfig::single_app(App::FaceRecognition)
            .platform(platform)
            .duration_secs(total)
            .load_profile(profile.clone())
            .rate_scale(2.0)
            .seed(3);
        if let Some(w) = workers {
            cfg = cfg.iaas_workers(w);
        }
        cfg
    };
    // Average load ≈ 6.3 drones × 2 tasks/s × 0.27 s ≈ 4 busy cores;
    // worst case ≈ 9. The three deployments are independent, so fan them
    // out instead of chaining the 180 s simulations.
    let deployments = report.run_configs(&[
        deployment(Platform::CentralizedFaaS, None),
        deployment(Platform::CentralizedIaaS, Some(4)),
        deployment(Platform::CentralizedIaaS, Some(16)),
    ]);
    let mut it = deployments.into_iter();
    let (serverless, avg, max) = (it.next().unwrap(), it.next().unwrap(), it.next().unwrap());
    let mut table2 = Table::new(["deployment", "median (ms)", "p99 (ms)", "tasks"]);
    for (label, o) in [
        ("serverless", serverless),
        ("fixed (avg prov, 4 workers)", avg),
        ("fixed (max prov, 16 workers)", max),
    ] {
        table2.row([
            label.to_string(),
            ms(o.tasks.total.median()),
            ms(o.tasks.total.p99()),
            o.tasks.len().to_string(),
        ]);
    }
    table2.print();
    println!("(paper: serverless tracks the load; the average-provisioned deployment saturates)");

    banner("Figure 5c: active tasks over time with injected function failures");
    let mut table = Table::new(["t (s)", "no faults", "5%", "10%", "20%"]);
    let fault_configs: Vec<ExperimentConfig> = [0.0, 0.05, 0.10, 0.20]
        .iter()
        .map(|&fr| {
            ExperimentConfig::single_app(App::FaceRecognition)
                .platform(Platform::CentralizedFaaS)
                .duration_secs(total)
                .load_profile(profile.clone())
                .rate_scale(2.0)
                .fault_rate(fr)
                .seed(4)
        })
        .collect();
    let runs = report.run_configs(&fault_configs);
    let mut t = 0.0;
    while t <= total {
        let mut cells = vec![format!("{t:.0}")];
        for o in &runs {
            let v = o
                .active_tasks
                .value_at(SimTime::ZERO + SimDuration::from_secs_f64(t))
                .unwrap_or(0.0);
            cells.push(format!("{v:.0}"));
        }
        table.row(cells);
        t += 15.0;
    }
    table.print();
    for (label, o) in ["0%", "5%", "10%", "20%"].iter().zip(&runs) {
        println!(
            "fault rate {label}: {} tasks completed, {} recovered from faults",
            o.tasks.len(),
            o.faults_recovered
        );
    }
    println!("(paper: even at 20% failures every task still completes via respawn)");
}

//! Fig. 17 — scalability: (a) bandwidth and tail latency on HiveMind as
//! image resolution and frame rate increase, and (b) as the swarm grows
//! from 16 to 8192 drones (simulated, links scaled proportionally).
//!
//! Set `HIVEMIND_FULL=1` (or pass `--full`) to extend the swarm sweep
//! through 8192 to the serverless-edge headline sizes of 100k and 1M
//! simulated devices (tens of minutes on one core — the sharded engine
//! spreads each replicate across `HIVEMIND_SHARDS` cores); the default
//! sweep stops at 4096.

use hivemind_bench::report::Report;
use hivemind_bench::{banner, full_fidelity, smoke, Table};
use hivemind_core::prelude::*;

fn main() {
    let report = Report::from_env();
    banner("Figure 17a: HiveMind bandwidth + mission tail vs resolution / frame rate");
    let mut table = Table::new([
        "scenario",
        "config",
        "bandwidth mean (MB/s)",
        "bandwidth p99 (MB/s)",
        "job latency (s)",
    ]);
    let points: &[(&str, f64, f64)] = if smoke() {
        &[("2MB", 1.0, 1.0), ("8MB 32fps", 4.0, 4.0)]
    } else {
        &[
            ("0.5MB", 0.25, 1.0),
            ("1MB", 0.5, 1.0),
            ("2MB", 1.0, 1.0),
            ("4MB", 2.0, 1.0),
            ("8MB", 4.0, 1.0),
            ("8MB 16fps", 4.0, 2.0),
            ("8MB 32fps", 4.0, 4.0),
        ]
    };
    let cells: Vec<(Scenario, &str, f64, f64)> =
        [Scenario::StationaryItems, Scenario::MovingPeople]
            .into_iter()
            .flat_map(|s| {
                points
                    .iter()
                    .map(move |&(label, scale, rate)| (s, label, scale, rate))
            })
            .collect();
    let configs: Vec<ExperimentConfig> = cells
        .iter()
        .map(|&(scenario, _, scale, rate)| {
            ExperimentConfig::scenario(scenario)
                .platform(Platform::HiveMind)
                .input_scale(scale)
                .rate_scale(rate)
                .seed(1)
        })
        .collect();
    for (&(scenario, label, _, _), o) in cells.iter().zip(report.run_configs(&configs)) {
        table.row([
            scenario.label().to_string(),
            label.to_string(),
            format!("{:.1}", o.bandwidth.mean_mbps),
            format!("{:.1}", o.bandwidth.p99_mbps),
            format!("{:.1}", o.mission.duration_secs),
        ]);
    }
    table.print();
    println!("(paper: even at max resolution and 32 fps HiveMind keeps the links unsaturated)");

    banner(
        "Figure 17b: bandwidth + tail latency vs swarm size (simulated; links scale with swarm)",
    );
    let mut sizes = if smoke() {
        vec![16u32, 48]
    } else {
        vec![16u32, 32, 64, 128, 256, 512, 1024, 2048, 4096]
    };
    if full_fidelity() {
        // The 100k/1M points are where spatial sharding earns its keep:
        // one replicate spread across every core instead of one core
        // per replicate.
        sizes.extend([8192, 100_000, 1_000_000]);
    }
    let mut table = Table::new([
        "drones",
        "hivemind bw (MB/s)",
        "hivemind job (s)",
        "hivemind done",
        "centralized bw (MB/s)",
        "centralized job (s)",
        "centralized done",
    ]);
    // Keep per-device cloud capacity at the testbed's ratio (12 servers
    // per 16 drones), as the paper scales its links. The centralized
    // baseline hits its scheduler/network wall well before the largest
    // sizes; cap its sweep so the harness stays fast (the divergence is
    // already unambiguous).
    let scaled = |platform: Platform, devices: u32| {
        ExperimentConfig::scenario(Scenario::StationaryItems)
            .platform(platform)
            .devices(devices)
            .servers((devices * 3 / 4).max(12))
            .seed(1)
    };
    let hm_configs: Vec<ExperimentConfig> = sizes
        .iter()
        .map(|&d| scaled(Platform::HiveMind, d))
        .collect();
    let cen_sizes: Vec<u32> = sizes.iter().copied().filter(|&d| d <= 1024).collect();
    let cen_configs: Vec<ExperimentConfig> = cen_sizes
        .iter()
        .map(|&d| scaled(Platform::CentralizedFaaS, d))
        .collect();
    let hm_outcomes = report.run_configs(&hm_configs);
    let cen_outcomes = report.run_configs(&cen_configs);
    for (&devices, hm) in sizes.iter().zip(&hm_outcomes) {
        let cen = match cen_sizes.iter().position(|&d| d == devices) {
            Some(i) => {
                let o = &cen_outcomes[i];
                (
                    format!("{:.1}", o.bandwidth.mean_mbps),
                    format!("{:.1}", o.mission.duration_secs),
                    o.mission.completed.to_string(),
                )
            }
            None => ("-".into(), "-".into(), "-".into()),
        };
        table.row([
            devices.to_string(),
            format!("{:.1}", hm.bandwidth.mean_mbps),
            format!("{:.1}", hm.mission.duration_secs),
            hm.mission.completed.to_string(),
            cen.0,
            cen.1,
            cen.2,
        ]);
    }
    table.print();
    println!("(paper: HiveMind's bandwidth grows much slower than the device count, while the");
    println!(" centralized system grows linearly and collapses)");
}

//! Fig. 18 — simulator validation: tail-latency deviation between the
//! detailed event-driven simulator (playing the paper's real testbed) and
//! the fast queueing-network model (playing the paper's simulator), for
//! all workloads across the three platforms.

use hivemind_bench::report::Report;
use hivemind_bench::{banner, ms, single_app_duration_secs, smoke, Table};
use hivemind_core::analytic::{deviation_pct, QuickModel};
use hivemind_core::prelude::*;

fn main() {
    let report = Report::from_env();
    banner("Figure 18: DES vs analytic queueing model, tail (p99) latency deviation");
    let mut table = Table::new([
        "app",
        "platform",
        "DES p50 (ms)",
        "model p50 (ms)",
        "DES p99 (ms)",
        "model p99 (ms)",
        "p99 deviation",
    ]);
    let mut worst: f64 = 0.0;
    let mut mean_abs = 0.0;
    let mut n = 0.0;
    let platforms = [
        Platform::CentralizedFaaS,
        Platform::DistributedEdge,
        Platform::HiveMind,
    ];
    let apps: &[App] = if smoke() { &App::ALL[..2] } else { &App::ALL };
    let cells: Vec<(App, Platform)> = apps
        .iter()
        .flat_map(|&app| platforms.map(|p| (app, p)))
        .collect();
    let configs: Vec<ExperimentConfig> = cells
        .iter()
        .map(|&(app, platform)| {
            ExperimentConfig::single_app(app)
                .platform(platform)
                .duration_secs(single_app_duration_secs())
                .seed(8)
        })
        .collect();
    let des_outcomes = report.run_configs(&configs);
    for (&(app, platform), des) in cells.iter().zip(des_outcomes) {
        {
            let mut qm = QuickModel::testbed(platform, app);
            qm.duration_secs = single_app_duration_secs();
            let model = qm.predict(8000, 8);
            let dev = deviation_pct(des.tasks.total.p99(), model.p99());
            worst = worst.max(dev.abs());
            mean_abs += dev.abs();
            n += 1.0;
            table.row([
                app.label().to_string(),
                platform.label().to_string(),
                ms(des.tasks.total.median()),
                ms(model.median()),
                ms(des.tasks.total.p99()),
                ms(model.p99()),
                format!("{dev:+.1}%"),
            ]);
        }
    }
    table.print();
    println!();
    println!(
        "mean |deviation| = {:.1}%, worst = {:.1}%  (paper: < 5% everywhere)",
        mean_abs / n,
        worst
    );
}

//! Model-checking sweep — exhaustive verification of the coordination
//! protocols under all fault schedules.
//!
//! Where the DES samples one fault schedule per seed, the checker in
//! `hivemind_sim::mc` enumerates *every* schedule the fault budgets
//! allow, checking the protocol invariants at each reachable state. This
//! binary drives the five lifted protocols from `hivemind_core::mc`
//! over their canonical small instances and reports the explored state
//! space:
//!
//! * **controller failover** — heartbeat detection + geometric
//!   repartitioning, with device crashes and a primary failover inside
//!   the 3 s detection window. Invariants: detection matches the
//!   specification mirror; live assignments always tile the field.
//! * **retry + circuit breaker** — bounded retries, give-up, breaker
//!   admission. Invariants: every breaker transition is legal per the
//!   specification monitor; queue bound; task conservation.
//! * **data exchange** — store/fetch sessions under duplication, loss,
//!   reordering and store crashes. Invariant: exactly-once execution.
//! * **sharded barrier merge** — the spatial engine's epoch protocol:
//!   shards consume under conservative lookahead and exchange boundary
//!   events at barriers. Invariants: no shard consumes past its horizon;
//!   the merged stream is totally ordered by `(time, shard, seq)`;
//!   every consumed event is merged or still staged.
//! * **disconnected operation** — lease-based autonomy with buffered
//!   replay: partitions expire the device's lease, updates accumulate in
//!   a bounded ring, and heals replay through a watermarked session.
//!   Invariants: exactly-once replay conservation; no spurious failure
//!   declaration for a device that was merely partitioned.
//!
//! A second section checks the lane's *bug-finding power*: seven planted
//! bugs (the historical orphan-dropping failover, a breaker that skips
//! half-open, an exchange without response dedup, a barrier that
//! concatenates batches in shard order, a shard that consumes one
//! lookahead past the epoch horizon, a replay session without watermark
//! dedup, a controller that skips reconnect grace) must each produce a
//! minimal counterexample that replays through the DES engine to the
//! identical violation.
//!
//! The checker is a pure function of the model — FNV-fingerprint dedup,
//! canonical action order, no wall clock — so every number and schedule
//! printed here is byte-deterministic. `--smoke` runs the smaller
//! instances through the replicate runner's worker pool; CI diffs that
//! output across `HIVEMIND_THREADS` values.

use hivemind_bench::{banner, runner, Table};
use hivemind_core::mc::{
    disconnect_instance, disconnect_no_dedup_mutant, disconnect_no_grace_mutant, exchange_instance,
    exchange_mutant, exchange_smoke_instance, failover_instance, failover_legacy_instance,
    replay_schedule, retry_breaker_instance, retry_breaker_mutant, shard_eager_mutant,
    shard_merge_instance, shard_merge_mutant,
};
use hivemind_sim::mc::{check, McConfig, McModel, McStats, Schedule};

fn cfg(max_depth: usize) -> McConfig {
    McConfig {
        max_depth,
        ..McConfig::default()
    }
}

/// Explores `model` and asserts the exploration was exhaustive (neither
/// the depth bound nor the state cap cut anything off) and violation
/// free.
fn verify<M: McModel>(name: &str, model: &M, config: &McConfig) -> McStats {
    let report = check(model, config);
    if let Some(v) = &report.violation {
        panic!(
            "{name}: unexpected violation at depth {}: {}\n{}",
            v.depth, v.message, v.schedule
        );
    }
    assert!(
        !report.stats.truncated,
        "{name}: exploration truncated (depth {} / {} states) — not exhaustive",
        config.max_depth, config.max_states
    );
    report.stats
}

fn stats_row(name: &str, stats: &McStats) -> [String; 7] {
    [
        name.to_string(),
        stats.states.to_string(),
        stats.transitions.to_string(),
        stats.deduped.to_string(),
        stats.max_depth.to_string(),
        stats.terminals.to_string(),
        "0".to_string(),
    ]
}

/// Checks one planted bug: the violation is found, its counterexample
/// replays through the DES engine to the identical violation at the
/// final step, and the fixed twin survives the exact same schedule
/// (the protocols share their action vocabulary with their mutants).
/// Returns the rendered report.
fn catch<M: McModel>(
    name: &str,
    invariant: &str,
    buggy: impl Fn() -> M,
    depth: usize,
    check_fixed: impl FnOnce(&Schedule<M::Action>),
) -> String {
    let report = check(&buggy(), &cfg(depth));
    let v = report
        .violation
        .unwrap_or_else(|| panic!("{name}: the planted bug must be caught"));
    assert!(
        v.message.contains(invariant),
        "{name}: wrong invariant tripped: {}",
        v.message
    );
    let (step, message) = replay_schedule(buggy(), &v.schedule)
        .unwrap_or_else(|| panic!("{name}: replay must reproduce the violation"));
    assert_eq!(
        (step, &message),
        (v.schedule.len() - 1, &v.message),
        "{name}: replay must fail at the final step with the same message"
    );
    check_fixed(&v.schedule);
    format!(
        "{name}\n  violation: {}\n  minimal counterexample ({} steps):\n{}\
         \n  replayed through the DES engine: step {step}, same violation; \
         the fixed protocol survives the schedule\n",
        v.message, v.depth, v.schedule
    )
}

/// The disconnect plane's planted bugs run only in the full sweep: the
/// smoke section (and its golden) predates the protocol and pins the
/// original five.
fn disconnect_bugs() -> [String; 2] {
    [
        catch(
            "reconnect replay: watermark dedup off, duplicates re-delivered",
            "exactly-once replay",
            disconnect_no_dedup_mutant,
            24,
            |s| assert_eq!(replay_schedule(disconnect_instance(), s), None),
        ),
        catch(
            "reconnect grace: heal without re-arm read silence as death",
            "spurious failure declaration",
            disconnect_no_grace_mutant,
            24,
            |s| assert_eq!(replay_schedule(disconnect_instance(), s), None),
        ),
    ]
}

fn planted_bugs() -> [String; 5] {
    [
        catch(
            "failover: orphaned strips died with their heir (pre-fix controller)",
            "task conservation",
            failover_legacy_instance,
            24,
            |s| assert_eq!(replay_schedule(failover_instance(), s), None),
        ),
        catch(
            "breaker: cool-down expiry skipped the half-open probe phase",
            "breaker legality",
            retry_breaker_mutant,
            24,
            |s| assert_eq!(replay_schedule(retry_breaker_instance(), s), None),
        ),
        catch(
            "exchange: duplicated FetchResp ran the child twice (dedup off)",
            "double execution",
            exchange_mutant,
            14,
            |s| assert_eq!(replay_schedule(exchange_smoke_instance(), s), None),
        ),
        catch(
            "shard merge: barrier concatenated batches in shard order",
            "merge order",
            shard_merge_mutant,
            16,
            |s| assert_eq!(replay_schedule(shard_merge_instance(), s), None),
        ),
        catch(
            "shard horizon: a shard consumed one lookahead past the epoch",
            "lookahead horizon",
            shard_eager_mutant,
            16,
            |s| assert_eq!(replay_schedule(shard_merge_instance(), s), None),
        ),
    ]
}

fn sweep() {
    banner("Model checking: exhaustive exploration under all fault schedules");
    let mut table = Table::new([
        "protocol",
        "states",
        "transitions",
        "deduped",
        "diameter",
        "terminals",
        "violations",
    ]);
    let failover = verify("failover", &failover_instance(), &cfg(24));
    table.row(stats_row("controller failover", &failover));
    let breaker = verify("retry+breaker", &retry_breaker_instance(), &cfg(24));
    table.row(stats_row("retry + circuit breaker", &breaker));
    let exchange = verify(
        "exchange",
        &exchange_instance(),
        &McConfig {
            max_depth: 40,
            max_states: 30_000_000,
        },
    );
    table.row(stats_row("data exchange (3 sessions)", &exchange));
    let shard = verify("shard merge", &shard_merge_instance(), &cfg(16));
    table.row(stats_row("sharded barrier merge (3 shards)", &shard));
    let disconnect = verify("disconnect", &disconnect_instance(), &cfg(24));
    table.row(stats_row("disconnected operation", &disconnect));
    table.print();
    println!("(2 servers / 1 controller / 3 tasks per protocol; every fault");
    println!(" schedule within the crash/drop/duplicate/failover budgets;");
    println!(" the shard protocol explores every consume/barrier interleaving;");
    println!(" the disconnect protocol every partition/heal/replay schedule)");

    banner("Planted bugs: each must yield a replayable minimal counterexample");
    for rendered in planted_bugs() {
        println!("{rendered}");
    }
    for rendered in disconnect_bugs() {
        println!("{rendered}");
    }
}

fn smoke() {
    // The smaller exhaustive instances plus all five planted bugs, fanned
    // across the replicate runner's workers: HIVEMIND_THREADS changes the
    // execution schedule but must not change one byte of this output.
    let jobs: Vec<usize> = (0..5).collect();
    let sections = runner().map(&jobs, |_, &job| match job {
        0 => {
            let stats = verify("failover", &failover_instance(), &cfg(24));
            format!(
                "failover: {} states, {} transitions, diameter {}, {} terminals, 0 violations",
                stats.states, stats.transitions, stats.max_depth, stats.terminals
            )
        }
        1 => {
            let stats = verify("retry+breaker", &retry_breaker_instance(), &cfg(24));
            format!(
                "retry+breaker: {} states, {} transitions, diameter {}, {} terminals, 0 violations",
                stats.states, stats.transitions, stats.max_depth, stats.terminals
            )
        }
        2 => {
            let stats = verify("exchange", &exchange_smoke_instance(), &cfg(28));
            format!(
                "exchange: {} states, {} transitions, diameter {}, {} terminals, 0 violations",
                stats.states, stats.transitions, stats.max_depth, stats.terminals
            )
        }
        3 => {
            let stats = verify("shard merge", &shard_merge_instance(), &cfg(16));
            format!(
                "shard merge: {} states, {} transitions, diameter {}, {} terminals, 0 violations",
                stats.states, stats.transitions, stats.max_depth, stats.terminals
            )
        }
        _ => planted_bugs().join("\n"),
    });
    for section in sections {
        println!("{section}");
    }
    println!("mc smoke ok");
}

fn main() {
    if hivemind_bench::cli::Cli::from_env().smoke() {
        smoke();
    } else {
        sweep();
    }
}

//! Perf-smoke harness: measures simulator throughput and the wall-clock
//! cost of every figure binary in `--smoke` mode, then writes
//! `BENCH_core.json`.
//!
//! ```text
//! cargo run --release -p hivemind-bench --bin perf_smoke -- [--check] [--out PATH] [--baseline PATH]
//! ```
//!
//! With `--check`, the run first reads the committed baseline (default:
//! the `--out` path before it is overwritten) and fails the process if
//! any figure, the smoke total, the DES kernel throughput, or the
//! sharded swarm-engine throughput regressed by more than 25% — with an
//! absolute slack floor so sub-100 ms entries don't trip on scheduler
//! noise (the sharded gate only applies when the baseline machine had
//! the same core count). CI runs this after `cargo bench` in quick mode
//! and uploads the refreshed JSON as an artifact.
//!
//! At full fidelity (`--full` / `HIVEMIND_FULL=1`) the run additionally
//! executes the fig17 100k-device HiveMind mission and records its wall
//! clock under `fig17_100k` — the sharded engine's headline scale point.
//!
//! The JSON also carries the default-fidelity `all_figures` reference
//! numbers from the optimization PR (measured on the single-core dev
//! container): 67 s before, 25 s after — with the fig17 sweep's
//! 4096-device point included only in the "after" run, since before the
//! PR it was gated behind `HIVEMIND_FULL=1`.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

use hivemind_apps::scenario::Scenario;
use hivemind_apps::suite::App;
use hivemind_core::engine::{Engine as SwarmEngine, EngineConfig};
use hivemind_core::experiment::{Experiment, ExperimentConfig};
use hivemind_core::platform::Platform;
use hivemind_sim::engine::{Context, Engine, Model};
use hivemind_sim::time::{SimDuration, SimTime};

const FIGURES: [&str; 16] = [
    "fig01",
    "fig03",
    "fig04",
    "fig05",
    "fig06",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "chaos_sweep",
    "overload_sweep",
    "partition_sweep",
];

/// Pre-PR wall-clock of `all_figures` at default fidelity on the
/// single-core dev container, and the same sweep after the hot-path
/// optimization (which also folded the 4096-device fig17 point into the
/// default sweep).
const DEFAULT_SWEEP_PRE_PR_SECS: f64 = 67.0;
const DEFAULT_SWEEP_POST_PR_SECS: f64 = 25.0;

/// Allowed regression vs the committed baseline: 25% relative, plus an
/// absolute floor so sub-100 ms smoke runs don't fail on timer noise.
const REGRESSION_RATIO: f64 = 1.25;
const SLACK_MS: f64 = 75.0;

struct PingPong {
    left: u64,
}
impl Model for PingPong {
    type Event = ();
    fn handle(&mut self, ctx: &mut Context<()>, _ev: ()) {
        if self.left > 0 {
            self.left -= 1;
            ctx.schedule_after(SimDuration::from_micros(1), ());
        }
    }
}

/// DES kernel throughput in events/sec: best of three 200k-event
/// ping-pong runs (best-of smooths out single-core scheduler hiccups).
fn measure_events_per_sec() -> f64 {
    let mut best = 0.0f64;
    for _ in 0..3 {
        let mut engine = Engine::new(PingPong { left: 200_000 });
        engine.schedule_at(SimTime::ZERO, ());
        let start = Instant::now();
        engine.run_to_completion();
        let rate = engine.events_processed() as f64 / start.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    best
}

/// Sharded swarm-engine throughput in events/sec: a 256-device mixed
/// edge/cloud workload on the HiveMind platform, run once per shard
/// count, best of two runs each. The shard count only changes wall
/// clock (the output is byte-identical by construction), so this is the
/// honest denominator for the spatial-sharding speedup.
fn measure_swarm_events_per_sec(shards: u32) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..2 {
        let mut cfg = EngineConfig::testbed(Platform::HiveMind);
        cfg.devices = 256;
        cfg.servers = 192;
        cfg.shards = shards;
        let mut engine = SwarmEngine::new(cfg);
        for i in 0..40u64 {
            for dev in 0..256 {
                let app = if dev % 2 == 0 {
                    App::FaceRecognition
                } else {
                    App::DroneDetection
                };
                engine.submit_task(SimTime::from_secs(i), dev, app, dev);
            }
        }
        let start = Instant::now();
        let records = engine.run_to_completion();
        let rate = engine.events_processed() as f64 / start.elapsed().as_secs_f64();
        assert!(!records.is_empty(), "workload must complete tasks");
        best = best.max(rate);
    }
    best
}

/// Per-phase breakdown of the same 256-device workload, run once with
/// profiling enabled: wall-clock per engine phase (shard, merge, hub)
/// plus the deterministic operation counters (calendar-queue ops, RNG
/// draws, merged elements, exchanged effects). The counters are exact,
/// so a >25% jump in any of them is an algorithmic regression, not
/// timer noise.
fn measure_phase_breakdown() -> hivemind_core::engine::PhaseBreakdown {
    let mut cfg = EngineConfig::testbed(Platform::HiveMind);
    cfg.devices = 256;
    cfg.servers = 192;
    cfg.shards = 1;
    let mut engine = SwarmEngine::new(cfg);
    engine.enable_profiling();
    for i in 0..40u64 {
        for dev in 0..256 {
            let app = if dev % 2 == 0 {
                App::FaceRecognition
            } else {
                App::DroneDetection
            };
            engine.submit_task(SimTime::from_secs(i), dev, app, dev);
        }
    }
    let records = engine.run_to_completion();
    assert!(!records.is_empty(), "workload must complete tasks");
    engine.phase_breakdown()
}

/// The fig17 swarm-scalability headline point: the 100k-device
/// HiveMind mission (same configuration as the fig17b sweep), measured
/// once. Full-fidelity only — this is a minutes-scale run; the recorded
/// wall clock documents that the sharded engine completes it.
fn measure_fig17_100k() -> (f64, f64, bool) {
    let devices = 100_000;
    let cfg = ExperimentConfig::scenario(Scenario::StationaryItems)
        .platform(Platform::HiveMind)
        .devices(devices)
        .servers((devices * 3 / 4).max(12))
        .seed(1);
    let start = Instant::now();
    let o = Experiment::new(cfg).run();
    (
        start.elapsed().as_secs_f64(),
        o.mission.duration_secs,
        o.mission.completed,
    )
}

/// Wall-clock of one `fig --smoke` subprocess in milliseconds, best of
/// two runs (the first also serves as page-cache warm-up).
fn measure_smoke_ms(dir: &std::path::Path, fig: &str) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let start = Instant::now();
        let out = Command::new(dir.join(fig))
            .arg("--smoke")
            .env_remove("HIVEMIND_FULL")
            .env_remove("HIVEMIND_SMOKE")
            .stdout(std::process::Stdio::null())
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {fig}: {e}"));
        assert!(
            out.status.success(),
            "{fig} --smoke exited with {}",
            out.status
        );
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Pulls every `"key": <number>` pair out of a BENCH_core.json. Good
/// enough for `--check`: all numeric keys in the schema are unique.
fn parse_numbers(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some((key_part, value_part)) = line.split_once(':') else {
            continue;
        };
        let key = key_part.trim().trim_matches('"');
        let value = value_part.trim().trim_end_matches(',');
        if let Ok(v) = value.parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    out
}

fn baseline_value(baseline: &[(String, f64)], key: &str) -> Option<f64> {
    baseline.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
}

fn main() {
    let mut check = false;
    let mut out_path = PathBuf::from("BENCH_core.json");
    let mut baseline_path: Option<PathBuf> = None;
    let cli = hivemind_bench::cli::Cli::from_env();
    let mut args = cli.rest().iter().cloned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => out_path = args.next().map(PathBuf::from).expect("--out needs a path"),
            "--baseline" => {
                baseline_path = Some(
                    args.next()
                        .map(PathBuf::from)
                        .expect("--baseline needs a path"),
                )
            }
            other => panic!("unknown argument {other}"),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| out_path.clone());
    let baseline = if check {
        let json = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            panic!(
                "--check needs a baseline at {}: {e}",
                baseline_path.display()
            )
        });
        parse_numbers(&json)
    } else {
        Vec::new()
    };

    println!("perf_smoke: measuring DES kernel throughput...");
    let events_per_sec = measure_events_per_sec();
    println!("  des_events_per_sec: {events_per_sec:.0}");

    println!("perf_smoke: measuring sharded swarm-engine throughput...");
    let swarm_shards = std::thread::available_parallelism()
        .map(|p| p.get() as u32)
        .unwrap_or(1);
    let swarm_single = measure_swarm_events_per_sec(1);
    let swarm_sharded = measure_swarm_events_per_sec(swarm_shards);
    println!("  swarm_events_per_sec (1 shard): {swarm_single:.0}");
    println!("  swarm_events_per_sec_sharded ({swarm_shards} shards): {swarm_sharded:.0}");

    println!("perf_smoke: profiling the per-phase breakdown...");
    let bd = measure_phase_breakdown();
    println!(
        "  phases: shard {:.1} ms, merge {:.1} ms, hub {:.1} ms",
        bd.shard_ns as f64 / 1e6,
        bd.merge_ns as f64 / 1e6,
        bd.hub_ns as f64 / 1e6
    );
    println!(
        "  counters: {} queue ops, {} rng draws, {} merged, {} exchanged over {} epochs",
        bd.queue_ops, bd.rng_draws, bd.merge_elems, bd.exchange_effects, bd.exchange_epochs
    );

    let fig17_100k = cli.full().then(|| {
        println!("perf_smoke: full fidelity — running the fig17 100k-device point...");
        let point = measure_fig17_100k();
        println!(
            "  fig17_100k: wall {:.1} s, job {:.1} s, completed {}",
            point.0, point.1, point.2
        );
        point
    });

    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut rows: Vec<(&str, f64)> = Vec::with_capacity(FIGURES.len());
    let mut total = 0.0;
    for fig in FIGURES {
        let ms = measure_smoke_ms(dir, fig);
        println!("  {fig} --smoke: {ms:.0} ms");
        total += ms;
        rows.push((fig, ms));
    }
    println!("  total: {total:.0} ms");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"hivemind-bench-core-v1\",\n");
    let _ = writeln!(json, "  \"des_events_per_sec\": {events_per_sec:.0},");
    let _ = writeln!(json, "  \"swarm_events_per_sec\": {swarm_single:.0},");
    let _ = writeln!(
        json,
        "  \"swarm_events_per_sec_sharded\": {swarm_sharded:.0},"
    );
    let _ = writeln!(json, "  \"swarm_shards\": {swarm_shards},");
    json.push_str("  \"phase_breakdown\": {\n");
    let _ = writeln!(json, "    \"shard_ms\": {:.1},", bd.shard_ns as f64 / 1e6);
    let _ = writeln!(json, "    \"merge_ms\": {:.1},", bd.merge_ns as f64 / 1e6);
    let _ = writeln!(json, "    \"hub_ms\": {:.1},", bd.hub_ns as f64 / 1e6);
    let _ = writeln!(json, "    \"queue_ops\": {},", bd.queue_ops);
    let _ = writeln!(json, "    \"rng_draws\": {},", bd.rng_draws);
    let _ = writeln!(json, "    \"merge_elems\": {},", bd.merge_elems);
    let _ = writeln!(json, "    \"exchange_effects\": {},", bd.exchange_effects);
    let _ = writeln!(json, "    \"exchange_epochs\": {}", bd.exchange_epochs);
    json.push_str("  },\n");
    if let Some((wall_s, job_s, completed)) = fig17_100k {
        json.push_str("  \"fig17_100k\": {\n");
        let _ = writeln!(json, "    \"wall_s\": {wall_s:.1},");
        let _ = writeln!(json, "    \"job_s\": {job_s:.1},");
        let _ = writeln!(json, "    \"completed\": {completed}");
        json.push_str("  },\n");
    }
    json.push_str("  \"smoke_wall_ms\": {\n");
    for (fig, ms) in &rows {
        let _ = writeln!(json, "    \"{fig}\": {ms:.0},");
    }
    let _ = writeln!(json, "    \"total\": {total:.0}");
    json.push_str("  },\n");
    json.push_str("  \"default_sweep_reference\": {\n");
    let _ = writeln!(json, "    \"pre_pr_total_s\": {DEFAULT_SWEEP_PRE_PR_SECS},");
    let _ = writeln!(
        json,
        "    \"post_pr_total_s\": {DEFAULT_SWEEP_POST_PR_SECS},"
    );
    let _ = writeln!(
        json,
        "    \"speedup\": {:.2},",
        DEFAULT_SWEEP_PRE_PR_SECS / DEFAULT_SWEEP_POST_PR_SECS
    );
    json.push_str(
        "    \"note\": \"all_figures at default fidelity on the single-core dev container; \
         the post-PR run additionally includes the 4096-device fig17 point, which pre-PR \
         required HIVEMIND_FULL=1\"\n",
    );
    json.push_str("  }\n");
    json.push_str("}\n");

    let mut failures = Vec::new();
    if check {
        if let Some(base) = baseline_value(&baseline, "des_events_per_sec") {
            if events_per_sec < base / REGRESSION_RATIO {
                failures.push(format!(
                    "des_events_per_sec regressed: {events_per_sec:.0} vs baseline {base:.0}"
                ));
            }
        }
        // The sharded rate is gated only when the baseline machine had a
        // comparable core count — otherwise a 1-core CI runner would
        // "regress" against a many-core dev box.
        if let Some(base_shards) = baseline_value(&baseline, "swarm_shards") {
            if base_shards as u32 == swarm_shards {
                if let Some(base) = baseline_value(&baseline, "swarm_events_per_sec_sharded") {
                    if swarm_sharded < base / REGRESSION_RATIO {
                        failures.push(format!(
                            "swarm_events_per_sec_sharded regressed: {swarm_sharded:.0} \
                             vs baseline {base:.0}"
                        ));
                    }
                }
            }
        }
        rows.push(("total", total));
        // Phase wall-clock gates like a figure (relative + slack floor);
        // the operation counters are deterministic, so they gate on the
        // bare ratio — a 25% count increase is an algorithmic
        // regression, never timer noise.
        let phase_ms = [
            ("shard_ms", bd.shard_ns as f64 / 1e6),
            ("merge_ms", bd.merge_ns as f64 / 1e6),
            ("hub_ms", bd.hub_ns as f64 / 1e6),
        ];
        for (key, ms) in phase_ms {
            if let Some(base) = baseline_value(&baseline, key) {
                if ms > base * REGRESSION_RATIO + SLACK_MS {
                    failures.push(format!(
                        "{key} phase wall regressed: {ms:.1} ms vs baseline {base:.1} ms"
                    ));
                }
            }
        }
        let phase_counts = [
            ("queue_ops", bd.queue_ops),
            ("rng_draws", bd.rng_draws),
            ("merge_elems", bd.merge_elems),
            ("exchange_effects", bd.exchange_effects),
        ];
        for (key, count) in phase_counts {
            if let Some(base) = baseline_value(&baseline, key) {
                if count as f64 > base * REGRESSION_RATIO {
                    failures.push(format!(
                        "{key} count regressed: {count} vs baseline {base:.0}"
                    ));
                }
            }
        }
        for &(fig, ms) in rows.iter() {
            if let Some(base) = baseline_value(&baseline, fig) {
                if ms > base * REGRESSION_RATIO + SLACK_MS {
                    failures.push(format!(
                        "{fig} smoke wall regressed: {ms:.0} ms vs baseline {base:.0} ms"
                    ));
                }
            }
        }
    }

    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| panic!("failed to write {}: {e}", out_path.display()));
    println!("wrote {}", out_path.display());

    if !failures.is_empty() {
        eprintln!("perf_smoke: regression vs {}:", baseline_path.display());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    if check {
        println!("perf_smoke: no regression vs {}", baseline_path.display());
    }
}

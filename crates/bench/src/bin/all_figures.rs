//! Runs every figure harness in sequence (the full paper evaluation).
//!
//! ```text
//! cargo run --release -p hivemind-bench --bin all_figures
//! ```
//!
//! Set `HIVEMIND_FULL=1` (or pass `--full`) for paper-length runs (120 s
//! jobs, 10 repeats, swarm sweep to 8192 devices). Pass `--smoke` to
//! forward smoke mode to every figure (the seconds-scale deterministic
//! slice the golden tests and perf baseline use). Pass `--trace <path>`
//! to collect event traces
//! from every figure; each figure gets its own trace family
//! (`<stem>.fig01.<ext>`, `<stem>.fig03.<ext>`, ...) so the figures never
//! overwrite each other's files.

use std::process::Command;

use hivemind_bench::cli::Cli;
use hivemind_bench::report::keyed_path;

fn main() {
    let cli = Cli::from_env();
    let figures = [
        "fig01", "fig03", "fig04", "fig05", "fig06", "fig11", "fig12", "fig13", "fig14", "fig15",
        "fig16", "fig17", "fig18",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for fig in figures {
        let mut cmd = Command::new(dir.join(fig));
        if cli.smoke_flag() {
            cmd.arg("--smoke");
        }
        if cli.full() {
            cmd.arg("--full");
        }
        if let Some(base) = cli.trace_path() {
            cmd.arg("--trace").arg(keyed_path(base, fig));
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {fig}: {e}"));
        assert!(status.success(), "{fig} exited with {status}");
    }
    println!();
    println!("All figures regenerated.");
}

//! Runs every figure harness in sequence (the full paper evaluation).
//!
//! ```text
//! cargo run --release -p hivemind-bench --bin all_figures
//! ```
//!
//! Set `HIVEMIND_FULL=1` for paper-length runs (120 s jobs, 10 repeats,
//! swarm sweep to 8192 devices).

use std::process::Command;

fn main() {
    let figures = [
        "fig01", "fig03", "fig04", "fig05", "fig06", "fig11", "fig12", "fig13", "fig14", "fig15",
        "fig16", "fig17", "fig18",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for fig in figures {
        let status = Command::new(dir.join(fig))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {fig}: {e}"));
        assert!(status.success(), "{fig} exited with {status}");
    }
    println!();
    println!("All figures regenerated.");
}

//! Chaos sweep — graceful degradation under the unified fault plane.
//!
//! Reproduces the spirit of Fig. 5c (function failures masked by respawn)
//! and Fig. 10 (device failure absorbed by the swarm), but across the
//! whole fault vocabulary at once: a function-fault-rate × packet-loss
//! grid under a bounded give-up retry policy, plus mission rows with a
//! mid-mission controller failover and stochastic device MTBF failures.
//!
//! Every stochastic fault draw comes from the dedicated `"faults"` lane
//! of the seed chain, so each grid cell runs the *same* workload sample
//! under a different disturbance level — the curves are pure fault
//! response, not seed noise.
//!
//! `--smoke` runs a quick deterministic slice (nonzero packet loss, one
//! server crash, one device MTBF failure) and prints the outcome JSON;
//! CI diffs that output across `HIVEMIND_THREADS` values to pin down
//! byte-determinism of the fault plane.

use hivemind_bench::{banner, runner, Table};
use hivemind_core::prelude::*;

/// Completed fraction of all issued tasks (completed + lost).
fn completion_pct(o: &Outcome) -> f64 {
    let completed = o.tasks.len() as u64;
    let lost = o.recovery.map(|r| r.tasks_lost).unwrap_or(0);
    100.0 * completed as f64 / (completed + lost).max(1) as f64
}

fn grid_config(fault_rate: f64, packet_loss: f64) -> ExperimentConfig {
    let mut plan = FaultPlan::default()
        // Bounded policy: 4 attempts, 50 ms exponential backoff, then
        // give up — unlike the paper's retry-forever default, this makes
        // task loss *possible*, which is what a degradation curve needs.
        .retry(RetryPolicy::bounded(4, SimDuration::from_millis(50)));
    if fault_rate > 0.0 {
        plan = plan.function_fault_rate(fault_rate);
    }
    if packet_loss > 0.0 {
        plan = plan.packet_loss(packet_loss);
    }
    ExperimentConfig::single_app(App::FaceRecognition)
        .platform(Platform::CentralizedFaaS)
        .duration_secs(30.0)
        .seed(7)
        .plan(RunPlan::new().faults(plan))
}

fn sweep() {
    banner("Chaos sweep: task completion % under fault rate × packet loss");
    const RATES: [f64; 4] = [0.0, 0.05, 0.10, 0.20];
    const LOSSES: [f64; 3] = [0.0, 0.05, 0.10];
    let mut table = Table::new(["fault rate", "loss 0%", "loss 5%", "loss 10%"]);
    let mut at_10_5 = 100.0;
    for &rate in &RATES {
        let mut cells = vec![format!("{:.0}%", rate * 100.0)];
        for &loss in &LOSSES {
            let outcome = Experiment::new(grid_config(rate, loss)).run();
            let pct = completion_pct(&outcome);
            let retried = outcome.recovery.map(|r| r.tasks_retried).unwrap_or(0);
            if rate == 0.10 && loss == 0.05 {
                at_10_5 = pct;
            }
            cells.push(format!("{pct:.1}% ({retried} retried)"));
        }
        table.row(cells);
    }
    table.print();
    println!("(bounded retry: 4 attempts, 50 ms backoff, give up afterwards)");
    assert!(
        at_10_5 >= 95.0,
        "at 10% fault rate + 5% loss the retry policy must carry >= 95% \
         of tasks to completion, got {at_10_5:.1}%"
    );

    banner("Scenario A under swarm-level chaos (Fig. 10-style)");
    let base = ExperimentConfig::scenario(Scenario::StationaryItems)
        .platform(Platform::HiveMind)
        .seed(11);
    let healthy = Experiment::new(base.clone()).run();
    let failover = Experiment::new(
        base.clone()
            .plan(RunPlan::new().faults(FaultPlan::default().controller_failover(60.0))),
    )
    .run();
    let mtbf = Experiment::new(
        base.clone()
            .plan(RunPlan::new().faults(FaultPlan::default().device_mtbf(900.0))),
    )
    .run();
    // A 30 s wireless partition with the disconnect plane armed: devices
    // ride out the outage on the degraded on-device model and replay
    // buffered summaries at heal (see partition_sweep for the full grid).
    let partition = Experiment::new(
        base.plan(
            RunPlan::new()
                .faults(
                    FaultPlan::default()
                        .partition_hold_bound(256)
                        .partition(60.0, 90.0),
                )
                .disconnect(DisconnectPolicy::default().autonomous()),
        ),
    )
    .run();
    let mut table = Table::new(["mission", "time (s)", "found", "completed", "failures"]);
    for (label, o) in [
        ("healthy", &healthy),
        ("controller failover @60s", &failover),
        ("device MTBF 900 s", &mtbf),
        ("30 s partition, autonomous", &partition),
    ] {
        let (devf, ctlf) = o
            .recovery
            .map(|r| (r.device_failures, r.controller_failovers))
            .unwrap_or((0, 0));
        table.row([
            label.to_string(),
            format!("{:.1}", o.mission.duration_secs),
            format!("{}/{}", o.mission.targets_found, o.mission.targets_total),
            o.mission.completed.to_string(),
            format!("{devf} dev, {ctlf} ctl"),
        ]);
    }
    table.print();
    println!("(the failover stalls cluster admission for the 3 s detection window + takeover;");
    println!(" MTBF failures are detected via heartbeats and absorbed by neighbours;");
    println!(" the partition is ridden out on-device and reconciled exactly once at heal)");
    assert!(
        failover.mission.completed
            && failover.mission.targets_found >= healthy.mission.targets_found,
        "a mid-mission controller failover must not lose targets: {} vs {}",
        failover.mission.targets_found,
        healthy.mission.targets_found
    );
    let reconnect = partition.reconnect.expect("armed plane populates stats");
    assert!(
        partition.mission.completed && reconnect.partitions == 1,
        "a partitioned mission with autonomy armed must still complete \
         (completed {}, partitions {})",
        partition.mission.completed,
        reconnect.partitions
    );
}

fn smoke() {
    // Nonzero loss + one scheduled server crash on the single-app side...
    let cluster_plan = FaultPlan::default()
        .packet_loss(0.05)
        .server_crash(1, 10.0, 10.0)
        .slo(SimDuration::from_secs(5));
    let cfg = ExperimentConfig::single_app(App::FaceRecognition)
        .platform(Platform::CentralizedFaaS)
        .duration_secs(20.0)
        .seed(5)
        .plan(RunPlan::new().faults(cluster_plan));
    // ...through the replicate runner, so HIVEMIND_THREADS affects the
    // execution schedule but must not affect any byte of the output.
    let set = runner().run_replicates(&cfg, 3);
    for (seed, outcome) in set.seeds().iter().zip(set.outcomes()) {
        let r = outcome.recovery.expect("active plan yields recovery stats");
        assert_eq!(r.server_crashes, 1, "the scheduled crash fired");
        assert!(r.invocations_rescheduled >= r.invocations_lost);
        println!("seed {seed}: {}", outcome.to_json());
    }

    // ...and one device MTBF failure on the mission side (MTBF chosen so
    // this seed loses at least one drone inside the mission horizon).
    let mission = Experiment::new(
        ExperimentConfig::scenario(Scenario::StationaryItems)
            .platform(Platform::HiveMind)
            .seed(5)
            .plan(RunPlan::new().faults(FaultPlan::default().device_mtbf(3000.0))),
    )
    .run();
    let r = mission.recovery.expect("active plan yields recovery stats");
    assert!(r.device_failures >= 1, "MTBF must claim a device");
    assert!(r.mean_detection_secs >= 3.0, "heartbeat window is 3 s");
    println!("mission: {}", mission.to_json());
    println!("chaos smoke ok");
}

fn main() {
    if hivemind_bench::cli::Cli::from_env().smoke() {
        smoke();
    } else {
        sweep();
    }
}

//! Fig. 12 — latency breakdown (network / management / data I/O /
//! execution) comparing fully centralized execution against HiveMind, to
//! attribute where HiveMind's gains come from.

use hivemind_bench::report::Report;
use hivemind_bench::{banner, ms, pct, Table, Workload};
use hivemind_core::prelude::*;

fn main() {
    let report = Report::from_env();
    banner("Figure 12: latency breakdown, Centralized Cloud vs HiveMind");
    let mut table = Table::new([
        "workload",
        "platform",
        "network",
        "management",
        "data I/O",
        "exec",
        "mean total (ms)",
    ]);
    let mut cen_net_frac = 0.0;
    let mut hm_net_frac = 0.0;
    let mut cen_total = 0.0;
    let mut hm_total = 0.0;
    let mut n = 0.0;
    let platforms = [Platform::CentralizedFaaS, Platform::HiveMind];
    let workloads = Workload::active_set();
    let configs: Vec<ExperimentConfig> = workloads
        .iter()
        .flat_map(|w| {
            platforms.map(|platform| match w {
                Workload::App(app) => ExperimentConfig::single_app(*app)
                    .platform(platform)
                    .input_scale(2.0)
                    .seed(2),
                Workload::Scenario(_) => w.config(platform, 2),
            })
        })
        .collect();
    let outcomes = report.run_configs(&configs);
    for ((w, platform), o) in workloads
        .iter()
        .flat_map(|w| platforms.map(|p| (w, p)))
        .zip(&outcomes)
    {
        let total = o.tasks.total.mean().max(1e-12);
        let net = o.tasks.network.mean() / total;
        let mgmt = o.tasks.management.mean() / total;
        let io = o.tasks.data_io.mean() / total;
        let exec = o.tasks.exec.mean() / total;
        if platform == Platform::CentralizedFaaS {
            cen_net_frac += net;
            cen_total += total;
            n += 1.0;
        } else {
            hm_net_frac += net;
            hm_total += total;
        }
        table.row([
            w.label().to_string(),
            platform.label().to_string(),
            pct(net),
            pct(mgmt),
            pct(io),
            pct(exec),
            ms(total),
        ]);
    }
    table.print();
    println!();
    println!(
        "network share of latency: centralized {:.1}% -> hivemind {:.1}%  (paper: 33% -> 9.3%)",
        100.0 * cen_net_frac / n,
        100.0 * hm_net_frac / n
    );
    println!(
        "mean end-to-end improvement: {:.0}%  (paper: 56% on average, up to 2.85x)",
        100.0 * (1.0 - (hm_total / n) / (cen_total / n))
    );
}

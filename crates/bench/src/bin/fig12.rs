//! Fig. 12 — latency breakdown (network / management / data I/O /
//! execution) comparing fully centralized execution against HiveMind, to
//! attribute where HiveMind's gains come from.

use hivemind_bench::{banner, ms, pct, Table, Workload};
use hivemind_core::platform::Platform;

fn main() {
    banner("Figure 12: latency breakdown, Centralized Cloud vs HiveMind");
    let mut table = Table::new([
        "workload",
        "platform",
        "network",
        "management",
        "data I/O",
        "exec",
        "mean total (ms)",
    ]);
    let mut cen_net_frac = 0.0;
    let mut hm_net_frac = 0.0;
    let mut cen_total = 0.0;
    let mut hm_total = 0.0;
    let mut n = 0.0;
    for w in Workload::evaluation_set() {
        for platform in [Platform::CentralizedFaaS, Platform::HiveMind] {
            let o = match w {
                Workload::App(app) => hivemind_core::experiment::Experiment::new(
                    hivemind_core::experiment::ExperimentConfig::single_app(app)
                        .platform(platform)
                        .input_scale(2.0)
                        .seed(2),
                )
                .run(),
                Workload::Scenario(_) => w.run(platform, 2),
            };
            let total = o.tasks.total.mean().max(1e-12);
            let net = o.tasks.network.mean() / total;
            let mgmt = o.tasks.management.mean() / total;
            let io = o.tasks.data_io.mean() / total;
            let exec = o.tasks.exec.mean() / total;
            if platform == Platform::CentralizedFaaS {
                cen_net_frac += net;
                cen_total += total;
                n += 1.0;
            } else {
                hm_net_frac += net;
                hm_total += total;
            }
            table.row([
                w.label().to_string(),
                platform.label().to_string(),
                pct(net),
                pct(mgmt),
                pct(io),
                pct(exec),
                ms(total),
            ]);
        }
    }
    table.print();
    println!();
    println!(
        "network share of latency: centralized {:.1}% -> hivemind {:.1}%  (paper: 33% -> 9.3%)",
        100.0 * cen_net_frac / n,
        100.0 * hm_net_frac / n
    );
    println!(
        "mean end-to-end improvement: {:.0}%  (paper: 56% on average, up to 2.85x)",
        100.0 * (1.0 - (hm_total / n) / (cen_total / n))
    );
}

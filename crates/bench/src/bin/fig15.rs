//! Fig. 15 — decision quality without retraining, with per-device
//! retraining, and with swarm-wide retraining, for both end-to-end
//! scenarios.
//!
//! Two complementary reproductions:
//! 1. the *learning-dynamics* view: a real online logistic-regression
//!    detector trained under each policy (`hivemind_apps::learning`);
//! 2. the *in-mission* view: scenario runs where recognition quality
//!    (item-detection probability, embedding tightness for dedup) follows
//!    the retraining mode.

use hivemind_apps::learning::run_campaign;
use hivemind_bench::report::Report;
use hivemind_bench::{banner, repeats, runner, smoke, Table};
use hivemind_core::prelude::*;

fn main() {
    let report = Report::from_env();
    banner("Figure 15 (learning dynamics): online detector accuracy per retraining policy");
    let mut table = Table::new(["policy", "correct %", "false neg %", "false pos %"]);
    let rounds = if smoke() { 40 } else { 150 };
    let campaigns = runner().map(&RetrainMode::ALL, |_, &mode| {
        run_campaign(mode, 16, rounds, 6, 42)
    });
    for (mode, q) in RetrainMode::ALL.iter().zip(campaigns) {
        table.row([
            mode.label().to_string(),
            format!("{:.1}", q.correct_pct),
            format!("{:.1}", q.false_negative_pct),
            format!("{:.1}", q.false_positive_pct),
        ]);
    }
    table.print();

    banner("Figure 15 (in-mission): detection quality per scenario and retraining policy");
    let mut table = Table::new([
        "scenario",
        "policy",
        "correct %",
        "false neg %",
        "false pos %",
        "targets",
    ]);
    let scenarios: &[Scenario] = if smoke() {
        &[Scenario::StationaryItems]
    } else {
        &[Scenario::StationaryItems, Scenario::MovingPeople]
    };
    for &scenario in scenarios {
        for mode in RetrainMode::ALL {
            let n = repeats();
            let set = report.run_replicated(
                &ExperimentConfig::scenario(scenario)
                    .platform(Platform::HiveMind)
                    .retrain(mode)
                    .seed(1),
                n,
            );
            let (mut c, mut fneg, mut fpos) = (0.0, 0.0, 0.0);
            let mut found = 0;
            for o in set.outcomes() {
                let q = o
                    .mission
                    .detection
                    .as_ref()
                    .expect("scenarios score detection");
                c += q.correct_pct / n as f64;
                fneg += q.false_negative_pct / n as f64;
                fpos += q.false_positive_pct / n as f64;
                found = o.mission.targets_found;
            }
            table.row([
                scenario.label().to_string(),
                mode.label().to_string(),
                format!("{c:.1}"),
                format!("{fneg:.1}"),
                format!("{fpos:.1}"),
                format!("{found}/{}", scenario.target_count()),
            ]);
        }
    }
    table.print();
    println!("(paper: swarm-wide retraining quickly resolves remaining false results)");
}

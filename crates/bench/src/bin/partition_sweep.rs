//! Partition sweep — disconnected operation under wireless partitions.
//!
//! The fault plane's partitions hold every wireless transfer until the
//! window closes, and the bounded hold buffer tail-drops beyond its
//! high-water mark — so a swarm that merely *waits out* repeated
//! partitions loses work and, at mission level, loses sightings. The
//! disconnect plane instead lets each device detect cloud loss when its
//! heartbeat lease expires, execute tasks on-device with the degraded
//! model, and buffer result summaries for exactly-once replay at heal.
//!
//! This sweep plots both planes against each other across partition
//! length × partition count: task completion for the single-app grid,
//! then mission completion and result staleness for a Scenario A mission
//! under repeated 30 s partitions. The graceful-degradation gates assert
//! that lease-based autonomy carries >= 95% of the work where the
//! hold-only baseline visibly loses it.
//!
//! `--smoke` runs a quick deterministic slice through the replicate
//! runner and prints the outcome JSON; CI diffs that output across
//! `HIVEMIND_THREADS` and `HIVEMIND_SHARDS` values to pin down
//! byte-determinism of the disconnect plane.

use hivemind_bench::{banner, runner, Table};
use hivemind_core::prelude::*;

/// Repeated partitions: `count` windows of `len` seconds, 20 s apart,
/// over a bounded hold buffer (64 in-flight transfers, then tail-drop).
fn partitions(count: u32, len: f64) -> FaultPlan {
    let mut plan = FaultPlan::default().partition_hold_bound(64);
    for k in 0..count {
        let from = 20.0 + k as f64 * (len + 20.0);
        plan = plan.partition(from, from + len);
    }
    plan
}

fn cell(count: u32, len: f64, policy: DisconnectPolicy) -> Outcome {
    Experiment::new(
        ExperimentConfig::single_app(App::FaceRecognition)
            .platform(Platform::CentralizedFaaS)
            .duration_secs(360.0)
            .seed(7)
            .plan(
                RunPlan::new()
                    .faults(partitions(count, len))
                    .disconnect(policy),
            ),
    )
    .run()
}

/// Completed fraction of all submitted tasks (16 devices × 1 task/s).
fn completion_pct(o: &Outcome, duration_secs: f64) -> f64 {
    100.0 * o.tasks.len() as f64 / (16.0 * duration_secs)
}

fn sweep() {
    banner("Partition sweep: task completion % (hold-only -> autonomous)");
    const LENGTHS: [f64; 3] = [10.0, 30.0, 60.0];
    const COUNTS: [u32; 3] = [1, 2, 4];
    let mut table = Table::new(["partition len", "x1", "x2", "x4"]);
    let mut gate = (100.0, 0.0);
    for &len in &LENGTHS {
        let mut cells = vec![format!("{len:.0} s")];
        for &count in &COUNTS {
            let hold = cell(count, len, DisconnectPolicy::default());
            let auto = cell(count, len, DisconnectPolicy::default().autonomous());
            let hold_pct = completion_pct(&hold, 360.0);
            let auto_pct = completion_pct(&auto, 360.0);
            if len == 30.0 && count == 4 {
                gate = (hold_pct, auto_pct);
            }
            cells.push(format!("{hold_pct:.1}% -> {auto_pct:.1}%"));
        }
        table.row(cells);
    }
    table.print();
    println!("(hold buffer bound 64; autonomy: 3 s lease, degraded on-device model)");
    let (hold_pct, auto_pct) = gate;
    assert!(
        auto_pct >= 95.0,
        "autonomy must carry >= 95% of tasks through 4 x 30 s partitions, got {auto_pct:.1}%"
    );
    assert!(
        hold_pct < 95.0,
        "the hold-only baseline must visibly lose work at 4 x 30 s, got {hold_pct:.1}%"
    );

    banner("Scenario A mission under repeated 30 s partitions");
    // Mission batches are 16 MB camera streams, so transfers occupy the
    // fabric ~8x longer than the grid's 2 MB tasks: a 256-entry hold
    // buffer rides out the 3 s lease window but still overflows when the
    // hold-only baseline parks a full 30 s outage in it.
    let faults = || {
        FaultPlan::default()
            .partition_hold_bound(256)
            .partition(60.0, 90.0)
            .partition(120.0, 150.0)
    };
    let base = ExperimentConfig::scenario(Scenario::StationaryItems)
        .platform(Platform::CentralizedFaaS)
        .seed(11);
    let healthy = Experiment::new(base.clone()).run();
    let hold = Experiment::new(base.clone().plan(RunPlan::new().faults(faults()))).run();
    let auto = Experiment::new(
        base.plan(
            RunPlan::new()
                .faults(faults())
                .disconnect(DisconnectPolicy::default().autonomous()),
        ),
    )
    .run();
    let mut table = Table::new([
        "mission",
        "time (s)",
        "found",
        "completed",
        "tasks",
        "staleness (s)",
    ]);
    for (label, o) in [
        ("healthy", &healthy),
        ("hold-only", &hold),
        ("autonomous", &auto),
    ] {
        let staleness = o
            .reconnect
            .map(|r| format!("{:.1}", r.mean_staleness_secs))
            .unwrap_or_else(|| "-".into());
        table.row([
            label.to_string(),
            format!("{:.1}", o.mission.duration_secs),
            format!("{}/{}", o.mission.targets_found, o.mission.targets_total),
            o.mission.completed.to_string(),
            o.tasks.len().to_string(),
            staleness,
        ]);
    }
    table.print();
    println!("(dropped held uplinks lose sightings outright; autonomy recognizes on-device");
    println!(" during the outage and replays buffered summaries exactly once at each heal)");
    let r = auto.reconnect.expect("armed plane populates stats");
    assert!(
        auto.mission.completed && auto.tasks.len() as f64 >= 0.95 * healthy.tasks.len() as f64,
        "autonomy must complete >= 95% of the healthy mission's tasks: {} vs {}",
        auto.tasks.len(),
        healthy.tasks.len()
    );
    assert!(
        (hold.tasks.len() as f64) < 0.95 * healthy.tasks.len() as f64,
        "the hold-only baseline must lose the mission's work: {} vs {}",
        hold.tasks.len(),
        healthy.tasks.len()
    );
    assert!(
        auto.mission.targets_found >= hold.mission.targets_found,
        "degraded recognition must not find fewer targets than dropped uplinks: {} vs {}",
        auto.mission.targets_found,
        hold.mission.targets_found
    );
    assert_eq!(r.partitions, 2, "one reconciliation per heal");
    assert!(r.mean_staleness_secs > 0.0, "replayed summaries aged");
}

fn smoke() {
    // One 10 s partition mid-run, autonomy armed, through the replicate
    // runner: HIVEMIND_THREADS / HIVEMIND_SHARDS affect the execution
    // schedule but must not affect any byte of the output.
    let cfg = ExperimentConfig::single_app(App::FaceRecognition)
        .platform(Platform::CentralizedFaaS)
        .duration_secs(25.0)
        .seed(5)
        .plan(
            RunPlan::new()
                .faults(
                    FaultPlan::default()
                        .partition_hold_bound(64)
                        .partition(5.0, 15.0),
                )
                .disconnect(DisconnectPolicy::default().autonomous()),
        );
    let set = runner().run_replicates(&cfg, 3);
    for (seed, outcome) in set.seeds().iter().zip(set.outcomes()) {
        let r = outcome.reconnect.expect("armed plane populates stats");
        assert_eq!(r.partitions, 1, "the scheduled heal fired");
        assert!(r.tasks_degraded > 0, "lease expiry flips to autonomy");
        assert!(r.updates_replayed > 0, "the heal replays the buffer");
        assert_eq!(
            r.updates_buffered,
            r.updates_replayed + r.updates_expired,
            "exactly-once conservation"
        );
        println!("seed {seed}: {}", outcome.to_json());
    }
    println!("partition smoke ok");
}

fn main() {
    if hivemind_bench::cli::Cli::from_env().smoke() {
        smoke();
    } else {
        sweep();
    }
}

//! Fig. 6 — the challenges of serverless for edge applications:
//! (a) performance variability on reserved vs serverless resources,
//! (b) the share of task latency spent on instantiation and data I/O,
//! (c) the impact of the data-sharing protocol (CouchDB / direct RPC /
//! in-memory / HiveMind's remote memory).

use hivemind_bench::report::{task_quantile_secs, Report};
use hivemind_bench::{banner, ms, pct, single_app_duration_secs, Table, Workload};
use hivemind_core::prelude::*;
use hivemind_faas::dataplane::{DataPlane, ExchangeProtocol};
use hivemind_sim::rng::RngForge;
use hivemind_sim::stats::Summary;

fn main() {
    let report = Report::from_env();
    banner("Figure 6a: latency variability, reserved vs serverless (ms)");
    let mut table = Table::new([
        "app",
        "res p50",
        "res p99",
        "res p99/p50",
        "faas p50",
        "faas p99",
        "faas p99/p50",
    ]);
    let apps: Vec<Workload> = Workload::active_set()
        .into_iter()
        .filter(|w| matches!(w, Workload::App(_)))
        .collect();
    // "Reserved" = a fixed pool generously provisioned so only inherent
    // exec-time variability remains; serverless adds instantiation and
    // data-plane variability on top.
    let configs: Vec<ExperimentConfig> = apps
        .iter()
        .flat_map(|w| {
            let hivemind_bench::Workload::App(app) = w else {
                unreachable!()
            };
            [
                ExperimentConfig::single_app(*app)
                    .platform(Platform::CentralizedIaaS)
                    .duration_secs(single_app_duration_secs())
                    .iaas_workers(64)
                    .seed(5),
                w.config(Platform::CentralizedFaaS, 5),
            ]
        })
        .collect();
    let outcomes = report.run_configs(&configs);
    for (w, pair) in apps.iter().zip(outcomes.chunks_exact(2)) {
        let (reserved, faas) = (&pair[0], &pair[1]);
        let quantiles = |o: &Outcome| (task_quantile_secs(o, 0.5), task_quantile_secs(o, 0.99));
        let ((r_p50, r_p99), (f_p50, f_p99)) = (quantiles(reserved), quantiles(faas));
        let (r_ratio, f_ratio) = (r_p99 / r_p50.max(1e-9), f_p99 / f_p50.max(1e-9));
        table.row([
            w.label().to_string(),
            ms(r_p50),
            ms(r_p99),
            format!("{r_ratio:.2}"),
            ms(f_p50),
            ms(f_p99),
            format!("{f_ratio:.2}"),
        ]);
    }
    table.print();
    println!("(paper: variability is consistently higher with serverless)");

    banner("Figure 6b: serverless latency breakdown — instantiation / data I/O / execution");
    let mut table = Table::new([
        "app",
        "instantiation",
        "data I/O",
        "execution",
        "cold starts",
    ]);
    let configs: Vec<ExperimentConfig> = apps
        .iter()
        .map(|w| w.config(Platform::CentralizedFaaS, 6))
        .collect();
    for (w, o) in apps.iter().zip(report.run_configs(&configs)) {
        let total = o.tasks.total.mean().max(1e-12);
        let inst = o.tasks.instantiation.mean() / total;
        let io = o.tasks.data_io.mean() / total;
        let exec = o.tasks.exec.mean() / total;
        let (warm, cold) = o.container_stats;
        table.row([
            w.label().to_string(),
            pct(inst),
            pct(io),
            pct(exec),
            format!("{cold}/{}", warm + cold),
        ]);
    }
    table.print();
    println!(
        "(paper: instantiation ~22% of median latency on average; >40% for weather, <20% for maze)"
    );

    banner("Figure 6c: data-sharing protocol latency for a 200 KB exchange at 16 exchanges/s (ms)");
    let mut table = Table::new(["protocol", "median", "p99"]);
    for (label, proto) in [
        ("CouchDB (OpenWhisk default)", ExchangeProtocol::CouchDb),
        ("Direct RPC", ExchangeProtocol::DirectRpc),
        ("In-memory (colocated)", ExchangeProtocol::InMemory),
        (
            "Remote memory (HiveMind FPGA)",
            ExchangeProtocol::RemoteMemory,
        ),
    ] {
        let mut plane = DataPlane::new();
        let mut rng = RngForge::new(7).stream("fig6c");
        let mut s = Summary::new();
        for i in 0..2000u64 {
            let t = SimTime::ZERO + SimDuration::from_nanos(i * 62_500_000);
            s.record_duration(plane.exchange(t, proto, 200_000, &mut rng));
        }
        table.row([label.to_string(), ms(s.median()), ms(s.p99())]);
    }
    table.print();
    println!("(paper: CouchDB slowest, RPC considerably faster, in-memory fastest)");
}

//! Fig. 13 — incremental-benefit ablation: HiveMind against centralized
//! systems with network (and remote-memory) acceleration, distributed
//! systems with and without network acceleration, and HiveMind without
//! hardware acceleration.

use hivemind_bench::report::{workload_cells, Report};
use hivemind_bench::{banner, Table, Workload};
use hivemind_core::prelude::*;

fn main() {
    let report = Report::from_env();
    banner("Figure 13: ablating HiveMind's techniques (median / p99 task ms; job s for scenarios)");
    let mut headers = vec!["workload".to_string()];
    for p in Platform::ABLATIONS {
        headers.push(format!("{} p50", p.label()));
        headers.push(format!("{} p99", p.label()));
    }
    let mut table = Table::new(headers);
    let workloads = Workload::active_set();
    let configs: Vec<ExperimentConfig> = workloads
        .iter()
        .flat_map(|w| Platform::ABLATIONS.map(|p| w.config(p, 3)))
        .collect();
    let outcomes = report.run_configs(&configs);
    for (w, per_platform) in workloads
        .iter()
        .zip(outcomes.chunks_exact(Platform::ABLATIONS.len()))
    {
        let mut row = vec![w.label().to_string()];
        for o in per_platform {
            row.extend(workload_cells(w, o));
        }
        table.row(row);
    }
    table.print();
    println!("(paper: no single technique suffices — centralized+accel still trails HiveMind,");
    println!(" the distributed system barely benefits from acceleration, and HiveMind-No Accel");
    println!(
        " keeps the hybrid-placement benefit but pays software networking/data-exchange costs)"
    );
}

//! Fig. 13 — incremental-benefit ablation: HiveMind against centralized
//! systems with network (and remote-memory) acceleration, distributed
//! systems with and without network acceleration, and HiveMind without
//! hardware acceleration.

use hivemind_bench::{banner, ms, runner, Table, Workload};
use hivemind_core::experiment::ExperimentConfig;
use hivemind_core::platform::Platform;

fn main() {
    banner("Figure 13: ablating HiveMind's techniques (median / p99 task ms; job s for scenarios)");
    let mut headers = vec!["workload".to_string()];
    for p in Platform::ABLATIONS {
        headers.push(format!("{} p50", p.label()));
        headers.push(format!("{} p99", p.label()));
    }
    let mut table = Table::new(headers);
    let workloads = Workload::evaluation_set();
    let configs: Vec<ExperimentConfig> = workloads
        .iter()
        .flat_map(|w| Platform::ABLATIONS.map(|p| w.config(p, 3)))
        .collect();
    let outcomes = runner().run_configs(&configs);
    for (w, per_platform) in workloads
        .iter()
        .zip(outcomes.chunks_exact(Platform::ABLATIONS.len()))
    {
        let mut row = vec![w.label().to_string()];
        for o in per_platform {
            let mut o = o.clone();
            match w {
                Workload::App(_) => {
                    row.push(ms(o.tasks.total.median()));
                    row.push(ms(o.tasks.total.p99()));
                }
                Workload::Scenario(_) => {
                    row.push(format!("{:.0}s", o.mission.duration_secs));
                    row.push(if o.mission.completed { "done" } else { "DNF" }.to_string());
                }
            }
        }
        table.row(row);
    }
    table.print();
    println!("(paper: no single technique suffices — centralized+accel still trails HiveMind,");
    println!(" the distributed system barely benefits from acceleration, and HiveMind-No Accel");
    println!(
        " keeps the hybrid-placement benefit but pays software networking/data-exchange costs)"
    );
}

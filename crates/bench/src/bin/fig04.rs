//! Fig. 4 — task-latency distributions for the ten single-tier jobs (a)
//! and job latencies for the two end-to-end scenarios (b), centralized
//! cloud vs distributed edge execution.

use hivemind_bench::report::{task_quantile_secs, Report};
use hivemind_bench::{banner, ms, repeats, smoke, Table, Workload};
use hivemind_core::prelude::*;

fn main() {
    let report = Report::from_env();
    banner("Figure 4a: task latency (ms), centralized cloud vs distributed edge");
    let mut table = Table::new([
        "app",
        "cloud p25",
        "cloud p50",
        "cloud p99",
        "edge p25",
        "edge p50",
        "edge p99",
    ]);
    let apps: Vec<Workload> = Workload::active_set()
        .into_iter()
        .filter(|w| matches!(w, Workload::App(_)))
        .collect();
    let configs: Vec<ExperimentConfig> = apps
        .iter()
        .flat_map(|w| {
            [
                w.config(Platform::CentralizedFaaS, 1),
                w.config(Platform::DistributedEdge, 1),
            ]
        })
        .collect();
    let outcomes = report.run_configs(&configs);
    for (w, pair) in apps.iter().zip(outcomes.chunks_exact(2)) {
        let (cloud, edge) = (&pair[0], &pair[1]);
        table.row([
            w.label().to_string(),
            ms(task_quantile_secs(cloud, 0.25)),
            ms(task_quantile_secs(cloud, 0.5)),
            ms(task_quantile_secs(cloud, 0.99)),
            ms(task_quantile_secs(edge, 0.25)),
            ms(task_quantile_secs(edge, 0.5)),
            ms(task_quantile_secs(edge, 0.99)),
        ]);
    }
    table.print();
    println!("(paper: cloud wins for most jobs; S3/S7 comparable, S4 better at the edge)");

    banner("Figure 4b: job latency (s) for the end-to-end scenarios");
    let mut table = Table::new(["scenario", "platform", "median (s)", "max (s)", "completed"]);
    let scenarios: &[Scenario] = if smoke() {
        &[Scenario::StationaryItems]
    } else {
        &[Scenario::StationaryItems, Scenario::MovingPeople]
    };
    for &scenario in scenarios {
        for platform in [Platform::CentralizedFaaS, Platform::DistributedEdge] {
            let set = report.run_replicated(
                &ExperimentConfig::scenario(scenario)
                    .platform(platform)
                    .seed(1),
                repeats(),
            );
            let s = set.mission_durations();
            table.row([
                scenario.label().to_string(),
                platform.label().to_string(),
                format!("{:.1}", s.median()),
                format!("{:.1}", s.max()),
                set.all_completed().to_string(),
            ]);
        }
    }
    table.print();
    println!("(paper: on-board execution leaves Scenario B incomplete — drones run out of power)");
}

//! Fig. 4 — task-latency distributions for the ten single-tier jobs (a)
//! and job latencies for the two end-to-end scenarios (b), centralized
//! cloud vs distributed edge execution.

use hivemind_apps::scenario::Scenario;
use hivemind_bench::{banner, ms, repeats, Table, Workload};
use hivemind_core::experiment::{Experiment, ExperimentConfig};
use hivemind_core::platform::Platform;
use hivemind_sim::stats::Summary;

fn main() {
    banner("Figure 4a: task latency (ms), centralized cloud vs distributed edge");
    let mut table = Table::new([
        "app",
        "cloud p25",
        "cloud p50",
        "cloud p99",
        "edge p25",
        "edge p50",
        "edge p99",
    ]);
    for w in Workload::evaluation_set().into_iter().take(10) {
        let mut cloud = w.run(Platform::CentralizedFaaS, 1);
        let mut edge = w.run(Platform::DistributedEdge, 1);
        table.row([
            w.label().to_string(),
            ms(cloud.tasks.total.quantile(0.25)),
            ms(cloud.tasks.total.median()),
            ms(cloud.tasks.total.p99()),
            ms(edge.tasks.total.quantile(0.25)),
            ms(edge.tasks.total.median()),
            ms(edge.tasks.total.p99()),
        ]);
    }
    table.print();
    println!("(paper: cloud wins for most jobs; S3/S7 comparable, S4 better at the edge)");

    banner("Figure 4b: job latency (s) for the end-to-end scenarios");
    let mut table = Table::new(["scenario", "platform", "median (s)", "max (s)", "completed"]);
    for scenario in [Scenario::StationaryItems, Scenario::MovingPeople] {
        for platform in [Platform::CentralizedFaaS, Platform::DistributedEdge] {
            let mut s = Summary::new();
            let mut completed = true;
            for seed in 0..repeats() {
                let o = Experiment::new(
                    ExperimentConfig::scenario(scenario)
                        .platform(platform)
                        .seed(seed + 1),
                )
                .run();
                s.record(o.mission.duration_secs);
                completed &= o.mission.completed;
            }
            table.row([
                scenario.label().to_string(),
                platform.label().to_string(),
                format!("{:.1}", s.median()),
                format!("{:.1}", s.max()),
                completed.to_string(),
            ]);
        }
    }
    table.print();
    println!("(paper: on-board execution leaves Scenario B incomplete — drones run out of power)");
}

//! Fig. 1 — execution time and consumed battery for the end-to-end
//! "treasure hunt" scenario (locating tennis balls in a field) on a real
//! 16-drone swarm (top) and a simulated 1000-drone swarm (bottom), across
//! Centralized IaaS, Centralized FaaS, Distributed Edge, and HiveMind.

use hivemind_apps::scenario::Scenario;
use hivemind_bench::{banner, repeats, Table};
use hivemind_core::experiment::{Experiment, ExperimentConfig};
use hivemind_core::platform::Platform;

fn main() {
    banner("Figure 1: treasure-hunt scenario, execution time + consumed battery");
    for devices in [16u32, 1000] {
        println!("--- {devices}-drone swarm ---");
        let mut table = Table::new([
            "platform",
            "exec time (s)",
            "battery mean (%)",
            "battery max (%)",
            "found",
            "completed",
        ]);
        for platform in Platform::MAIN {
            let mut durations = Vec::new();
            let mut batt_mean = 0.0;
            let mut batt_max: f64 = 0.0;
            let mut found = 0;
            let mut completed = true;
            let n = if devices > 100 { 1 } else { repeats() };
            for seed in 0..n {
                let o = Experiment::new(
                    ExperimentConfig::scenario(Scenario::StationaryItems)
                        .platform(platform)
                        .drones(devices)
                        .seed(seed + 1),
                )
                .run();
                durations.push(o.mission.duration_secs);
                batt_mean += o.battery.mean_pct / n as f64;
                batt_max = batt_max.max(o.battery.max_pct);
                found = o.mission.targets_found;
                completed &= o.mission.completed;
            }
            let mean_dur = durations.iter().sum::<f64>() / durations.len() as f64;
            table.row([
                platform.label().to_string(),
                format!("{mean_dur:.1}"),
                format!("{batt_mean:.1}"),
                format!("{batt_max:.1}"),
                format!("{found}/15"),
                completed.to_string(),
            ]);
        }
        table.print();
        println!();
    }
}

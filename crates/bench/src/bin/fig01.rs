//! Fig. 1 — execution time and consumed battery for the end-to-end
//! "treasure hunt" scenario (locating tennis balls in a field) on a real
//! 16-drone swarm (top) and a simulated 1000-drone swarm (bottom), across
//! Centralized IaaS, Centralized FaaS, Distributed Edge, and HiveMind.

use hivemind_bench::report::Report;
use hivemind_bench::{banner, repeats, smoke, Table};
use hivemind_core::prelude::*;

fn main() {
    let report = Report::from_env();
    banner("Figure 1: treasure-hunt scenario, execution time + consumed battery");
    let device_counts: &[u32] = if smoke() { &[16] } else { &[16, 1000] };
    for &devices in device_counts {
        println!("--- {devices}-drone swarm ---");
        let mut table = Table::new([
            "platform",
            "exec time (s)",
            "battery mean (%)",
            "battery max (%)",
            "found",
            "completed",
        ]);
        for platform in Platform::MAIN {
            let n = if devices > 100 { 1 } else { repeats() };
            let set = report.run_replicated(
                &ExperimentConfig::scenario(Scenario::StationaryItems)
                    .platform(platform)
                    .devices(devices)
                    .seed(1),
                n,
            );
            let found = set
                .outcomes()
                .last()
                .expect("replicates")
                .mission
                .targets_found;
            table.row([
                platform.label().to_string(),
                format!("{:.1}", set.mission_durations().mean()),
                format!("{:.1}", set.mean_battery_pct()),
                format!("{:.1}", set.max_battery_pct()),
                format!("{found}/15"),
                set.all_completed().to_string(),
            ]);
        }
        table.print();
        println!();
    }
}

//! Fig. 14 — consumed battery and network bandwidth across the three
//! platforms for all workloads.

use hivemind_bench::report::Report;
use hivemind_bench::{banner, Table, Workload};
use hivemind_core::prelude::*;

fn main() {
    let report = Report::from_env();
    banner("Figure 14a: consumed battery (%) per platform");
    let mut table = Table::new([
        "workload",
        "centralized mean",
        "centralized max",
        "distributed mean",
        "distributed max",
        "hivemind mean",
        "hivemind max",
    ]);
    let platforms = [
        Platform::CentralizedFaaS,
        Platform::DistributedEdge,
        Platform::HiveMind,
    ];
    let mut bandwidth_rows = Vec::new();
    let workloads = Workload::active_set();
    let configs: Vec<ExperimentConfig> = workloads
        .iter()
        .flat_map(|w| platforms.map(|p| w.config(p, 4)))
        .collect();
    let outcomes = report.run_configs(&configs);
    for (w, per_platform) in workloads.iter().zip(outcomes.chunks_exact(platforms.len())) {
        let mut row = vec![w.label().to_string()];
        let mut bw_row = vec![w.label().to_string()];
        for o in per_platform {
            row.push(format!("{:.1}", o.battery.mean_pct));
            row.push(format!("{:.1}", o.battery.max_pct));
            bw_row.push(format!("{:.1}", o.bandwidth.mean_mbps));
            bw_row.push(format!("{:.1}", o.bandwidth.p99_mbps));
        }
        table.row(row);
        bandwidth_rows.push(bw_row);
    }
    table.print();
    println!("(paper: HiveMind below both baselines except S3/S4, where splitting does not pay)");

    banner("Figure 14b: network bandwidth (MB/s) per platform, mean and p99 windows");
    let mut table = Table::new([
        "workload",
        "centralized mean",
        "centralized p99",
        "distributed mean",
        "distributed p99",
        "hivemind mean",
        "hivemind p99",
    ]);
    for row in bandwidth_rows {
        table.row(row);
    }
    table.print();
    println!(
        "(paper: HiveMind uses more bandwidth than distributed but far less than centralized,"
    );
    println!(" with a smaller mean-to-tail gap — the source of its predictability)");
}

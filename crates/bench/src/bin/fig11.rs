//! Fig. 11 — task latency across all single-tier tasks and job latency
//! for the multi-tier scenarios, with centralized cloud, distributed
//! edge, and HiveMind.

use hivemind_bench::report::{workload_cells, Report};
use hivemind_bench::{banner, Table, Workload};
use hivemind_core::prelude::*;

fn main() {
    let report = Report::from_env();
    banner("Figure 11: latency per platform (task ms for S1-S10; job s for scenarios)");
    let mut table = Table::new([
        "workload",
        "centralized p50",
        "centralized p99",
        "distributed p50",
        "distributed p99",
        "hivemind p50",
        "hivemind p99",
    ]);
    let platforms = [
        Platform::CentralizedFaaS,
        Platform::DistributedEdge,
        Platform::HiveMind,
    ];
    let workloads = Workload::active_set();
    let configs: Vec<ExperimentConfig> = workloads
        .iter()
        .flat_map(|w| platforms.map(|p| w.config(p, 1)))
        .collect();
    let outcomes = report.run_configs(&configs);
    for (w, per_platform) in workloads.iter().zip(outcomes.chunks_exact(platforms.len())) {
        let mut row = vec![w.label().to_string()];
        for o in per_platform {
            row.extend(workload_cells(w, o));
        }
        table.row(row);
    }
    table.print();
    println!("(paper: HiveMind consistently better and less variable than both baselines)");
}

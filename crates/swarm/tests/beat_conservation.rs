//! Property test pinning the disconnect plane's conservation invariant:
//! under an arbitrary partition schedule, every buffered beat is either
//! delivered exactly once or explicitly expired — never duplicated,
//! never silently lost.

use hivemind_sim::time::SimTime;
use hivemind_swarm::disconnect::{ReplayRing, ReplaySession};
use proptest::prelude::*;

proptest! {
    /// Drives one device's ring/session pair through an adversarial
    /// schedule: beats arrive in bursts, partitions heal (drain +
    /// replay), and a flaky link re-offers already-replayed batches.
    /// Each step is an `(op, burst)` pair decoded below: op 0-2 buffers
    /// `burst` beats, op 3-4 heals, op 5 duplicates the last replay.
    #[test]
    fn beats_conserved_under_arbitrary_partition_schedules(
        cap in 1u32..32,
        steps in prop::collection::vec((0u8..6, 1u8..20), 1..64),
    ) {
        let mut ring: ReplayRing<()> = ReplayRing::new(cap);
        let mut session = ReplaySession::new();
        let mut last_batch: Vec<u64> = Vec::new();
        let mut clock = 0u64;

        for (op, burst) in steps {
            match op {
                0..=2 => {
                    for _ in 0..burst {
                        clock += 1;
                        ring.push(SimTime::from_secs(clock), ());
                    }
                }
                3 | 4 => {
                    last_batch = ring.drain().map(|u| u.seq).collect();
                    // Sequences drain in order and are all fresh: every
                    // offer in a first replay must be accepted.
                    for seq in &last_batch {
                        prop_assert!(session.offer(*seq));
                    }
                }
                _ => {
                    // A duplicated replay of an already-delivered batch
                    // must be suppressed in full.
                    for seq in &last_batch {
                        prop_assert!(!session.offer(*seq));
                    }
                }
            }
            // The conservation ledger balances after *every* step:
            // pushed == delivered + expired + still buffered.
            prop_assert_eq!(
                ring.pushed(),
                session.delivered() + ring.expired() + ring.len() as u64
            );
            // The ring never exceeds its bound.
            prop_assert!(ring.len() <= cap as usize);
        }

        // Final heal delivers the tail exactly once.
        for u in ring.drain() {
            prop_assert!(session.offer(u.seq));
        }
        prop_assert_eq!(ring.pushed(), session.delivered() + ring.expired());
    }
}

//! Property-based tests for the swarm substrate.

use hivemind_sim::rng::RngForge;
use hivemind_sim::time::{SimDuration, SimTime};
use hivemind_swarm::battery::{Battery, BatteryParams};
use hivemind_swarm::failover::{repartition, try_repartition, FailoverError, HeartbeatTracker};
use hivemind_swarm::field::{Field, FieldParams};
use hivemind_swarm::geometry::{partition_field, Point, Rect};
use hivemind_swarm::route::{coverage_lanes, path_length, visit_order};
use proptest::prelude::*;

proptest! {
    /// Coverage lanes always span the region's full height per lane, and
    /// lane spacing never exceeds the footprint width.
    #[test]
    fn coverage_lanes_cover_the_region(
        w in 1.0f64..500.0,
        h in 1.0f64..500.0,
        footprint in 0.5f64..20.0,
    ) {
        let region = Rect::new(0.0, 0.0, w, h);
        let lanes = coverage_lanes(&region, footprint);
        prop_assert!(lanes.len() >= 2);
        prop_assert_eq!(lanes.len() % 2, 0);
        let n_lanes = lanes.len() / 2;
        let spacing = w / n_lanes as f64;
        prop_assert!(spacing <= footprint + 1e-9, "spacing {spacing} > footprint");
        for pair in lanes.chunks(2) {
            prop_assert!((pair[0].x - pair[1].x).abs() < 1e-9, "lanes are vertical");
            prop_assert!(((pair[0].y - pair[1].y).abs() - h).abs() < 1e-9);
        }
        prop_assert!(path_length(&lanes) >= h * n_lanes as f64);
    }

    /// 2-opt visit orders are permutations and locally optimal (no
    /// single segment reversal can shorten them).
    #[test]
    fn visit_order_is_a_short_permutation(
        targets in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..12),
    ) {
        let pts: Vec<Point> = targets.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let start = Point::new(0.0, 0.0);
        let order = visit_order(start, &pts);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..pts.len()).collect::<Vec<_>>());
        let tour = |ord: &[usize]| -> f64 {
            let mut len = start.distance(pts[ord[0]]);
            len += ord.windows(2).map(|w| pts[w[0]].distance(pts[w[1]])).sum::<f64>();
            len
        };
        // 2-opt local optimality: no single segment reversal improves the
        // returned tour.
        let base = tour(&order);
        for i in 0..order.len() {
            for j in i + 1..order.len() {
                let mut candidate = order.clone();
                candidate[i..=j].reverse();
                prop_assert!(tour(&candidate) + 1e-9 >= base);
            }
        }
    }

    /// Repartitioning a failed device conserves its area exactly and only
    /// assigns to live devices, for any field and failure choice.
    #[test]
    fn repartition_conserves_area(
        n in 2u32..64,
        failed in 0u32..64,
        also_dead in 0u32..64,
    ) {
        prop_assume!(failed < n);
        let field = Rect::new(0.0, 0.0, 300.0, 200.0);
        let regions = partition_field(&field, n);
        let mut alive = vec![true; n as usize];
        if also_dead < n && also_dead != failed && n > 2 {
            alive[also_dead as usize] = false;
        }
        alive[failed as usize] = false;
        let assignments = repartition(&regions, &alive, failed as usize);
        prop_assert!(!assignments.is_empty());
        let total: f64 = assignments.iter().map(|(_, r)| r.area()).sum();
        prop_assert!((total - regions[failed as usize].area()).abs() < 1e-6);
        for (heir, _) in &assignments {
            prop_assert!(alive[*heir], "strips only go to live devices");
            prop_assert_ne!(*heir, failed as usize);
        }
    }

    /// Battery accounting is additive and monotone under any activity mix.
    #[test]
    fn battery_is_additive(
        activities in prop::collection::vec((0u8..4, 0u64..10_000), 1..50),
    ) {
        let mut b = Battery::new(BatteryParams::drone());
        let mut last = 0.0;
        for &(kind, amount) in &activities {
            match kind {
                0 => b.draw_motion(SimDuration::from_millis(amount)),
                1 => b.draw_idle(SimDuration::from_millis(amount)),
                2 => b.draw_compute(SimDuration::from_millis(amount)),
                _ => b.draw_radio(amount * 1000),
            }
            prop_assert!(b.consumed_j() >= last);
            last = b.consumed_j();
        }
        let (m, c, r, i) = b.energy_split();
        prop_assert!((m + c + r + i - b.consumed_j()).abs() < 1e-6);
        prop_assert!(b.consumed_percent() <= 100.0);
    }

    /// People never leave the field, whatever the advance pattern.
    #[test]
    fn people_stay_in_bounds(
        steps in prop::collection::vec(1u64..120, 1..12),
        seed in 0u64..200,
    ) {
        let mut field = Field::generate(FieldParams::scenario_b(), RngForge::new(seed));
        let mut t = 0;
        for &dt in &steps {
            t += dt;
            field.advance_people(hivemind_sim::time::SimTime::from_secs(t));
            let b = field.bounds();
            for p in field.people() {
                prop_assert!(
                    p.pos.x >= b.x0 - 1e-9
                        && p.pos.x <= b.x1 + 1e-9
                        && p.pos.y >= b.y0 - 1e-9
                        && p.pos.y <= b.y1 + 1e-9,
                    "person at {:?} outside {:?}",
                    p.pos,
                    b
                );
            }
        }
    }
}

proptest! {
    /// Repartitioning after a failure hands the failed device's area to
    /// live heirs, conserved exactly — whatever subset of the fleet is
    /// still alive.
    #[test]
    fn repartition_conserves_the_lost_area(
        n in 2u32..40,
        failed in 0u32..40,
        dead_mask in prop::collection::vec(any::<bool>(), 40..41),
    ) {
        let failed = (failed % n) as usize;
        let field = Rect::new(0.0, 0.0, 400.0, 300.0);
        let regions = partition_field(&field, n);
        let mut alive: Vec<bool> = (0..n as usize).map(|i| !dead_mask[i]).collect();
        alive[failed] = false;
        match try_repartition(&regions, &alive, failed) {
            Ok(extra) => {
                prop_assert!(!extra.is_empty());
                let total: f64 = extra.iter().map(|(_, r)| r.area()).sum();
                let lost = regions[failed].area();
                prop_assert!((total - lost).abs() < 1e-6 * lost.max(1.0));
                for &(heir, _) in &extra {
                    prop_assert!(heir != failed, "the dead device inherits nothing");
                    prop_assert!(alive[heir], "heirs must be alive");
                }
            }
            Err(e) => {
                // The only legitimate failure is a dead fleet.
                prop_assert!(alive.iter().all(|&a| !a), "unexpected error: {e}");
                prop_assert_eq!(e, FailoverError::NoSurvivors);
            }
        }
    }

    /// The fallible heartbeat API accepts exactly the ids the tracker was
    /// sized for and rejects the rest without panicking.
    #[test]
    fn heartbeats_reject_out_of_range_ids(n in 1u32..50, device in 0u32..100) {
        let mut hb = HeartbeatTracker::new(n);
        let r = hb.try_beat(device, SimTime::from_secs(1));
        if device < n {
            prop_assert!(r.is_ok());
            prop_assert!(!hb.is_failed(device));
        } else {
            prop_assert_eq!(
                r,
                Err(FailoverError::DeviceOutOfRange { device, fleet: n })
            );
        }
    }
}

//! Planar geometry for mission planning.

use std::fmt;

/// A point in field coordinates (meters).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// East coordinate, meters.
    pub x: f64,
    /// North coordinate, meters.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// An axis-aligned rectangle `[x0, x1) × [y0, y1)`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// West edge.
    pub x0: f64,
    /// South edge.
    pub y0: f64,
    /// East edge.
    pub x1: f64,
    /// North edge.
    pub y1: f64,
}

impl Rect {
    /// Creates a rectangle.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle is inverted.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        assert!(x1 >= x0 && y1 >= y0, "inverted rectangle");
        Rect { x0, y0, x1, y1 }
    }

    /// Width (east–west extent).
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Height (north–south extent).
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Area in m².
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)
    }

    /// Whether `p` lies inside (half-open).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x0 && p.x < self.x1 && p.y >= self.y0 && p.y < self.y1
    }

    /// Whether two rectangles share an edge segment (neighbourhood test
    /// for load repartitioning).
    pub fn adjacent(&self, other: &Rect) -> bool {
        let eps = 1e-9;
        let x_touch = (self.x1 - other.x0).abs() < eps || (other.x1 - self.x0).abs() < eps;
        let y_overlap = self.y0 < other.y1 - eps && other.y0 < self.y1 - eps;
        let y_touch = (self.y1 - other.y0).abs() < eps || (other.y1 - self.y0).abs() < eps;
        let x_overlap = self.x0 < other.x1 - eps && other.x0 < self.x1 - eps;
        (x_touch && y_overlap) || (y_touch && x_overlap)
    }

    /// Splits into `n` vertical strips of equal width, left to right.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn split_vertical(&self, n: u32) -> Vec<Rect> {
        assert!(n > 0, "cannot split into zero strips");
        let w = self.width() / n as f64;
        (0..n)
            .map(|i| {
                Rect::new(
                    self.x0 + w * i as f64,
                    self.y0,
                    self.x0 + w * (i + 1) as f64,
                    self.y1,
                )
            })
            .collect()
    }

    /// Splits into a grid of `rows × cols` cells, row-major from the
    /// south-west corner. Used to divide a field "equally among the
    /// drones" at time zero (Scenario A).
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn split_grid(&self, rows: u32, cols: u32) -> Vec<Rect> {
        assert!(rows > 0 && cols > 0);
        let w = self.width() / cols as f64;
        let h = self.height() / rows as f64;
        let mut out = Vec::with_capacity((rows * cols) as usize);
        for r in 0..rows {
            for c in 0..cols {
                out.push(Rect::new(
                    self.x0 + w * c as f64,
                    self.y0 + h * r as f64,
                    self.x0 + w * (c + 1) as f64,
                    self.y0 + h * (r + 1) as f64,
                ));
            }
        }
        out
    }
}

/// Partitions a field among `n` devices as near-square grid cells.
///
/// Chooses `rows × cols >= n` with `cols >= rows`, then assigns the first
/// `n` cells; remaining cells are merged into their left neighbour so the
/// whole field stays covered.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```rust
/// use hivemind_swarm::geometry::{partition_field, Rect};
///
/// let field = Rect::new(0.0, 0.0, 120.0, 80.0);
/// let regions = partition_field(&field, 16);
/// assert_eq!(regions.len(), 16);
/// let total: f64 = regions.iter().map(|r| r.area()).sum();
/// assert!((total - field.area()).abs() < 1e-6);
/// ```
pub fn partition_field(field: &Rect, n: u32) -> Vec<Rect> {
    assert!(n > 0, "cannot partition for zero devices");
    // Horizontal bands, each split into columns; the remainder is spread
    // one-extra-column-per-band so every region has area within a factor
    // (rows±1)/rows of the mean — no device inherits a mega-region.
    let rows = ((n as f64).sqrt().floor().max(1.0) as u32).min(n);
    let base_cols = n / rows;
    let extra = n % rows;
    let band_h = field.height() / rows as f64;
    let mut out = Vec::with_capacity(n as usize);
    for r in 0..rows {
        let cols = base_cols + u32::from(r < extra);
        let y0 = field.y0 + band_h * r as f64;
        let band = Rect::new(field.x0, y0, field.x1, y0 + band_h);
        out.extend(band.split_vertical(cols));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_area() {
        assert_eq!(Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0)), 5.0);
        let r = Rect::new(0.0, 0.0, 10.0, 5.0);
        assert_eq!(r.area(), 50.0);
        assert_eq!(r.center(), Point::new(5.0, 2.5));
    }

    #[test]
    fn contains_is_half_open() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(!r.contains(Point::new(10.0, 5.0)));
    }

    #[test]
    fn vertical_split_covers_exactly() {
        let r = Rect::new(0.0, 0.0, 12.0, 4.0);
        let strips = r.split_vertical(3);
        assert_eq!(strips.len(), 3);
        assert!(strips.iter().all(|s| (s.area() - 16.0).abs() < 1e-9));
        assert_eq!(strips[0].x1, strips[1].x0);
    }

    #[test]
    fn grid_split_row_major() {
        let r = Rect::new(0.0, 0.0, 4.0, 2.0);
        let cells = r.split_grid(2, 2);
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].x0, 0.0);
        assert_eq!(cells[0].y0, 0.0);
        assert_eq!(cells[1].x0, 2.0);
        assert_eq!(cells[2].y0, 1.0);
    }

    #[test]
    fn adjacency() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(1.0, 0.0, 2.0, 1.0);
        let c = Rect::new(2.0, 0.0, 3.0, 1.0);
        let d = Rect::new(0.0, 1.0, 1.0, 2.0);
        assert!(a.adjacent(&b));
        assert!(b.adjacent(&a));
        assert!(!a.adjacent(&c), "corner-distant rects are not neighbours");
        assert!(a.adjacent(&d), "vertical neighbours");
        // Diagonal touch only: not adjacent.
        let e = Rect::new(1.0, 1.0, 2.0, 2.0);
        assert!(!a.adjacent(&e));
    }

    #[test]
    fn partition_exact_square_counts() {
        let field = Rect::new(0.0, 0.0, 100.0, 100.0);
        for n in [1u32, 2, 3, 4, 7, 12, 14, 16, 25, 100] {
            let regions = partition_field(&field, n);
            assert_eq!(regions.len(), n as usize, "n = {n}");
            let total: f64 = regions.iter().map(|r| r.area()).sum();
            assert!(
                (total - field.area()).abs() < 1e-6,
                "area conserved for n = {n}"
            );
        }
    }

    #[test]
    fn partition_is_balanced() {
        let field = Rect::new(0.0, 0.0, 400.0, 250.0);
        for n in [14u32, 16, 100, 1000, 1023] {
            let regions = partition_field(&field, n);
            let mean = field.area() / n as f64;
            for r in &regions {
                assert!(
                    r.area() < 2.0 * mean && r.area() > mean / 2.0,
                    "n = {n}: region area {} vs mean {mean}",
                    r.area()
                );
            }
        }
    }

    #[test]
    fn partition_regions_disjoint() {
        let field = Rect::new(0.0, 0.0, 90.0, 60.0);
        let regions = partition_field(&field, 14);
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                let cx = (a.x0.max(b.x0), a.x1.min(b.x1));
                let cy = (a.y0.max(b.y0), a.y1.min(b.y1));
                let overlap = (cx.1 - cx.0).max(0.0) * (cy.1 - cy.0).max(0.0);
                assert!(overlap < 1e-9, "regions {a:?} and {b:?} overlap");
            }
        }
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_rect_panics() {
        let _ = Rect::new(1.0, 0.0, 0.0, 1.0);
    }
}

//! Device-side disconnected-operation state: lease clocks, bounded
//! replay rings, and the exactly-once reconnect session.
//!
//! During a wireless partition a device cannot tell "cloud is slow" from
//! "cloud is gone"; the lease piggybacked on each heartbeat ack is the
//! tie-breaker (same 1 s beat / 3 s window machinery as
//! [`failover`](crate::failover), read from the device's side). Once the
//! lease expires the device operates autonomously and records every
//! update it would have uplinked in a [`ReplayRing`] — bounded, oldest
//! evicted and counted as *expired*, never silent growth. At heal, a
//! [`ReplaySession`] replays the ring through the controller with a
//! per-device sequence watermark, so a retried or duplicated replay can
//! never double-deliver.
//!
//! ## Conservation invariant
//!
//! For every ring/session pair, at every instant:
//!
//! ```text
//! pushed == delivered + duplicates_suppressed? no —
//! pushed == delivered + expired + still_buffered
//! ```
//!
//! (duplicates are *rejected offers*, they never consume a push). The
//! property test in `tests/beat_conservation.rs` pins this under
//! arbitrary partition schedules, and `core::mc::DisconnectModel` model-
//! checks the same invariant against planted protocol mutants.

use std::collections::VecDeque;

use hivemind_sim::time::{SimDuration, SimTime};

use crate::failover::HeartbeatTracker;

impl HeartbeatTracker {
    /// The lease deadline the controller's ack of `device`'s latest beat
    /// granted: the device may assume the cloud is reachable until
    /// `last_beat + timeout` (never having beaten, the grant dates from
    /// run start). This is the controller-side mirror of the device's
    /// [`LeaseClock`]; both sides compute the same instant from the same
    /// beat, which is what lets detection stay deterministic without any
    /// extra message.
    pub fn lease_deadline(&self, device: u32, timeout: SimDuration) -> SimTime {
        self.last_beat(device).unwrap_or(SimTime::ZERO) + timeout
    }
}

/// A device's view of its cloud lease.
///
/// Each heartbeat ack renews the lease for `timeout`; when `now` passes
/// the deadline the device flips to autonomous operation. Pure state
/// machine — no RNG, no wall clock.
///
/// # Examples
///
/// ```rust
/// use hivemind_swarm::disconnect::LeaseClock;
/// use hivemind_sim::time::{SimDuration, SimTime};
///
/// let mut lease = LeaseClock::new(SimDuration::from_secs(3));
/// lease.grant(SimTime::from_secs(10));
/// assert!(!lease.lost(SimTime::from_secs(13)));
/// assert!(lease.lost(SimTime::from_secs(14)));
/// lease.grant(SimTime::from_secs(14));
/// assert!(!lease.lost(SimTime::from_secs(15)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseClock {
    timeout: SimDuration,
    deadline: SimTime,
}

impl LeaseClock {
    /// A fresh lease clock; the initial grant dates from run start, so a
    /// device that never hears an ack goes autonomous after one timeout.
    pub fn new(timeout: SimDuration) -> LeaseClock {
        LeaseClock {
            timeout,
            deadline: SimTime::ZERO + timeout,
        }
    }

    /// Renews the lease: an ack received at `now` is good for `timeout`.
    pub fn grant(&mut self, now: SimTime) {
        self.deadline = now + self.timeout;
    }

    /// `true` once `now` is strictly past the deadline — the device must
    /// assume the cloud is unreachable. Strict comparison mirrors the
    /// heartbeat tracker's `> timeout` failure test, so both sides flip
    /// at the same instant.
    pub fn lost(&self, now: SimTime) -> bool {
        now > self.deadline
    }

    /// The current lease deadline.
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }
}

/// A bounded ring of updates awaiting replay, with explicit expiry.
///
/// Every push is assigned the next per-device sequence number; when the
/// ring is full the *oldest* entry is evicted and counted as expired
/// (freshest-data-wins, matching what a real swarm would keep under
/// memory pressure). Sequence numbers never repeat, which is what the
/// reconnect watermark dedups on.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayRing<T> {
    cap: usize,
    next_seq: u64,
    expired: u64,
    buf: VecDeque<BufferedUpdate<T>>,
}

/// One buffered update: its sequence number, when it was buffered, and
/// the payload summary to replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferedUpdate<T> {
    /// Per-device sequence number (0-based, never reused).
    pub seq: u64,
    /// Instant the update was buffered (staleness = heal − this).
    pub at: SimTime,
    /// The update payload.
    pub item: T,
}

impl<T> ReplayRing<T> {
    /// A ring holding at most `cap` updates (`cap >= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`; policy validation rejects that upstream.
    pub fn new(cap: u32) -> ReplayRing<T> {
        assert!(cap >= 1, "replay ring capacity must be at least 1");
        ReplayRing {
            cap: cap as usize,
            next_seq: 0,
            expired: 0,
            buf: VecDeque::with_capacity(cap as usize),
        }
    }

    /// Buffers `item` at `at`, returning its sequence number. Evicts and
    /// expires the oldest entry if the ring is full.
    pub fn push(&mut self, at: SimTime, item: T) -> u64 {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.expired += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.buf.push_back(BufferedUpdate { seq, at, item });
        seq
    }

    /// Drains every buffered update in sequence order.
    pub fn drain(&mut self) -> impl Iterator<Item = BufferedUpdate<T>> + '_ {
        self.buf.drain(..)
    }

    /// Updates currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total updates ever pushed (equals the next sequence number).
    pub fn pushed(&self) -> u64 {
        self.next_seq
    }

    /// Updates evicted under the capacity bound (explicitly expired).
    pub fn expired(&self) -> u64 {
        self.expired
    }
}

/// Controller-side exactly-once acceptance state for one device.
///
/// Sequence numbers arrive in order from [`ReplayRing::drain`]; the
/// watermark accepts each at most once, so a duplicated replay (retry
/// after a second partition mid-session, a buggy double drain) is
/// suppressed rather than double-counted. The session persists across
/// partitions — the watermark is per-device lifetime state, which is
/// what makes dedup *session-scoped* rather than per-heal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplaySession {
    /// Highest sequence accepted so far, if any.
    watermark: Option<u64>,
    /// Updates accepted exactly once.
    delivered: u64,
    /// Offers rejected as duplicates.
    duplicates: u64,
}

impl ReplaySession {
    /// A fresh session with nothing delivered.
    pub fn new() -> ReplaySession {
        ReplaySession::default()
    }

    /// Offers sequence `seq` for delivery. Returns `true` (and advances
    /// the watermark) exactly once per sequence; repeats are counted as
    /// duplicates and rejected.
    pub fn offer(&mut self, seq: u64) -> bool {
        match self.watermark {
            Some(w) if seq <= w => {
                self.duplicates += 1;
                false
            }
            _ => {
                self.watermark = Some(seq);
                self.delivered += 1;
                true
            }
        }
    }

    /// Updates accepted exactly once.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Offers rejected as duplicates.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Highest accepted sequence, if any update was ever delivered.
    pub fn watermark(&self) -> Option<u64> {
        self.watermark
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_expires_strictly_after_deadline() {
        let mut lease = LeaseClock::new(SimDuration::from_secs(3));
        // Initial grant dates from run start.
        assert!(!lease.lost(SimTime::from_secs(3)));
        assert!(lease.lost(SimTime::from_secs(3) + SimDuration::from_millis(1)));
        lease.grant(SimTime::from_secs(10));
        assert_eq!(lease.deadline(), SimTime::from_secs(13));
        assert!(!lease.lost(SimTime::from_secs(13)));
        assert!(lease.lost(SimTime::from_secs(14)));
    }

    #[test]
    fn tracker_lease_mirrors_device_clock() {
        let mut hb = HeartbeatTracker::new(2);
        let timeout = SimDuration::from_secs(3);
        // Never beaten: grant dates from start, matching LeaseClock::new.
        assert_eq!(
            hb.lease_deadline(0, timeout),
            LeaseClock::new(timeout).deadline()
        );
        hb.beat(0, SimTime::from_secs(7));
        let mut dev = LeaseClock::new(timeout);
        dev.grant(SimTime::from_secs(7));
        assert_eq!(hb.lease_deadline(0, timeout), dev.deadline());
        assert_eq!(hb.lease_deadline(0, timeout), SimTime::from_secs(10));
    }

    #[test]
    fn ring_bounds_memory_and_counts_expiry() {
        let mut ring: ReplayRing<u32> = ReplayRing::new(3);
        for i in 0..5u32 {
            let seq = ring.push(SimTime::from_secs(i as u64), i);
            assert_eq!(seq, i as u64);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.pushed(), 5);
        assert_eq!(ring.expired(), 2);
        let kept: Vec<u64> = ring.drain().map(|u| u.seq).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest evicted, order preserved");
        assert!(ring.is_empty());
    }

    #[test]
    fn session_accepts_each_sequence_exactly_once() {
        let mut s = ReplaySession::new();
        assert!(s.offer(0));
        assert!(s.offer(1));
        assert!(!s.offer(1), "duplicate replay suppressed");
        assert!(!s.offer(0), "stale replay suppressed");
        assert!(s.offer(2));
        assert_eq!(s.delivered(), 3);
        assert_eq!(s.duplicates(), 2);
        assert_eq!(s.watermark(), Some(2));
    }

    #[test]
    fn conservation_holds_through_drain_and_redrain() {
        let mut ring: ReplayRing<()> = ReplayRing::new(4);
        let mut session = ReplaySession::new();
        for i in 0..10u64 {
            ring.push(SimTime::from_secs(i), ());
        }
        // First heal: drain and deliver.
        let first: Vec<u64> = ring.drain().map(|u| u.seq).collect();
        let mut delivered_now = 0u64;
        for seq in &first {
            if session.offer(*seq) {
                delivered_now += 1;
            }
        }
        assert_eq!(delivered_now, 4);
        // A buggy duplicate replay of the same batch delivers nothing.
        for seq in &first {
            assert!(!session.offer(*seq));
        }
        // pushed == delivered + expired + buffered, at every point.
        assert_eq!(
            ring.pushed(),
            session.delivered() + ring.expired() + ring.len() as u64
        );
        // More traffic after the heal keeps the ledger balanced.
        for i in 10..13u64 {
            ring.push(SimTime::from_secs(i), ());
        }
        for u in ring.drain() {
            session.offer(u.seq);
        }
        assert_eq!(session.delivered(), 7);
        assert_eq!(ring.pushed(), 13);
        assert_eq!(
            ring.pushed(),
            session.delivered() + ring.expired() + ring.len() as u64
        );
    }
}

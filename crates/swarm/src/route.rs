//! Route planning: A* shortest paths and boustrophedon coverage.
//!
//! Scenario A divides the field among the drones and derives routes within
//! each region using A*, "where each drone tries to minimize the total
//! distance traveled" (Sec. 2.1). We provide:
//!
//! * [`GridMap`] + [`astar`] — 4-connected grid shortest path with
//!   obstacle support (also reused by the obstacle-avoidance benchmark);
//! * [`coverage_lanes`] — the serpentine sweep a drone flies to photograph
//!   an entire region with a camera footprint of 6.7 m × 8.75 m;
//! * [`visit_order`] — nearest-neighbour + 2-opt tour over item waypoints,
//!   the practical "minimize total distance" heuristic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::geometry::{Point, Rect};

/// A 4-connected occupancy grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridMap {
    width: u32,
    height: u32,
    blocked: Vec<bool>,
}

/// A cell coordinate in a [`GridMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cell {
    /// Column.
    pub x: u32,
    /// Row.
    pub y: u32,
}

impl GridMap {
    /// Creates an empty (all-free) grid.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn new(width: u32, height: u32) -> GridMap {
        assert!(width > 0 && height > 0, "grid must be non-empty");
        GridMap {
            width,
            height,
            blocked: vec![false; (width * height) as usize],
        }
    }

    /// Grid width in cells.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height in cells.
    pub fn height(&self) -> u32 {
        self.height
    }

    fn idx(&self, c: Cell) -> usize {
        (c.y * self.width + c.x) as usize
    }

    /// Marks a cell as an obstacle.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of bounds.
    pub fn block(&mut self, c: Cell) {
        assert!(self.in_bounds(c), "cell out of bounds");
        let i = self.idx(c);
        self.blocked[i] = true;
    }

    /// Whether a cell is free (in bounds and unblocked).
    pub fn is_free(&self, c: Cell) -> bool {
        self.in_bounds(c) && !self.blocked[self.idx(c)]
    }

    fn in_bounds(&self, c: Cell) -> bool {
        c.x < self.width && c.y < self.height
    }

    /// The 4-neighbourhood of `c` that is free.
    pub fn neighbors(&self, c: Cell) -> Vec<Cell> {
        let mut out = Vec::with_capacity(4);
        if c.x > 0 {
            out.push(Cell { x: c.x - 1, y: c.y });
        }
        if c.x + 1 < self.width {
            out.push(Cell { x: c.x + 1, y: c.y });
        }
        if c.y > 0 {
            out.push(Cell { x: c.x, y: c.y - 1 });
        }
        if c.y + 1 < self.height {
            out.push(Cell { x: c.x, y: c.y + 1 });
        }
        out.retain(|&n| self.is_free(n));
        out
    }
}

fn manhattan(a: Cell, b: Cell) -> u32 {
    a.x.abs_diff(b.x) + a.y.abs_diff(b.y)
}

/// A* shortest path on a grid; returns the cell sequence including both
/// endpoints, or `None` if unreachable.
///
/// # Examples
///
/// ```rust
/// use hivemind_swarm::route::{astar, Cell, GridMap};
///
/// let mut map = GridMap::new(5, 5);
/// for y in 0..4 {
///     map.block(Cell { x: 2, y });
/// }
/// let path = astar(&map, Cell { x: 0, y: 0 }, Cell { x: 4, y: 0 }).unwrap();
/// assert_eq!(path.first(), Some(&Cell { x: 0, y: 0 }));
/// assert_eq!(path.last(), Some(&Cell { x: 4, y: 0 }));
/// assert_eq!(path.len(), 13, "must detour around the wall");
/// ```
pub fn astar(map: &GridMap, start: Cell, goal: Cell) -> Option<Vec<Cell>> {
    if !map.is_free(start) || !map.is_free(goal) {
        return None;
    }
    let n = (map.width() * map.height()) as usize;
    let mut g = vec![u32::MAX; n];
    let mut parent: Vec<Option<Cell>> = vec![None; n];
    let mut open: BinaryHeap<Reverse<(u32, u32, Cell)>> = BinaryHeap::new();
    g[map.idx(start)] = 0;
    open.push(Reverse((manhattan(start, goal), 0, start)));
    while let Some(Reverse((_, gc, cell))) = open.pop() {
        if cell == goal {
            let mut path = vec![goal];
            let mut cur = goal;
            while let Some(p) = parent[map.idx(cur)] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        if gc > g[map.idx(cell)] {
            continue; // stale heap entry
        }
        for nb in map.neighbors(cell) {
            let ng = gc + 1;
            let i = map.idx(nb);
            if ng < g[i] {
                g[i] = ng;
                parent[i] = Some(cell);
                open.push(Reverse((ng + manhattan(nb, goal), ng, nb)));
            }
        }
    }
    None
}

/// Serpentine (boustrophedon) sweep waypoints covering `region` with lanes
/// spaced `lane_width` apart, starting at the south-west corner.
///
/// The returned polyline alternates south→north / north→south passes. The
/// lane count rounds *up* so the footprint always covers the full width.
///
/// # Panics
///
/// Panics if `lane_width <= 0`.
pub fn coverage_lanes(region: &Rect, lane_width: f64) -> Vec<Point> {
    assert!(lane_width > 0.0, "lane width must be positive");
    let lanes = (region.width() / lane_width).ceil().max(1.0) as u32;
    let step = region.width() / lanes as f64;
    let mut points = Vec::with_capacity((lanes as usize + 1) * 2);
    for lane in 0..lanes {
        let x = region.x0 + step * (lane as f64 + 0.5);
        let (from, to) = if lane % 2 == 0 {
            (region.y0, region.y1)
        } else {
            (region.y1, region.y0)
        };
        points.push(Point::new(x, from));
        points.push(Point::new(x, to));
    }
    points
}

/// Total length of a polyline.
pub fn path_length(points: &[Point]) -> f64 {
    points.windows(2).map(|w| w[0].distance(w[1])).sum()
}

/// Orders waypoints to visit starting from `start`, using nearest-neighbour
/// construction followed by 2-opt improvement. Returns indices into
/// `targets`.
pub fn visit_order(start: Point, targets: &[Point]) -> Vec<usize> {
    if targets.is_empty() {
        return vec![];
    }
    // Nearest neighbour.
    let mut order: Vec<usize> = Vec::with_capacity(targets.len());
    let mut remaining: Vec<usize> = (0..targets.len()).collect();
    let mut cur = start;
    while !remaining.is_empty() {
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| {
                cur.distance(targets[a])
                    .total_cmp(&cur.distance(targets[b]))
            })
            .expect("remaining is non-empty");
        let next = remaining.swap_remove(pos);
        cur = targets[next];
        order.push(next);
    }
    // 2-opt until no improvement.
    let tour_len = |order: &[usize]| -> f64 {
        let mut len = start.distance(targets[order[0]]);
        len += order
            .windows(2)
            .map(|w| targets[w[0]].distance(targets[w[1]]))
            .sum::<f64>();
        len
    };
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..order.len().saturating_sub(1) {
            for j in i + 1..order.len() {
                let mut candidate = order.clone();
                candidate[i..=j].reverse();
                if tour_len(&candidate) + 1e-9 < tour_len(&order) {
                    order = candidate;
                    improved = true;
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn astar_straight_line() {
        let map = GridMap::new(10, 10);
        let path = astar(&map, Cell { x: 0, y: 0 }, Cell { x: 9, y: 0 }).unwrap();
        assert_eq!(path.len(), 10);
    }

    #[test]
    fn astar_finds_optimal_around_obstacle() {
        let mut map = GridMap::new(7, 7);
        for y in 0..6 {
            map.block(Cell { x: 3, y });
        }
        let path = astar(&map, Cell { x: 0, y: 0 }, Cell { x: 6, y: 0 }).unwrap();
        // Manhattan 6 + detour up to row 6 and back: 6 + 12 = 18 steps → 19 cells.
        assert_eq!(path.len(), 19);
        // Path cells must be free and connected.
        for w in path.windows(2) {
            assert_eq!(manhattan(w[0], w[1]), 1);
            assert!(map.is_free(w[1]));
        }
    }

    #[test]
    fn astar_unreachable_returns_none() {
        let mut map = GridMap::new(5, 5);
        for y in 0..5 {
            map.block(Cell { x: 2, y });
        }
        assert!(astar(&map, Cell { x: 0, y: 0 }, Cell { x: 4, y: 4 }).is_none());
    }

    #[test]
    fn astar_blocked_endpoint_returns_none() {
        let mut map = GridMap::new(3, 3);
        map.block(Cell { x: 2, y: 2 });
        assert!(astar(&map, Cell { x: 0, y: 0 }, Cell { x: 2, y: 2 }).is_none());
    }

    #[test]
    fn coverage_covers_width() {
        let region = Rect::new(0.0, 0.0, 30.0, 80.0);
        let pts = coverage_lanes(&region, 6.7);
        // ceil(30 / 6.7) = 5 lanes → 10 waypoints.
        assert_eq!(pts.len(), 10);
        // Lanes alternate direction.
        assert_eq!(pts[0].y, 0.0);
        assert_eq!(pts[1].y, 80.0);
        assert_eq!(pts[2].y, 80.0);
        // Every x within region.
        assert!(pts.iter().all(|p| p.x > 0.0 && p.x < 30.0));
    }

    #[test]
    fn coverage_length_scales_with_area() {
        let small = coverage_lanes(&Rect::new(0.0, 0.0, 10.0, 40.0), 6.7);
        let large = coverage_lanes(&Rect::new(0.0, 0.0, 40.0, 40.0), 6.7);
        assert!(path_length(&large) > path_length(&small) * 2.0);
    }

    #[test]
    fn visit_order_is_permutation_and_short() {
        let targets = vec![
            Point::new(10.0, 0.0),
            Point::new(0.0, 10.0),
            Point::new(10.0, 10.0),
            Point::new(5.0, 5.0),
        ];
        let order = visit_order(Point::new(0.0, 0.0), &targets);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        // 2-opt tour should beat the pathological identity tour for this
        // layout. Compute both lengths.
        let len = |ord: &[usize]| {
            let mut l = Point::new(0.0, 0.0).distance(targets[ord[0]]);
            l += ord
                .windows(2)
                .map(|w| targets[w[0]].distance(targets[w[1]]))
                .sum::<f64>();
            l
        };
        assert!(len(&order) <= len(&[0, 1, 2, 3]) + 1e-9);
    }

    #[test]
    fn visit_order_empty() {
        assert!(visit_order(Point::new(0.0, 0.0), &[]).is_empty());
    }

    #[test]
    fn path_length_sums_segments() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 4.0),
            Point::new(3.0, 8.0),
        ];
        assert!((path_length(&pts) - 9.0).abs() < 1e-12);
    }
}

//! Maze generation and the Wall Follower traversal algorithm.
//!
//! Benchmark S6 navigates a walled maze with the Wall Follower algorithm
//! (Sec. 2.1), and the robotic cars' second scenario traverses an unknown
//! maze (Sec. 5.5). We generate *perfect* mazes (spanning trees, hence
//! simply connected) with an iterative recursive-backtracker, on which the
//! right-hand rule is guaranteed to reach the exit.

use std::fmt;

use hivemind_sim::rng::RngForge;
use rand::seq::SliceRandom;

/// Why a maze operation could not proceed.
///
/// Mirrors the [`FailoverError`](crate::failover::FailoverError) pattern:
/// the panicking entry points stay for callers holding trusted inputs,
/// while `try_*` variants surface the same conditions as values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MazeError {
    /// A cell coordinate outside the grid.
    CellOutOfBounds {
        /// The offending cell.
        cell: (u32, u32),
        /// Grid width in cells.
        width: u32,
        /// Grid height in cells.
        height: u32,
    },
    /// Two cells that are not edge-adjacent, so no direction connects
    /// them.
    NonAdjacentMove {
        /// Move origin.
        from: (u32, u32),
        /// Move destination.
        to: (u32, u32),
    },
    /// A cell with all four walls closed — impossible in a perfect maze,
    /// so traversal cannot continue (indicates a corrupted grid).
    NoOpenPassage {
        /// The walled-in cell.
        cell: (u32, u32),
    },
}

impl fmt::Display for MazeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MazeError::CellOutOfBounds {
                cell,
                width,
                height,
            } => write!(
                f,
                "cell ({}, {}) out of bounds for a {width}x{height} maze",
                cell.0, cell.1
            ),
            MazeError::NonAdjacentMove { from, to } => write!(
                f,
                "no direction leads from ({}, {}) to non-adjacent ({}, {})",
                from.0, from.1, to.0, to.1
            ),
            MazeError::NoOpenPassage { cell } => write!(
                f,
                "cell ({}, {}) has no open passage (corrupted maze)",
                cell.0, cell.1
            ),
        }
    }
}

impl std::error::Error for MazeError {}

/// A compass direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// +y
    North,
    /// +x
    East,
    /// -y
    South,
    /// -x
    West,
}

impl Dir {
    /// All four directions, clockwise from north.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::East, Dir::South, Dir::West];

    /// Clockwise next direction (a right turn).
    pub fn right(self) -> Dir {
        match self {
            Dir::North => Dir::East,
            Dir::East => Dir::South,
            Dir::South => Dir::West,
            Dir::West => Dir::North,
        }
    }

    /// Counter-clockwise next direction (a left turn).
    pub fn left(self) -> Dir {
        self.right().right().right()
    }

    /// The opposite direction.
    pub fn opposite(self) -> Dir {
        self.right().right()
    }

    fn delta(self) -> (i64, i64) {
        match self {
            Dir::North => (0, 1),
            Dir::East => (1, 0),
            Dir::South => (0, -1),
            Dir::West => (-1, 0),
        }
    }

    /// The direction leading from `from` to the edge-adjacent cell `to`,
    /// or [`MazeError::NonAdjacentMove`] when the cells do not share an
    /// edge.
    pub fn between(from: (u32, u32), to: (u32, u32)) -> Result<Dir, MazeError> {
        let dx = to.0 as i64 - from.0 as i64;
        let dy = to.1 as i64 - from.1 as i64;
        match (dx, dy) {
            (1, 0) => Ok(Dir::East),
            (-1, 0) => Ok(Dir::West),
            (0, 1) => Ok(Dir::North),
            (0, -1) => Ok(Dir::South),
            _ => Err(MazeError::NonAdjacentMove { from, to }),
        }
    }
}

/// A perfect maze on a `width × height` cell grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Maze {
    width: u32,
    height: u32,
    /// `open[cell_index]` holds which of the four walls are open.
    open: Vec<[bool; 4]>,
}

fn dir_index(d: Dir) -> usize {
    match d {
        Dir::North => 0,
        Dir::East => 1,
        Dir::South => 2,
        Dir::West => 3,
    }
}

impl Maze {
    /// Generates a perfect maze with the iterative recursive backtracker.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn generate(width: u32, height: u32, forge: RngForge) -> Maze {
        assert!(width > 0 && height > 0, "maze must be non-empty");
        let mut rng = forge.stream("maze");
        let n = (width * height) as usize;
        let mut maze = Maze {
            width,
            height,
            open: vec![[false; 4]; n],
        };
        let mut visited = vec![false; n];
        let mut stack = vec![(0u32, 0u32)];
        visited[0] = true;
        while let Some(&(x, y)) = stack.last() {
            let mut dirs = Dir::ALL;
            dirs.shuffle(&mut rng);
            let mut advanced = false;
            for d in dirs {
                let (dx, dy) = d.delta();
                let nx = x as i64 + dx;
                let ny = y as i64 + dy;
                if nx < 0 || ny < 0 || nx >= width as i64 || ny >= height as i64 {
                    continue;
                }
                let ni = (ny as u32 * width + nx as u32) as usize;
                if visited[ni] {
                    continue;
                }
                let i = (y * width + x) as usize;
                maze.open[i][dir_index(d)] = true;
                maze.open[ni][dir_index(d.opposite())] = true;
                visited[ni] = true;
                stack.push((nx as u32, ny as u32));
                advanced = true;
                break;
            }
            if !advanced {
                stack.pop();
            }
        }
        maze
    }

    /// Maze width in cells.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Maze height in cells.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Whether the wall from `(x, y)` toward `d` is open.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of bounds; use [`Maze::try_is_open`]
    /// when coordinates come from untrusted sources.
    pub fn is_open(&self, x: u32, y: u32, d: Dir) -> bool {
        match self.try_is_open(x, y, d) {
            Ok(open) => open,
            Err(e) => panic!("{e}"),
        }
    }

    /// Whether the wall from `(x, y)` toward `d` is open, rejecting
    /// out-of-bounds cells instead of panicking.
    pub fn try_is_open(&self, x: u32, y: u32, d: Dir) -> Result<bool, MazeError> {
        if x >= self.width || y >= self.height {
            return Err(MazeError::CellOutOfBounds {
                cell: (x, y),
                width: self.width,
                height: self.height,
            });
        }
        Ok(self.open[(y * self.width + x) as usize][dir_index(d)])
    }

    /// Number of open wall pairs — a perfect maze on `n` cells has exactly
    /// `n - 1` passages.
    pub fn passage_count(&self) -> usize {
        self.open
            .iter()
            .map(|w| w.iter().filter(|&&o| o).count())
            .sum::<usize>()
            / 2
    }
}

/// Result of a wall-follower traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Traversal {
    /// Visited cells in order, starting at the entrance.
    pub path: Vec<(u32, u32)>,
    /// Whether the exit was reached.
    pub reached: bool,
}

impl Traversal {
    /// Number of moves taken.
    pub fn steps(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// Traverses the maze from `(0, 0)` to `(width-1, height-1)` using the
/// right-hand rule: keep turning right when possible, else straight, else
/// left, else back.
///
/// # Examples
///
/// ```rust
/// use hivemind_swarm::maze::{wall_follower, Maze};
/// use hivemind_sim::rng::RngForge;
///
/// let maze = Maze::generate(12, 12, RngForge::new(9));
/// let t = wall_follower(&maze);
/// assert!(t.reached);
/// assert_eq!(*t.path.last().unwrap(), (11, 11));
/// ```
pub fn wall_follower(maze: &Maze) -> Traversal {
    match try_wall_follower(maze) {
        Ok(t) => t,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`wall_follower`]: returns [`MazeError::NoOpenPassage`]
/// instead of panicking when a cell has all four walls closed (which a
/// generated perfect maze never has, but a hand-built or corrupted grid
/// can).
pub fn try_wall_follower(maze: &Maze) -> Result<Traversal, MazeError> {
    let goal = (maze.width() - 1, maze.height() - 1);
    let mut pos = (0u32, 0u32);
    let mut facing = Dir::North;
    let mut path = vec![pos];
    // A wall follower on a perfect maze traverses each passage at most
    // twice per direction; 4 × cells is a safe bound before declaring
    // failure (which would indicate a bug, not a property of the maze).
    let budget = 8 * (maze.width() * maze.height()) as usize + 8;
    for _ in 0..budget {
        if pos == goal {
            return Ok(Traversal {
                path,
                reached: true,
            });
        }
        // Right-hand rule.
        let choices = [facing.right(), facing, facing.left(), facing.opposite()];
        let d = choices
            .iter()
            .find(|&&d| maze.is_open(pos.0, pos.1, d))
            .copied()
            .ok_or(MazeError::NoOpenPassage { cell: pos })?;
        let (dx, dy) = d.delta();
        pos = ((pos.0 as i64 + dx) as u32, (pos.1 as i64 + dy) as u32);
        facing = d;
        path.push(pos);
    }
    Ok(Traversal {
        path,
        reached: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maze_is_perfect() {
        for seed in 0..5 {
            let m = Maze::generate(15, 10, RngForge::new(seed));
            assert_eq!(m.passage_count(), 15 * 10 - 1, "seed {seed}");
        }
    }

    #[test]
    fn walls_are_symmetric() {
        let m = Maze::generate(8, 8, RngForge::new(3));
        for x in 0..7 {
            for y in 0..7 {
                assert_eq!(m.is_open(x, y, Dir::East), m.is_open(x + 1, y, Dir::West));
                assert_eq!(m.is_open(x, y, Dir::North), m.is_open(x, y + 1, Dir::South));
            }
        }
    }

    #[test]
    fn border_walls_stay_closed() {
        let m = Maze::generate(6, 6, RngForge::new(4));
        for x in 0..6 {
            assert!(!m.is_open(x, 0, Dir::South));
            assert!(!m.is_open(x, 5, Dir::North));
        }
        for y in 0..6 {
            assert!(!m.is_open(0, y, Dir::West));
            assert!(!m.is_open(5, y, Dir::East));
        }
    }

    #[test]
    fn wall_follower_always_solves_perfect_mazes() {
        for seed in 0..20 {
            let m = Maze::generate(12, 9, RngForge::new(seed));
            let t = wall_follower(&m);
            assert!(t.reached, "seed {seed} failed");
            assert_eq!(*t.path.last().unwrap(), (11, 8));
            // Every move crosses an open wall between adjacent cells.
            for w in t.path.windows(2) {
                let (a, b) = (w[0], w[1]);
                let d = Dir::between(a, b).expect("traversal only makes adjacent moves");
                assert!(m.is_open(a.0, a.1, d));
            }
        }
    }

    #[test]
    fn generation_deterministic() {
        let a = Maze::generate(10, 10, RngForge::new(7));
        let b = Maze::generate(10, 10, RngForge::new(7));
        assert_eq!(a, b);
        let c = Maze::generate(10, 10, RngForge::new(8));
        assert_ne!(a, c);
    }

    #[test]
    fn trivial_maze() {
        let m = Maze::generate(1, 1, RngForge::new(1));
        let t = wall_follower(&m);
        assert!(t.reached);
        assert_eq!(t.steps(), 0);
    }

    #[test]
    fn dir_between_classifies_moves() {
        assert_eq!(Dir::between((1, 1), (2, 1)), Ok(Dir::East));
        assert_eq!(Dir::between((1, 1), (0, 1)), Ok(Dir::West));
        assert_eq!(Dir::between((1, 1), (1, 2)), Ok(Dir::North));
        assert_eq!(Dir::between((1, 1), (1, 0)), Ok(Dir::South));
        assert_eq!(
            Dir::between((1, 1), (3, 1)),
            Err(MazeError::NonAdjacentMove {
                from: (1, 1),
                to: (3, 1)
            })
        );
        assert_eq!(
            Dir::between((0, 0), (1, 1)),
            Err(MazeError::NonAdjacentMove {
                from: (0, 0),
                to: (1, 1)
            })
        );
    }

    #[test]
    fn try_is_open_rejects_out_of_bounds() {
        let m = Maze::generate(4, 3, RngForge::new(1));
        assert!(m.try_is_open(3, 2, Dir::North).is_ok());
        assert_eq!(
            m.try_is_open(4, 0, Dir::North),
            Err(MazeError::CellOutOfBounds {
                cell: (4, 0),
                width: 4,
                height: 3
            })
        );
        assert_eq!(
            m.try_is_open(0, 3, Dir::East),
            Err(MazeError::CellOutOfBounds {
                cell: (0, 3),
                width: 4,
                height: 3
            })
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn is_open_panics_out_of_bounds() {
        let m = Maze::generate(2, 2, RngForge::new(1));
        let _ = m.is_open(2, 0, Dir::North);
    }

    #[test]
    fn try_wall_follower_surfaces_corrupted_grids() {
        // A hand-built grid whose entrance has all four walls closed.
        let m = Maze {
            width: 2,
            height: 1,
            open: vec![[false; 4]; 2],
        };
        assert_eq!(
            try_wall_follower(&m),
            Err(MazeError::NoOpenPassage { cell: (0, 0) })
        );
    }

    #[test]
    fn maze_error_messages_name_the_cell() {
        let e = MazeError::NoOpenPassage { cell: (3, 7) };
        assert!(e.to_string().contains("(3, 7)"));
        let e = MazeError::NonAdjacentMove {
            from: (0, 0),
            to: (5, 5),
        };
        assert!(e.to_string().contains("(5, 5)"));
    }

    #[test]
    fn dir_algebra() {
        assert_eq!(Dir::North.right(), Dir::East);
        assert_eq!(Dir::North.left(), Dir::West);
        assert_eq!(Dir::East.opposite(), Dir::West);
        for d in Dir::ALL {
            assert_eq!(d.right().left(), d);
            assert_eq!(d.opposite().opposite(), d);
        }
    }
}

//! Maze generation and the Wall Follower traversal algorithm.
//!
//! Benchmark S6 navigates a walled maze with the Wall Follower algorithm
//! (Sec. 2.1), and the robotic cars' second scenario traverses an unknown
//! maze (Sec. 5.5). We generate *perfect* mazes (spanning trees, hence
//! simply connected) with an iterative recursive-backtracker, on which the
//! right-hand rule is guaranteed to reach the exit.

use hivemind_sim::rng::RngForge;
use rand::seq::SliceRandom;

/// A compass direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// +y
    North,
    /// +x
    East,
    /// -y
    South,
    /// -x
    West,
}

impl Dir {
    /// All four directions, clockwise from north.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::East, Dir::South, Dir::West];

    /// Clockwise next direction (a right turn).
    pub fn right(self) -> Dir {
        match self {
            Dir::North => Dir::East,
            Dir::East => Dir::South,
            Dir::South => Dir::West,
            Dir::West => Dir::North,
        }
    }

    /// Counter-clockwise next direction (a left turn).
    pub fn left(self) -> Dir {
        self.right().right().right()
    }

    /// The opposite direction.
    pub fn opposite(self) -> Dir {
        self.right().right()
    }

    fn delta(self) -> (i64, i64) {
        match self {
            Dir::North => (0, 1),
            Dir::East => (1, 0),
            Dir::South => (0, -1),
            Dir::West => (-1, 0),
        }
    }
}

/// A perfect maze on a `width × height` cell grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Maze {
    width: u32,
    height: u32,
    /// `open[cell_index]` holds which of the four walls are open.
    open: Vec<[bool; 4]>,
}

fn dir_index(d: Dir) -> usize {
    match d {
        Dir::North => 0,
        Dir::East => 1,
        Dir::South => 2,
        Dir::West => 3,
    }
}

impl Maze {
    /// Generates a perfect maze with the iterative recursive backtracker.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn generate(width: u32, height: u32, forge: RngForge) -> Maze {
        assert!(width > 0 && height > 0, "maze must be non-empty");
        let mut rng = forge.stream("maze");
        let n = (width * height) as usize;
        let mut maze = Maze {
            width,
            height,
            open: vec![[false; 4]; n],
        };
        let mut visited = vec![false; n];
        let mut stack = vec![(0u32, 0u32)];
        visited[0] = true;
        while let Some(&(x, y)) = stack.last() {
            let mut dirs = Dir::ALL;
            dirs.shuffle(&mut rng);
            let mut advanced = false;
            for d in dirs {
                let (dx, dy) = d.delta();
                let nx = x as i64 + dx;
                let ny = y as i64 + dy;
                if nx < 0 || ny < 0 || nx >= width as i64 || ny >= height as i64 {
                    continue;
                }
                let ni = (ny as u32 * width + nx as u32) as usize;
                if visited[ni] {
                    continue;
                }
                let i = (y * width + x) as usize;
                maze.open[i][dir_index(d)] = true;
                maze.open[ni][dir_index(d.opposite())] = true;
                visited[ni] = true;
                stack.push((nx as u32, ny as u32));
                advanced = true;
                break;
            }
            if !advanced {
                stack.pop();
            }
        }
        maze
    }

    /// Maze width in cells.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Maze height in cells.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Whether the wall from `(x, y)` toward `d` is open.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of bounds.
    pub fn is_open(&self, x: u32, y: u32, d: Dir) -> bool {
        assert!(x < self.width && y < self.height, "cell out of bounds");
        self.open[(y * self.width + x) as usize][dir_index(d)]
    }

    /// Number of open wall pairs — a perfect maze on `n` cells has exactly
    /// `n - 1` passages.
    pub fn passage_count(&self) -> usize {
        self.open
            .iter()
            .map(|w| w.iter().filter(|&&o| o).count())
            .sum::<usize>()
            / 2
    }
}

/// Result of a wall-follower traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Traversal {
    /// Visited cells in order, starting at the entrance.
    pub path: Vec<(u32, u32)>,
    /// Whether the exit was reached.
    pub reached: bool,
}

impl Traversal {
    /// Number of moves taken.
    pub fn steps(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// Traverses the maze from `(0, 0)` to `(width-1, height-1)` using the
/// right-hand rule: keep turning right when possible, else straight, else
/// left, else back.
///
/// # Examples
///
/// ```rust
/// use hivemind_swarm::maze::{wall_follower, Maze};
/// use hivemind_sim::rng::RngForge;
///
/// let maze = Maze::generate(12, 12, RngForge::new(9));
/// let t = wall_follower(&maze);
/// assert!(t.reached);
/// assert_eq!(*t.path.last().unwrap(), (11, 11));
/// ```
pub fn wall_follower(maze: &Maze) -> Traversal {
    let goal = (maze.width() - 1, maze.height() - 1);
    let mut pos = (0u32, 0u32);
    let mut facing = Dir::North;
    let mut path = vec![pos];
    // A wall follower on a perfect maze traverses each passage at most
    // twice per direction; 4 × cells is a safe bound before declaring
    // failure (which would indicate a bug, not a property of the maze).
    let budget = 8 * (maze.width() * maze.height()) as usize + 8;
    for _ in 0..budget {
        if pos == goal {
            return Traversal {
                path,
                reached: true,
            };
        }
        // Right-hand rule.
        let choices = [facing.right(), facing, facing.left(), facing.opposite()];
        let d = *choices
            .iter()
            .find(|&&d| maze.is_open(pos.0, pos.1, d))
            .expect("perfect maze cells always have an open passage");
        let (dx, dy) = d.delta();
        pos = ((pos.0 as i64 + dx) as u32, (pos.1 as i64 + dy) as u32);
        facing = d;
        path.push(pos);
    }
    Traversal {
        path,
        reached: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maze_is_perfect() {
        for seed in 0..5 {
            let m = Maze::generate(15, 10, RngForge::new(seed));
            assert_eq!(m.passage_count(), 15 * 10 - 1, "seed {seed}");
        }
    }

    #[test]
    fn walls_are_symmetric() {
        let m = Maze::generate(8, 8, RngForge::new(3));
        for x in 0..7 {
            for y in 0..7 {
                assert_eq!(m.is_open(x, y, Dir::East), m.is_open(x + 1, y, Dir::West));
                assert_eq!(m.is_open(x, y, Dir::North), m.is_open(x, y + 1, Dir::South));
            }
        }
    }

    #[test]
    fn border_walls_stay_closed() {
        let m = Maze::generate(6, 6, RngForge::new(4));
        for x in 0..6 {
            assert!(!m.is_open(x, 0, Dir::South));
            assert!(!m.is_open(x, 5, Dir::North));
        }
        for y in 0..6 {
            assert!(!m.is_open(0, y, Dir::West));
            assert!(!m.is_open(5, y, Dir::East));
        }
    }

    #[test]
    fn wall_follower_always_solves_perfect_mazes() {
        for seed in 0..20 {
            let m = Maze::generate(12, 9, RngForge::new(seed));
            let t = wall_follower(&m);
            assert!(t.reached, "seed {seed} failed");
            assert_eq!(*t.path.last().unwrap(), (11, 8));
            // Every move crosses an open wall.
            for w in t.path.windows(2) {
                let (a, b) = (w[0], w[1]);
                let d = match (b.0 as i64 - a.0 as i64, b.1 as i64 - a.1 as i64) {
                    (1, 0) => Dir::East,
                    (-1, 0) => Dir::West,
                    (0, 1) => Dir::North,
                    (0, -1) => Dir::South,
                    other => panic!("non-adjacent move {other:?}"),
                };
                assert!(m.is_open(a.0, a.1, d));
            }
        }
    }

    #[test]
    fn generation_deterministic() {
        let a = Maze::generate(10, 10, RngForge::new(7));
        let b = Maze::generate(10, 10, RngForge::new(7));
        assert_eq!(a, b);
        let c = Maze::generate(10, 10, RngForge::new(8));
        assert_ne!(a, c);
    }

    #[test]
    fn trivial_maze() {
        let m = Maze::generate(1, 1, RngForge::new(1));
        let t = wall_follower(&m);
        assert!(t.reached);
        assert_eq!(t.steps(), 0);
    }

    #[test]
    fn dir_algebra() {
        assert_eq!(Dir::North.right(), Dir::East);
        assert_eq!(Dir::North.left(), Dir::West);
        assert_eq!(Dir::East.opposite(), Dir::West);
        for d in Dir::ALL {
            assert_eq!(d.right().left(), d);
            assert_eq!(d.opposite().opposite(), d);
        }
    }
}

//! Energy accounting for edge devices.
//!
//! The AR. Drone 2.0 carries a ~11 Wh pack (~40 kJ) and hovers at
//! 80–100 W, giving the familiar 10–15 minute flight time; "most power
//! consumption is due to drone motion, communication can also exhaust the
//! device's battery" (Sec. 5.2). On-board compute adds single-digit watts
//! — small per second, but decisive when slow on-board execution stretches
//! the mission. That interaction (distributed execution drains batteries
//! until Scenario B cannot finish, Sec. 2.3) is exactly what this model
//! produces.

use hivemind_sim::time::SimDuration;

/// Power/energy coefficients for one device class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryParams {
    /// Usable pack capacity, joules.
    pub capacity_j: f64,
    /// Draw while moving/hovering, watts.
    pub motion_w: f64,
    /// Baseline electronics draw while idle/grounded, watts.
    pub idle_w: f64,
    /// Extra draw while the on-board CPU runs a task, watts.
    pub compute_w: f64,
    /// Radio energy per transmitted or received byte, joules.
    pub radio_j_per_byte: f64,
}

impl BatteryParams {
    /// Parrot AR. Drone 2.0 class device.
    pub fn drone() -> BatteryParams {
        BatteryParams {
            capacity_j: 40_000.0,
            motion_w: 90.0,
            idle_w: 4.0,
            compute_w: 3.5,
            radio_j_per_byte: 4.0e-7, // ≈ 0.4 J per MB over 802.11
        }
    }

    /// Raspberry-Pi rover car: bigger pack relative to draw — the cars
    /// "are less power-constrained than the drones" (Sec. 5.5).
    pub fn car() -> BatteryParams {
        BatteryParams {
            capacity_j: 100_000.0,
            motion_w: 14.0,
            idle_w: 2.5,
            compute_w: 4.5,
            radio_j_per_byte: 4.0e-7,
        }
    }
}

/// A device battery with activity-based accounting.
///
/// # Examples
///
/// ```rust
/// use hivemind_swarm::battery::{Battery, BatteryParams};
/// use hivemind_sim::time::SimDuration;
///
/// let mut b = Battery::new(BatteryParams::drone());
/// b.draw_motion(SimDuration::from_secs(60));
/// // One minute of flight at 90 W = 5.4 kJ of the 40 kJ pack = 13.5 %.
/// assert!((b.consumed_fraction() - 0.135).abs() < 1e-6);
/// assert!(!b.is_depleted());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    params: BatteryParams,
    consumed_j: f64,
    motion_j: f64,
    compute_j: f64,
    radio_j: f64,
    idle_j: f64,
}

impl Battery {
    /// A fresh, full battery.
    pub fn new(params: BatteryParams) -> Battery {
        assert!(params.capacity_j > 0.0, "capacity must be positive");
        Battery {
            params,
            consumed_j: 0.0,
            motion_j: 0.0,
            compute_j: 0.0,
            radio_j: 0.0,
            idle_j: 0.0,
        }
    }

    /// The coefficient set.
    pub fn params(&self) -> &BatteryParams {
        &self.params
    }

    /// Charges flight/driving time.
    pub fn draw_motion(&mut self, d: SimDuration) {
        let j = self.params.motion_w * d.as_secs_f64();
        self.motion_j += j;
        self.consumed_j += j;
    }

    /// Charges idle (grounded/parked, electronics on) time.
    pub fn draw_idle(&mut self, d: SimDuration) {
        let j = self.params.idle_w * d.as_secs_f64();
        self.idle_j += j;
        self.consumed_j += j;
    }

    /// Charges on-board CPU time.
    pub fn draw_compute(&mut self, d: SimDuration) {
        let j = self.params.compute_w * d.as_secs_f64();
        self.compute_j += j;
        self.consumed_j += j;
    }

    /// Charges radio transfer of `bytes` (either direction).
    pub fn draw_radio(&mut self, bytes: u64) {
        let j = self.params.radio_j_per_byte * bytes as f64;
        self.radio_j += j;
        self.consumed_j += j;
    }

    /// Total energy consumed, joules.
    pub fn consumed_j(&self) -> f64 {
        self.consumed_j
    }

    /// Fraction of capacity consumed (may exceed 1.0 to signal that the
    /// mission over-ran the pack; see [`Battery::is_depleted`]).
    pub fn consumed_fraction(&self) -> f64 {
        self.consumed_j / self.params.capacity_j
    }

    /// Consumed battery as the paper's percentage metric, capped at 100.
    pub fn consumed_percent(&self) -> f64 {
        (self.consumed_fraction() * 100.0).min(100.0)
    }

    /// Whether the pack is exhausted.
    pub fn is_depleted(&self) -> bool {
        self.consumed_j >= self.params.capacity_j
    }

    /// Energy split `(motion, compute, radio, idle)` in joules.
    pub fn energy_split(&self) -> (f64, f64, f64, f64) {
        (self.motion_j, self.compute_j, self.radio_j, self.idle_j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motion_dominates_typical_missions() {
        let mut b = Battery::new(BatteryParams::drone());
        // A 300 s mission: flying throughout, 60 s of on-board compute,
        // 100 MB of radio traffic.
        b.draw_motion(SimDuration::from_secs(300));
        b.draw_compute(SimDuration::from_secs(60));
        b.draw_radio(100_000_000);
        let (motion, compute, radio, _) = b.energy_split();
        assert!(motion > 10.0 * compute);
        assert!(motion > 100.0 * radio);
    }

    #[test]
    fn drone_flight_time_matches_reality() {
        // At hover power the modeled pack lasts 7–8 minutes of continuous
        // flight, consistent with a loaded AR Drone 2.0.
        let p = BatteryParams::drone();
        let flight_secs = p.capacity_j / p.motion_w;
        assert!((400.0..700.0).contains(&flight_secs), "{flight_secs}");
    }

    #[test]
    fn depletion_flag() {
        let mut b = Battery::new(BatteryParams::drone());
        b.draw_motion(SimDuration::from_secs(10_000));
        assert!(b.is_depleted());
        assert!(b.consumed_fraction() > 1.0);
        assert_eq!(b.consumed_percent(), 100.0);
    }

    #[test]
    fn car_is_less_power_constrained() {
        let drone = BatteryParams::drone();
        let car = BatteryParams::car();
        let drone_endurance = drone.capacity_j / drone.motion_w;
        let car_endurance = car.capacity_j / car.motion_w;
        assert!(car_endurance > 5.0 * drone_endurance);
    }

    #[test]
    fn radio_energy_is_linear() {
        let mut b = Battery::new(BatteryParams::drone());
        b.draw_radio(1_000_000);
        let one = b.consumed_j();
        b.draw_radio(1_000_000);
        assert!((b.consumed_j() - 2.0 * one).abs() < 1e-12);
    }

    #[test]
    fn split_sums_to_total() {
        let mut b = Battery::new(BatteryParams::car());
        b.draw_motion(SimDuration::from_secs(10));
        b.draw_idle(SimDuration::from_secs(5));
        b.draw_compute(SimDuration::from_secs(3));
        b.draw_radio(1_000);
        let (m, c, r, i) = b.energy_split();
        assert!((m + c + r + i - b.consumed_j()).abs() < 1e-9);
    }
}

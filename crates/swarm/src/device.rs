//! Edge device profiles and kinematics.
//!
//! A device couples a motion model (speed), a sensing model (camera frame
//! rate, bytes per frame, ground footprint), a compute model (how much
//! slower than a server core it executes the benchmark kernels), and a
//! battery. The drone profile matches Sec. 2.1: 4 m/s, 8 fps, 2 MB
//! frames, 6.7 m × 8.75 m footprint, 1 GHz Cortex-A8 with 1 core; the
//! rover profile matches Sec. 5.5 (slower vehicle, Raspberry Pi compute,
//! much larger battery margin).

use hivemind_sim::time::SimDuration;

use crate::battery::{Battery, BatteryParams};
use crate::geometry::Point;

/// A contiguous block of per-device batteries for one shard's device
/// range.
///
/// The engine's shard inner loop touches battery state on every capture,
/// completion, and radio transfer; keeping the cells in one dense array
/// indexed by `device - first_dev` (the [`ShardMap`] block offset) turns
/// that access into a cache-line stream instead of a pointer chase
/// through per-device structs. Cells are plain [`Battery`] values —
/// the block is the struct-of-arrays layout, not a new semantics.
///
/// [`ShardMap`]: hivemind_sim::shard::ShardMap
#[derive(Debug, Clone, PartialEq)]
pub struct BatteryBlock {
    cells: Vec<Battery>,
}

impl BatteryBlock {
    /// A block of `n` fresh, full batteries sharing one parameter set
    /// (one device class per swarm, as in the paper's fleets).
    pub fn new(params: BatteryParams, n: usize) -> BatteryBlock {
        BatteryBlock {
            cells: vec![Battery::new(params); n],
        }
    }

    /// Number of cells in the block.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The battery at block offset `i` (`device - first_dev`).
    #[inline]
    pub fn cell(&self, i: usize) -> &Battery {
        &self.cells[i]
    }

    /// Mutable access to the battery at block offset `i`.
    #[inline]
    pub fn cell_mut(&mut self, i: usize) -> &mut Battery {
        &mut self.cells[i]
    }

    /// Iterates the cells in device order.
    pub fn iter(&self) -> impl Iterator<Item = &Battery> {
        self.cells.iter()
    }

    /// Total energy consumed across the block, joules.
    pub fn consumed_j_total(&self) -> f64 {
        self.cells.iter().map(Battery::consumed_j).sum()
    }
}

/// Device class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Quadcopter (Parrot AR. Drone 2.0 class).
    Drone,
    /// Terrestrial rover (Raspberry Pi robot car).
    RoverCar,
}

/// Camera/sensing profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// Frames captured per second.
    pub fps: f64,
    /// Bytes per frame at the configured resolution.
    pub bytes_per_frame: u64,
    /// Ground footprint width (across-track), meters.
    pub footprint_w: f64,
    /// Ground footprint height (along-track), meters.
    pub footprint_h: f64,
}

impl Camera {
    /// The default drone camera: 8 fps, 2 MB frames, 6.7 m × 8.75 m.
    pub fn drone_default() -> Camera {
        Camera {
            fps: 8.0,
            bytes_per_frame: 2_000_000,
            footprint_w: 6.7,
            footprint_h: 8.75,
        }
    }

    /// Data rate produced, bytes/second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.fps * self.bytes_per_frame as f64
    }

    /// Frames produced over `d`.
    pub fn frames_in(&self, d: SimDuration) -> u64 {
        (self.fps * d.as_secs_f64()).floor() as u64
    }
}

/// Static capability profile of a device class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Class.
    pub kind: DeviceKind,
    /// Cruise speed, m/s.
    pub speed: f64,
    /// Camera profile.
    pub camera: Camera,
    /// Execution slow-down of this device relative to one cloud core for
    /// compute-heavy kernels (the A8 is ~an order of magnitude slower than
    /// a Xeon core on vision workloads).
    pub compute_slowdown: f64,
    /// On-board CPU cores available for application tasks.
    pub cores: u32,
    /// Battery coefficients.
    pub battery: BatteryParams,
}

impl DeviceProfile {
    /// The paper's drone.
    pub fn drone() -> DeviceProfile {
        DeviceProfile {
            kind: DeviceKind::Drone,
            speed: 4.0,
            camera: Camera::drone_default(),
            compute_slowdown: 10.0,
            cores: 1,
            battery: BatteryParams::drone(),
        }
    }

    /// The paper's robotic car.
    pub fn car() -> DeviceProfile {
        DeviceProfile {
            kind: DeviceKind::RoverCar,
            speed: 1.0,
            camera: Camera {
                fps: 8.0,
                bytes_per_frame: 2_000_000,
                footprint_w: 3.0,
                footprint_h: 3.0,
            },
            compute_slowdown: 4.0,
            cores: 4,
            battery: BatteryParams::car(),
        }
    }

    /// Time to travel `meters` at cruise speed.
    pub fn travel_time(&self, meters: f64) -> SimDuration {
        SimDuration::from_secs_f64(meters / self.speed)
    }
}

/// One live device instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Swarm-wide id (also its network `Node::Device` index).
    pub id: u32,
    /// Capability profile.
    pub profile: DeviceProfile,
    /// Current position.
    pub pos: Point,
    /// Battery state.
    pub battery: Battery,
    /// Whether the device has failed (crash/kill switch).
    pub failed: bool,
}

impl Device {
    /// Creates a device at `pos` with a full battery.
    pub fn new(id: u32, profile: DeviceProfile, pos: Point) -> Device {
        Device {
            id,
            profile,
            pos,
            battery: Battery::new(profile.battery),
            failed: false,
        }
    }

    /// Moves to `dest`, charging motion energy; returns travel time.
    pub fn travel_to(&mut self, dest: Point) -> SimDuration {
        let d = self.pos.distance(dest);
        let t = self.profile.travel_time(d);
        self.battery.draw_motion(t);
        self.pos = dest;
        t
    }

    /// Flies/drives for `d` without tracking the exact endpoint (used for
    /// coverage sweeps where only the elapsed time matters).
    pub fn travel_for(&mut self, d: SimDuration) {
        self.battery.draw_motion(d);
    }

    /// Executes a task on-board: the cloud-core duration `cloud_exec`
    /// stretched by the device's compute slow-down. Charges compute
    /// energy and returns the on-board duration.
    pub fn execute(&mut self, cloud_exec: SimDuration) -> SimDuration {
        let local = cloud_exec.mul_f64(self.profile.compute_slowdown);
        self.battery.draw_compute(local);
        local
    }

    /// Transfers `bytes` over the radio (either direction).
    pub fn radio(&mut self, bytes: u64) {
        self.battery.draw_radio(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drone_profile_matches_paper_constants() {
        let d = DeviceProfile::drone();
        assert_eq!(d.speed, 4.0);
        assert_eq!(d.camera.fps, 8.0);
        assert_eq!(d.camera.bytes_per_frame, 2_000_000);
        assert!((d.camera.bytes_per_sec() - 16e6).abs() < 1e-6);
        assert!((d.camera.footprint_w - 6.7).abs() < 1e-9);
    }

    #[test]
    fn travel_time_is_distance_over_speed() {
        let d = DeviceProfile::drone();
        assert_eq!(d.travel_time(40.0), SimDuration::from_secs(10));
    }

    #[test]
    fn travel_updates_position_and_battery() {
        let mut dev = Device::new(0, DeviceProfile::drone(), Point::new(0.0, 0.0));
        let t = dev.travel_to(Point::new(0.0, 40.0));
        assert_eq!(t, SimDuration::from_secs(10));
        assert_eq!(dev.pos, Point::new(0.0, 40.0));
        assert!((dev.battery.consumed_j() - 900.0).abs() < 1e-6);
    }

    #[test]
    fn on_board_execution_is_slower_and_costs_energy() {
        let mut dev = Device::new(0, DeviceProfile::drone(), Point::new(0.0, 0.0));
        let local = dev.execute(SimDuration::from_millis(100));
        assert_eq!(local, SimDuration::from_secs(1));
        assert!(dev.battery.consumed_j() > 0.0);
    }

    #[test]
    fn car_travels_slower_but_computes_faster() {
        let drone = DeviceProfile::drone();
        let car = DeviceProfile::car();
        assert!(car.speed < drone.speed);
        assert!(car.compute_slowdown < drone.compute_slowdown);
        assert!(car.cores > drone.cores);
    }

    #[test]
    fn frames_in_interval() {
        let c = Camera::drone_default();
        assert_eq!(c.frames_in(SimDuration::from_secs(10)), 80);
        assert_eq!(c.frames_in(SimDuration::from_millis(100)), 0);
    }

    #[test]
    fn battery_block_cells_are_independent() {
        let mut block = BatteryBlock::new(BatteryParams::drone(), 4);
        assert_eq!(block.len(), 4);
        assert!(!block.is_empty());
        block.cell_mut(1).draw_motion(SimDuration::from_secs(60));
        block.cell_mut(3).draw_radio(1_000_000);
        assert_eq!(block.cell(0).consumed_j(), 0.0);
        assert!(block.cell(1).consumed_j() > 0.0);
        assert_eq!(block.cell(2).consumed_j(), 0.0);
        let total: f64 = block.iter().map(Battery::consumed_j).sum();
        assert!((total - block.consumed_j_total()).abs() < 1e-12);
        assert_eq!(
            block.consumed_j_total(),
            block.cell(1).consumed_j() + block.cell(3).consumed_j()
        );
    }
}

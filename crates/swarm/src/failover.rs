//! Failure detection and load repartitioning.
//!
//! Every device heartbeats the controller once per second; missing
//! heartbeats for more than 3 s marks it failed (Sec. 4.6). The failed
//! device's remaining area is then "repartitioned equally among its
//! neighboring drones assuming they have sufficient battery" (Fig. 10).

use std::fmt;

use hivemind_sim::time::{SimDuration, SimTime};

use crate::geometry::Rect;

/// Why a failover operation could not proceed.
///
/// Injected fault storms can drive the tracker and repartitioner into
/// states that used to abort the run (a heartbeat from an unknown id, a
/// swarm with no survivors); the `try_*` variants surface those as values
/// so the caller can degrade gracefully instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailoverError {
    /// A device id outside the tracked fleet.
    DeviceOutOfRange {
        /// The offending id.
        device: u32,
        /// Fleet size.
        fleet: u32,
    },
    /// `regions` and `alive` disagree on the fleet size.
    LengthMismatch {
        /// `regions.len()`.
        regions: usize,
        /// `alive.len()`.
        alive: usize,
    },
    /// Every device is dead; there is nobody to absorb the area.
    NoSurvivors,
    /// A tracker or controller over zero devices.
    EmptyFleet,
}

impl fmt::Display for FailoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailoverError::DeviceOutOfRange { device, fleet } => {
                write!(f, "device id out of range: {device} >= fleet of {fleet}")
            }
            FailoverError::LengthMismatch { regions, alive } => {
                write!(f, "regions/alive length mismatch: {regions} vs {alive}")
            }
            FailoverError::NoSurvivors => {
                write!(f, "at least one device must be alive to absorb the area")
            }
            FailoverError::EmptyFleet => {
                write!(f, "fleet must contain at least one device")
            }
        }
    }
}

impl std::error::Error for FailoverError {}

/// Heartbeat bookkeeping for a set of devices.
///
/// # Examples
///
/// ```rust
/// use hivemind_swarm::failover::HeartbeatTracker;
/// use hivemind_sim::time::SimTime;
///
/// let mut hb = HeartbeatTracker::new(3);
/// hb.beat(0, SimTime::from_secs(1));
/// hb.beat(1, SimTime::from_secs(1));
/// // Device 2 never beat: by t = 4 s it has been silent > 3 s, while
/// // devices 0/1 (last beat t = 1 s) are exactly at the 3 s boundary.
/// assert_eq!(hb.failed_at(SimTime::from_secs(4)), vec![2]);
/// // Everyone who stays silent long enough is eventually declared failed.
/// assert_eq!(hb.failed_at(SimTime::from_secs(10)), vec![0, 1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HeartbeatTracker {
    last_beat: Vec<Option<SimTime>>,
    start: SimTime,
    timeout: SimDuration,
    /// Devices already declared failed (latched).
    declared: Vec<bool>,
}

impl HeartbeatTracker {
    /// Tracks `n` devices with the paper's 3 s timeout.
    ///
    /// # Panics
    ///
    /// Panics on an empty fleet; use [`HeartbeatTracker::try_with_timeout`]
    /// when `n` comes from untrusted configuration.
    pub fn new(n: u32) -> HeartbeatTracker {
        HeartbeatTracker::with_timeout(n, SimDuration::from_secs(3))
    }

    /// Tracks `n` devices with a custom timeout.
    ///
    /// # Panics
    ///
    /// Panics on an empty fleet; use [`HeartbeatTracker::try_with_timeout`]
    /// when `n` comes from untrusted configuration.
    pub fn with_timeout(n: u32, timeout: SimDuration) -> HeartbeatTracker {
        match HeartbeatTracker::try_with_timeout(n, timeout) {
            Ok(hb) => hb,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`HeartbeatTracker::with_timeout`]: rejects an empty
    /// fleet as a value instead of aborting, so fault-injected and
    /// model-checked configurations can treat it as an explorable
    /// outcome.
    pub fn try_with_timeout(
        n: u32,
        timeout: SimDuration,
    ) -> Result<HeartbeatTracker, FailoverError> {
        if n == 0 {
            return Err(FailoverError::EmptyFleet);
        }
        Ok(HeartbeatTracker {
            last_beat: vec![None; n as usize],
            start: SimTime::ZERO,
            timeout,
            declared: vec![false; n as usize],
        })
    }

    /// The heartbeat send period devices should use (paper: 1 s).
    pub fn beat_period() -> SimDuration {
        SimDuration::from_secs(1)
    }

    /// Records a heartbeat from `device` at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the device id is out of range; use
    /// [`HeartbeatTracker::try_beat`] when ids come from untrusted or
    /// fault-injected sources.
    pub fn beat(&mut self, device: u32, now: SimTime) {
        if let Err(e) = self.try_beat(device, now) {
            panic!("{e}");
        }
    }

    /// Records a heartbeat from `device` at `now`, rejecting unknown ids
    /// instead of panicking.
    pub fn try_beat(&mut self, device: u32, now: SimTime) -> Result<(), FailoverError> {
        let fleet = self.last_beat.len() as u32;
        let slot = self
            .last_beat
            .get_mut(device as usize)
            .ok_or(FailoverError::DeviceOutOfRange { device, fleet })?;
        *slot = Some(now);
        Ok(())
    }

    /// Devices considered failed at `now` (silent longer than the
    /// timeout). Once declared, a device stays failed.
    pub fn failed_at(&mut self, now: SimTime) -> Vec<u32> {
        for (i, last) in self.last_beat.iter().enumerate() {
            let reference = last.unwrap_or(self.start);
            if now.saturating_since(reference) > self.timeout {
                self.declared[i] = true;
            }
        }
        self.declared
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Whether `device` has been declared failed.
    pub fn is_failed(&self, device: u32) -> bool {
        self.declared.get(device as usize).copied().unwrap_or(false)
    }

    /// The last recorded heartbeat from `device` (`None` if it never
    /// beat or the id is out of range).
    pub fn last_beat(&self, device: u32) -> Option<SimTime> {
        self.last_beat.get(device as usize).copied().flatten()
    }
}

/// Repartitions a failed device's region among its live neighbours.
///
/// Neighbours are regions sharing an edge with the failed region (the
/// geometric reading of Fig. 10); the failed rect is cut into equal
/// vertical strips, one per neighbour, assigned left-to-right in neighbour
/// order. If no live neighbour exists (pathological), the area goes to the
/// nearest live region by center distance.
///
/// Returns the extra sub-regions as `(device, rect)` pairs; `regions` is
/// not modified (callers usually track "extra assignments" separately from
/// the initial partition).
///
/// # Panics
///
/// Panics if `failed` is out of range or every device is failed; use
/// [`try_repartition`] when either can occur legitimately (e.g. under an
/// injected fault storm that kills the whole fleet).
pub fn repartition(regions: &[Rect], alive: &[bool], failed: usize) -> Vec<(usize, Rect)> {
    match try_repartition(regions, alive, failed) {
        Ok(extra) => extra,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`repartition`]: returns an error instead of panicking when
/// `failed` is out of range, the slices disagree, or no device survives.
pub fn try_repartition(
    regions: &[Rect],
    alive: &[bool],
    failed: usize,
) -> Result<Vec<(usize, Rect)>, FailoverError> {
    if failed >= regions.len() {
        return Err(FailoverError::DeviceOutOfRange {
            device: failed as u32,
            fleet: regions.len() as u32,
        });
    }
    try_assign_rect(&regions[failed], regions, alive, failed)
}

/// Assigns an arbitrary rectangle to live devices: the step function
/// shared by [`try_repartition`] (which hands over a failed device's
/// *initial* region) and orphan redistribution (which hands over strips
/// the dead device had *inherited* from earlier failovers).
///
/// Devices whose region shares an edge with `rect` (skipping `exclude`,
/// normally the dead device itself) each receive an equal vertical
/// strip, left-to-right in device order; with no adjacent survivor the
/// whole rect goes to the nearest live region by center distance.
pub fn try_assign_rect(
    rect: &Rect,
    regions: &[Rect],
    alive: &[bool],
    exclude: usize,
) -> Result<Vec<(usize, Rect)>, FailoverError> {
    if regions.len() != alive.len() {
        return Err(FailoverError::LengthMismatch {
            regions: regions.len(),
            alive: alive.len(),
        });
    }
    let mut neighbors: Vec<usize> = regions
        .iter()
        .enumerate()
        .filter(|&(i, r)| i != exclude && alive[i] && r.adjacent(rect))
        .map(|(i, _)| i)
        .collect();
    if neighbors.is_empty() {
        // Fall back to the nearest live region.
        let nearest = regions
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != exclude && alive[i])
            .min_by(|(_, a), (_, b)| {
                a.center()
                    .distance(rect.center())
                    .total_cmp(&b.center().distance(rect.center()))
            })
            .map(|(i, _)| i)
            .ok_or(FailoverError::NoSurvivors)?;
        neighbors.push(nearest);
    }
    let strips = rect.split_vertical(neighbors.len() as u32);
    Ok(neighbors.into_iter().zip(strips).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::partition_field;

    #[test]
    fn heartbeat_timeout_is_three_seconds() {
        let mut hb = HeartbeatTracker::new(1);
        hb.beat(0, SimTime::from_secs(10));
        assert!(hb.failed_at(SimTime::from_secs(13)).is_empty());
        assert_eq!(
            hb.failed_at(SimTime::from_secs(13) + SimDuration::from_millis(1)),
            vec![0]
        );
    }

    #[test]
    fn failure_is_latched() {
        let mut hb = HeartbeatTracker::new(1);
        hb.beat(0, SimTime::ZERO);
        let _ = hb.failed_at(SimTime::from_secs(10));
        assert!(hb.is_failed(0));
        // A zombie heartbeat does not resurrect it.
        hb.beat(0, SimTime::from_secs(10));
        assert_eq!(hb.failed_at(SimTime::from_secs(10)), vec![0]);
    }

    #[test]
    fn repartition_splits_among_neighbors() {
        let field = Rect::new(0.0, 0.0, 120.0, 80.0);
        let regions = partition_field(&field, 16);
        let alive = vec![true; 16];
        // Fail an interior region; the strips must cover its area exactly.
        let failed = 5;
        let extra = repartition(&regions, &alive, failed);
        assert!(extra.len() >= 2, "interior regions have several neighbours");
        let total: f64 = extra.iter().map(|(_, r)| r.area()).sum();
        assert!((total - regions[failed].area()).abs() < 1e-6);
        for (dev, _) in &extra {
            assert_ne!(*dev, failed);
            assert!(regions[*dev].adjacent(&regions[failed]));
        }
    }

    #[test]
    fn repartition_skips_dead_neighbors() {
        let field = Rect::new(0.0, 0.0, 120.0, 80.0);
        let regions = partition_field(&field, 4);
        let mut alive = vec![true; 4];
        alive[1] = false;
        let extra = repartition(&regions, &alive, 0);
        assert!(extra.iter().all(|(d, _)| alive[*d]));
    }

    #[test]
    fn repartition_falls_back_to_nearest() {
        // Two regions far apart (non-adjacent).
        let regions = vec![
            Rect::new(0.0, 0.0, 10.0, 10.0),
            Rect::new(50.0, 0.0, 60.0, 10.0),
        ];
        let alive = vec![true, true];
        let extra = repartition(&regions, &alive, 0);
        assert_eq!(extra.len(), 1);
        assert_eq!(extra[0].0, 1);
    }

    #[test]
    #[should_panic(expected = "alive")]
    fn repartition_with_no_survivors_panics() {
        let regions = vec![Rect::new(0.0, 0.0, 1.0, 1.0), Rect::new(1.0, 0.0, 2.0, 1.0)];
        let _ = repartition(&regions, &[true, false], 0);
    }

    #[test]
    fn empty_fleet_is_a_value_not_an_abort() {
        assert_eq!(
            HeartbeatTracker::try_with_timeout(0, SimDuration::from_secs(3)),
            Err(FailoverError::EmptyFleet)
        );
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_fleet_panics_through_the_infallible_constructor() {
        let _ = HeartbeatTracker::new(0);
    }

    #[test]
    fn last_beat_reports_what_was_recorded() {
        let mut hb = HeartbeatTracker::new(2);
        assert_eq!(hb.last_beat(0), None);
        hb.beat(0, SimTime::from_secs(7));
        assert_eq!(hb.last_beat(0), Some(SimTime::from_secs(7)));
        assert_eq!(hb.last_beat(1), None);
        assert_eq!(hb.last_beat(99), None, "out of range reads as never beat");
    }

    #[test]
    fn assign_rect_handles_inherited_strips() {
        // Device 1 dies holding a strip it inherited from device 0's
        // earlier failure; the strip must find a live home even though
        // it is not anyone's initial region.
        let regions = vec![
            Rect::new(0.0, 0.0, 10.0, 10.0),
            Rect::new(10.0, 0.0, 20.0, 10.0),
            Rect::new(20.0, 0.0, 30.0, 10.0),
        ];
        let alive = vec![false, false, true];
        let orphan = Rect::new(5.0, 0.0, 10.0, 10.0); // half of region 0
        let extra = try_assign_rect(&orphan, &regions, &alive, 1).unwrap();
        let total: f64 = extra.iter().map(|(_, r)| r.area()).sum();
        assert!((total - orphan.area()).abs() < 1e-9);
        assert!(extra.iter().all(|(d, _)| alive[*d]));

        // With nobody left the step reports rather than panicking.
        assert_eq!(
            try_assign_rect(&orphan, &regions, &[false; 3], 1),
            Err(FailoverError::NoSurvivors)
        );
    }

    #[test]
    fn never_beaten_device_fails_from_start_reference() {
        let mut hb = HeartbeatTracker::new(2);
        hb.beat(0, SimTime::from_secs(5));
        let failed = hb.failed_at(SimTime::from_secs(5));
        assert_eq!(failed, vec![1], "device 1 was silent since t=0");
    }
}

//! # hivemind-swarm
//!
//! Edge devices and the physical world they operate in.
//!
//! The paper's two testbeds are a 16-drone swarm (Parrot AR. Drone 2.0:
//! 1 GHz Cortex-A8, 4 m/s, 8 fps × 2 MB camera frames with a
//! 6.7 m × 8.75 m footprint) and a 14-car rover swarm (Raspberry Pi,
//! slower but far less power-constrained). This crate models:
//!
//! * [`geometry`] — points, rectangles, field partitioning;
//! * [`field`] — mission worlds: static items (tennis balls), moving
//!   people (random-waypoint), with deterministic placement;
//! * [`route`] — A* grid path-finding and boustrophedon coverage planning
//!   (Scenario A derives per-drone routes with A*, Sec. 2.1);
//! * [`maze`] — seeded maze generation and the Wall Follower traversal
//!   algorithm used by the S6 benchmark and the cars' Maze scenario;
//! * [`device`] — device kinematics and compute/camera profiles;
//! * [`battery`] — energy accounting (motion dominates, communication and
//!   on-board compute also drain, Sec. 5.2);
//! * [`failover`] — heartbeat tracking (1 s beat / 3 s timeout) and the
//!   geometric load repartitioning of Fig. 10;
//! * [`disconnect`] — lease clocks, bounded replay rings, and the
//!   exactly-once reconnect session used by the disconnected-operation
//!   plane.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod device;
pub mod disconnect;
pub mod failover;
pub mod field;
pub mod geometry;
pub mod maze;
pub mod route;

pub use battery::Battery;
pub use device::{BatteryBlock, Device, DeviceKind};
pub use field::Field;
pub use geometry::{Point, Rect};

//! Mission worlds: fields with static items and moving people.
//!
//! Scenario A places 15 tennis balls in a baseball field; Scenario B has
//! 25 people who move freely, so the same person can be photographed by
//! several drones and must be disambiguated (Sec. 2.1). People move by
//! random waypoint: pick a target in the field, walk there at walking
//! speed, pick another.

use hivemind_sim::rng::RngForge;
use hivemind_sim::time::SimTime;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::geometry::{Point, Rect};

/// A static item to locate (a tennis ball).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    /// Stable identity.
    pub id: u32,
    /// Location.
    pub pos: Point,
}

/// A moving person following random waypoints.
///
/// Each person owns an independent random stream, so advancing the world
/// in many small steps or one large step yields identical trajectories.
#[derive(Debug, Clone)]
pub struct Person {
    /// Stable identity (ground truth for deduplication accuracy).
    pub id: u32,
    /// Position at the last update.
    pub pos: Point,
    target: Point,
    speed: f64,
    rng: SmallRng,
}

/// The mission world.
///
/// # Examples
///
/// ```rust
/// use hivemind_swarm::field::{Field, FieldParams};
/// use hivemind_sim::rng::RngForge;
///
/// let field = Field::generate(FieldParams::scenario_a(), RngForge::new(1));
/// assert_eq!(field.items().len(), 15);
/// assert!(field.people().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Field {
    bounds: Rect,
    items: Vec<Item>,
    people: Vec<Person>,
    last_update: SimTime,
}

/// World-generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldParams {
    /// Field bounds (defaults: a ~120 m × 80 m sports field).
    pub bounds: Rect,
    /// Number of static items to scatter.
    pub items: u32,
    /// Number of moving people.
    pub people: u32,
    /// Walking speed, m/s.
    pub walk_speed: f64,
}

impl FieldParams {
    /// Scenario A: 15 tennis balls, nobody moving.
    pub fn scenario_a() -> FieldParams {
        FieldParams {
            bounds: Rect::new(0.0, 0.0, 120.0, 80.0),
            items: 15,
            people: 0,
            walk_speed: 1.4,
        }
    }

    /// Scenario B: 25 moving people, no items.
    pub fn scenario_b() -> FieldParams {
        FieldParams {
            bounds: Rect::new(0.0, 0.0, 120.0, 80.0),
            items: 0,
            people: 25,
            walk_speed: 1.4,
        }
    }
}

impl Field {
    /// Generates a world deterministically from `forge`.
    pub fn generate(params: FieldParams, forge: RngForge) -> Field {
        let mut rng = forge.stream("field");
        let b = params.bounds;
        let rand_point =
            |rng: &mut SmallRng| Point::new(rng.gen_range(b.x0..b.x1), rng.gen_range(b.y0..b.y1));
        let items = (0..params.items)
            .map(|id| Item {
                id,
                pos: rand_point(&mut rng),
            })
            .collect();
        let people = (0..params.people)
            .map(|id| {
                let mut prng = forge.indexed_stream("person", id as u64);
                let pos = rand_point(&mut prng);
                let target = rand_point(&mut prng);
                Person {
                    id,
                    pos,
                    target,
                    speed: params.walk_speed,
                    rng: prng,
                }
            })
            .collect();
        Field {
            bounds: b,
            items,
            people,
            last_update: SimTime::ZERO,
        }
    }

    /// Field bounds.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// The static items.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// The people (positions as of the last [`Field::advance_people`]).
    pub fn people(&self) -> &[Person] {
        &self.people
    }

    /// Moves every person forward to time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update.
    pub fn advance_people(&mut self, now: SimTime) {
        assert!(now >= self.last_update, "world time went backwards");
        let dt = (now - self.last_update).as_secs_f64();
        self.last_update = now;
        if dt == 0.0 {
            return;
        }
        let b = self.bounds;
        for p in &mut self.people {
            let mut remaining = dt;
            while remaining > 0.0 {
                let dist = p.pos.distance(p.target);
                let step = p.speed * remaining;
                if step >= dist {
                    // Reached the waypoint: consume time, pick a new one.
                    p.pos = p.target;
                    remaining -= if p.speed > 0.0 {
                        dist / p.speed
                    } else {
                        remaining
                    };
                    p.target = Point::new(p.rng.gen_range(b.x0..b.x1), p.rng.gen_range(b.y0..b.y1));
                    if dist == 0.0 {
                        break;
                    }
                } else {
                    let f = step / dist;
                    p.pos = Point::new(
                        p.pos.x + (p.target.x - p.pos.x) * f,
                        p.pos.y + (p.target.y - p.pos.y) * f,
                    );
                    remaining = 0.0;
                }
            }
        }
    }

    /// Items inside `region`.
    pub fn items_in(&self, region: &Rect) -> Vec<Item> {
        self.items
            .iter()
            .copied()
            .filter(|i| region.contains(i.pos))
            .collect()
    }

    /// Ids of people currently inside `region`.
    pub fn people_in(&self, region: &Rect) -> Vec<u32> {
        self.people
            .iter()
            .filter(|p| region.contains(p.pos))
            .map(|p| p.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hivemind_sim::time::SimDuration;

    #[test]
    fn generation_is_deterministic() {
        let a = Field::generate(FieldParams::scenario_a(), RngForge::new(3));
        let b = Field::generate(FieldParams::scenario_a(), RngForge::new(3));
        assert_eq!(a.items(), b.items());
        let c = Field::generate(FieldParams::scenario_a(), RngForge::new(4));
        assert_ne!(a.items(), c.items());
    }

    #[test]
    fn items_stay_in_bounds() {
        let f = Field::generate(FieldParams::scenario_a(), RngForge::new(5));
        for item in f.items() {
            assert!(f.bounds().contains(item.pos));
        }
    }

    #[test]
    fn people_move_and_stay_in_bounds() {
        let mut f = Field::generate(FieldParams::scenario_b(), RngForge::new(6));
        let before: Vec<Point> = f.people().iter().map(|p| p.pos).collect();
        f.advance_people(SimTime::from_secs(30));
        let moved = f
            .people()
            .iter()
            .zip(&before)
            .filter(|(p, &b)| p.pos.distance(b) > 1.0)
            .count();
        assert!(moved > 20, "most people should have moved, moved = {moved}");
        for p in f.people() {
            assert!(
                f.bounds().contains(p.pos) || p.pos.x == f.bounds().x1 || p.pos.y == f.bounds().y1
            );
        }
    }

    #[test]
    fn people_speed_is_respected() {
        let mut f = Field::generate(FieldParams::scenario_b(), RngForge::new(7));
        let before: Vec<Point> = f.people().iter().map(|p| p.pos).collect();
        f.advance_people(SimTime::from_secs(10));
        for (p, &b) in f.people().iter().zip(&before) {
            // ≤ walk_speed × t (waypoint turns only shorten displacement).
            assert!(p.pos.distance(b) <= 1.4 * 10.0 + 1e-6);
        }
    }

    #[test]
    fn region_queries() {
        let f = Field::generate(FieldParams::scenario_a(), RngForge::new(8));
        let whole = f.bounds();
        assert_eq!(f.items_in(&whole).len(), 15);
        let west = Rect::new(0.0, 0.0, 60.0, 80.0);
        let east = Rect::new(60.0, 0.0, 120.0, 80.0);
        let w = f.items_in(&west).len();
        let e = f.items_in(&east).len();
        assert_eq!(w + e, 15, "halves partition the items");
    }

    #[test]
    fn advance_in_steps_matches_total_time() {
        let mut a = Field::generate(FieldParams::scenario_b(), RngForge::new(9));
        a.advance_people(SimTime::from_secs(5));
        a.advance_people(SimTime::from_secs(10));
        // Same seed advanced in one jump: waypoint draws happen at the
        // same walk distances, so positions must agree.
        let mut b = Field::generate(FieldParams::scenario_b(), RngForge::new(9));
        b.advance_people(SimTime::from_secs(10));
        for (pa, pb) in a.people().iter().zip(b.people()) {
            assert!(pa.pos.distance(pb.pos) < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn time_cannot_reverse() {
        let mut f = Field::generate(FieldParams::scenario_b(), RngForge::new(10));
        f.advance_people(SimTime::from_secs(10));
        f.advance_people(SimTime::from_secs(5) + SimDuration::from_millis(1));
    }
}

//! Runtime task re-mapping (Sec. 4.2).
//!
//! "At runtime, HiveMind can change its task mapping if the user-provided
//! goals are not met. Changes to task placement currently only happen at
//! task granularity." This module implements that control loop for
//! single-app workloads: run a probe window under the synthesized
//! placement, compare the measured latency against the user's DSL-level
//! constraint, and if it is violated, flip the app's placement and run the
//! remainder of the workload under the new mapping.

use hivemind_apps::suite::App;
use hivemind_sim::time::SimTime;

use crate::dsl::PlacementSite;
use crate::engine::{Engine, TaskRecord};
use crate::experiment::ExperimentConfig;

/// Outcome of the adaptive run.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// Placement used during the probe window.
    pub initial_placement: PlacementSite,
    /// Placement after adaptation (equal to the initial one when the goal
    /// was already met).
    pub final_placement: PlacementSite,
    /// Whether a re-mapping occurred.
    pub remapped: bool,
    /// Median task latency measured in the probe window, seconds.
    pub probe_median_secs: f64,
    /// Median task latency after the decision point, seconds.
    pub steady_median_secs: f64,
    /// All task records across both windows.
    pub records: Vec<TaskRecord>,
}

/// Runs `app` under `cfg` with a latency goal: a probe window of
/// `probe_secs`, a re-mapping decision, then `steady_secs` more load.
///
/// The engine (and therefore warm containers, network queues, and battery
/// state) persists across the re-mapping — only the placement changes,
/// matching the paper's "task granularity" restriction: in-flight tasks
/// finish where they started.
///
/// # Panics
///
/// Panics if either window is non-positive.
pub fn run_adaptive(
    cfg: &ExperimentConfig,
    app: App,
    latency_goal_secs: f64,
    probe_secs: f64,
    steady_secs: f64,
) -> AdaptiveOutcome {
    run_adaptive_from(cfg, app, None, latency_goal_secs, probe_secs, steady_secs)
}

/// Like [`run_adaptive`], but starting from an explicit placement — the
/// user's optional hint (Sec. 4.1), which the runtime overrides when it
/// turns out to violate the goal.
///
/// # Panics
///
/// Panics if either window is non-positive.
pub fn run_adaptive_from(
    cfg: &ExperimentConfig,
    app: App,
    initial_hint: Option<PlacementSite>,
    latency_goal_secs: f64,
    probe_secs: f64,
    steady_secs: f64,
) -> AdaptiveOutcome {
    assert!(
        probe_secs > 0.0 && steady_secs > 0.0,
        "windows must be positive"
    );
    let mut engine = Engine::new(cfg.engine_config());
    if let Some(site) = initial_hint {
        if site == PlacementSite::Edge || engine.has_cloud_backend() {
            engine.pin_placement(app, site);
        }
    }
    let initial = engine.placement_of(app);
    let rate = app.tasks_per_sec() * cfg.rate_scale;
    let period = 1.0 / rate;

    let submit_window = |engine: &mut Engine, from: f64, to: f64| {
        for dev in 0..cfg.devices {
            let offset = period * (dev as f64 / cfg.devices as f64);
            let mut t = from + offset;
            while t < to {
                engine.submit_task(
                    SimTime::ZERO + hivemind_sim::time::SimDuration::from_secs_f64(t),
                    dev,
                    app,
                    0,
                );
                t += period;
            }
        }
    };

    // --- Probe window. ---
    submit_window(&mut engine, 0.0, probe_secs);
    let mut records = engine.run_to_completion();
    let mut probe = hivemind_sim::stats::Summary::new();
    for r in &records {
        probe.record_duration(r.latency());
    }
    let probe_median = probe.median();

    // --- Decision: flip placement if the goal is violated. Flipping
    // toward the cloud requires a backend to exist; a purely distributed
    // deployment has nowhere else to go and keeps its mapping.
    let flipped = match initial {
        PlacementSite::Cloud => Some(PlacementSite::Edge),
        PlacementSite::Edge if engine.has_cloud_backend() => Some(PlacementSite::Cloud),
        PlacementSite::Edge => None,
    };
    let final_placement = match (probe_median > latency_goal_secs, flipped) {
        (true, Some(site)) => {
            engine.pin_placement(app, site);
            site
        }
        _ => initial,
    };

    // --- Steady window under the (possibly new) mapping. ---
    let start = engine.now().as_secs_f64().max(probe_secs);
    submit_window(&mut engine, start, start + steady_secs);
    let steady_records = engine.run_to_completion();
    let mut steady = hivemind_sim::stats::Summary::new();
    for r in &steady_records {
        steady.record_duration(r.latency());
    }
    let steady_median = steady.median();
    records.extend(steady_records);

    AdaptiveOutcome {
        initial_placement: initial,
        final_placement,
        remapped: final_placement != initial,
        probe_median_secs: probe_median,
        steady_median_secs: steady_median,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    #[test]
    fn satisfied_goal_keeps_the_mapping() {
        let cfg = ExperimentConfig::single_app(App::FaceRecognition)
            .platform(Platform::HiveMind)
            .seed(3);
        // A generous 5 s goal: the cloud mapping easily meets it.
        let out = run_adaptive(&cfg, App::FaceRecognition, 5.0, 15.0, 15.0);
        assert!(!out.remapped);
        assert_eq!(out.initial_placement, out.final_placement);
        assert!(out.probe_median_secs < 5.0);
    }

    #[test]
    fn violated_goal_flips_to_the_cloud() {
        // A user hint pins heavy OCR to the edge; the on-device queue
        // diverges, the probe violates the 2 s goal, and the runtime
        // re-maps the task to the serverless backend.
        let cfg = ExperimentConfig::single_app(App::TextRecognition)
            .platform(Platform::HiveMind)
            .seed(3);
        let out = run_adaptive_from(
            &cfg,
            App::TextRecognition,
            Some(PlacementSite::Edge),
            2.0,
            20.0,
            20.0,
        );
        assert_eq!(out.initial_placement, PlacementSite::Edge);
        assert!(out.remapped, "probe median {}", out.probe_median_secs);
        assert_eq!(out.final_placement, PlacementSite::Cloud);
        assert!(
            out.steady_median_secs < out.probe_median_secs,
            "re-mapping must help: {} -> {}",
            out.probe_median_secs,
            out.steady_median_secs
        );
        assert!(out.steady_median_secs < 2.0, "goal met after re-mapping");
    }

    #[test]
    fn distributed_platform_has_nowhere_to_flip() {
        let cfg = ExperimentConfig::single_app(App::TextRecognition)
            .platform(Platform::DistributedEdge)
            .seed(3);
        let out = run_adaptive(&cfg, App::TextRecognition, 2.0, 10.0, 10.0);
        assert!(!out.remapped, "no backend exists to re-map onto");
        assert_eq!(out.final_placement, PlacementSite::Edge);
    }

    #[test]
    fn light_apps_can_flip_toward_the_edge() {
        // Weather analytics under a sub-50ms goal: the centralized cloud
        // round-trip violates it; the edge mapping meets it.
        let cfg = ExperimentConfig::single_app(App::WeatherAnalytics)
            .platform(Platform::CentralizedFaaS)
            .seed(4);
        let out = run_adaptive(&cfg, App::WeatherAnalytics, 0.05, 20.0, 20.0);
        assert_eq!(out.initial_placement, PlacementSite::Cloud);
        assert!(out.remapped);
        assert_eq!(out.final_placement, PlacementSite::Edge);
        assert!(out.steady_median_secs < 0.05);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let cfg = ExperimentConfig::single_app(App::Maze);
        let _ = run_adaptive(&cfg, App::Maze, 1.0, 0.0, 10.0);
    }
}

//! # hivemind-core
//!
//! The HiveMind platform itself — the paper's contribution, built on the
//! substrates in the sibling crates:
//!
//! * [`dsl`] — the declarative programming model (Listings 1–3): tasks,
//!   task graphs, timing/execution dependencies, and the optional
//!   management directives (`Schedule`, `Isolate`, `Place`, `Restore`,
//!   `Learn`, `Persist`).
//! * [`synthesis`] — program synthesis for task placement (Fig. 8):
//!   enumerate the *meaningful* cloud/edge execution models, generate the
//!   cross-tier communication bindings, profile each candidate, and pick
//!   the one satisfying the user's performance/power/cost constraints.
//! * [`platform`] — the evaluated system configurations: Centralized
//!   IaaS/FaaS, Distributed edge, HiveMind, and the Fig. 13 ablations.
//! * [`controller`] — the centralized controller: load balancing across
//!   devices, heartbeat-based failure handling with geometric load
//!   repartitioning, monitoring, and sharded-scheduler scalability.
//! * [`engine`] — the execution engine binding swarm, network, and
//!   serverless cluster into one deterministic simulation.
//! * [`experiment`] — the experiment harness every figure is generated
//!   from: single-app benchmarks (S1–S10) and end-to-end missions.
//! * [`runner`] — deterministic parallel replicate execution: fan a
//!   replicated experiment (or a config sweep) across threads with
//!   per-replicate seeds derived from the root seed, collecting outcomes
//!   in replicate order regardless of scheduling.
//! * [`adaptive`] — runtime task re-mapping when user goals are not met
//!   (Sec. 4.2).
//! * [`analytic`] — the fast queueing cross-model used to validate the
//!   simulator (Fig. 18).
//! * [`mc`] — the coordination protocols (failover, retry + circuit
//!   breaker, data exchange) lifted behind pure step functions and
//!   exhaustively model-checked under all fault schedules.
//! * [`metrics`] — outcome records: latency summaries and breakdowns,
//!   bandwidth, battery, detection quality.
//! * [`prelude`] — one-stop imports for experiment code: `use
//!   hivemind_core::prelude::*;` brings in the experiment, platform,
//!   outcome, runner, app, and time types without deep module paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod analytic;
pub mod controller;
pub mod dsl;
pub mod engine;
pub mod experiment;
pub mod mc;
pub mod metrics;
pub mod mission;
pub mod platform;
pub mod prelude;
pub mod programs;
pub mod runner;
pub mod synthesis;

pub use experiment::{Experiment, ExperimentConfig};
pub use platform::Platform;
pub use runner::{RunSet, Runner};

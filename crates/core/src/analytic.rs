//! Fast analytical/queueing cross-model (Fig. 18, Sec. 5.6).
//!
//! The paper validates its event-driven simulator against the real
//! testbed, reporting < 5 % tail-latency deviation. In this reproduction
//! the detailed DES plays the testbed's role, and this module plays the
//! fast simulator's: a queueing-network model "based on queueing network
//! principles \[that\] tracks the processing and queueing time both on
//! cloud and edge resources" — but with *closed-form* waiting times
//! (M/G/1 per wireless router, Sakasegawa's G/G/c for the core pool)
//! instead of microscopic event interleaving. [`QuickModel::predict`]
//! samples task latencies from the resulting composite distribution, so
//! medians and tails can be compared against the DES directly.

use hivemind_apps::suite::App;
use hivemind_faas::container::ContainerParams;
use hivemind_net::topology::TopologyParams;
use hivemind_sim::rng::RngForge;
use hivemind_sim::stats::Summary;

use crate::dsl::PlacementSite;
use crate::platform::Platform;
use crate::synthesis;

/// Analytic single-app model configuration.
#[derive(Debug, Clone)]
pub struct QuickModel {
    /// Platform under test.
    pub platform: Platform,
    /// The benchmark app.
    pub app: App,
    /// Devices generating tasks.
    pub devices: u32,
    /// Task rate per device, tasks/second.
    pub rate_per_device: f64,
    /// Backend servers.
    pub servers: u32,
    /// Cores per server.
    pub cores_per_server: u32,
    /// Payload scale (resolution).
    pub input_scale: f64,
    /// Workload duration in seconds. Overloaded queues (ρ ≥ 1) have no
    /// steady state; their latency distribution is a transient of the
    /// run length, so the model must know it.
    pub duration_secs: f64,
}

impl QuickModel {
    /// Testbed defaults.
    pub fn testbed(platform: Platform, app: App) -> QuickModel {
        QuickModel {
            platform,
            app,
            devices: 16,
            rate_per_device: app.tasks_per_sec(),
            servers: 12,
            cores_per_server: 40,
            input_scale: 1.0,
            duration_secs: 60.0,
        }
    }

    fn upload_bytes(&self) -> f64 {
        self.app.cloud_profile().input_bytes as f64
            * self.input_scale
            * self.platform.upload_fraction()
    }

    /// Mean one-way uplink wire time including M/G/1 queueing on the
    /// shared wireless medium.
    pub fn mean_uplink_secs(&self) -> f64 {
        let topo = TopologyParams {
            devices: self.devices,
            servers: self.servers,
            ..TopologyParams::default()
        };
        let routers = topo.effective_routers() as f64;
        let wifi = topo.wireless_bps / 8.0;
        let bytes = self.upload_bytes();
        let service = bytes / wifi;
        let rate = self.devices as f64 * self.rate_per_device / routers;
        let rho = (rate * service).min(0.995);
        // M/D/1 waiting (deterministic sizes): Wq = ρ S / 2(1-ρ).
        let wait = rho * service / (2.0 * (1.0 - rho));
        let trunk = bytes / (topo.trunk_bps / 8.0);
        let switch = bytes / (topo.switch_bps / 8.0);
        let nic = bytes / (topo.nic_bps / 8.0);
        service
            + wait
            + trunk
            + switch
            + nic
            + topo.wireless_propagation.as_secs_f64()
            + 3.0 * topo.wired_propagation.as_secs_f64()
    }

    /// Mean queueing delay on the cloud core pool (Sakasegawa G/G/c).
    pub fn mean_core_wait_secs(&self) -> f64 {
        let exec = self.app.cloud_profile().exec.mean_secs();
        let c = (self.servers * self.cores_per_server) as f64;
        let lambda = self.devices as f64 * self.rate_per_device;
        let rho = (lambda * exec / c).min(0.995);
        if rho <= 0.0 {
            return 0.0;
        }
        let scv = self.app.cloud_profile().exec.scv().unwrap_or(1.0);
        // Sakasegawa: Wq ≈ (ρ^(√(2(c+1)))/(1-ρ)) · (SCVa + SCVs)/2 · S/c.
        let pow = (2.0 * (c + 1.0)).sqrt();
        (rho.powf(pow) / (1.0 - rho)) * ((1.0 + scv) / 2.0) * (exec / c)
    }

    /// Expected cold-start fraction under the platform's keep-alive.
    pub fn cold_fraction(&self) -> f64 {
        let params = if self.platform.is_hybrid() {
            ContainerParams::hivemind()
        } else {
            ContainerParams::openwhisk_default()
        };
        let exec = self.app.cloud_profile().exec.mean_secs();
        let lambda = self.devices as f64 * self.rate_per_device;
        // Concurrency ≈ λ·S containers stay busy; each sees idle gaps of
        // roughly concurrency/λ = S between reuses.
        let idle_gap = exec.max(1.0 / lambda.max(1e-9));
        if idle_gap <= params.keep_alive.as_secs_f64() {
            0.02
        } else {
            0.9
        }
    }

    /// Samples `n` end-to-end task latencies and returns their summary.
    pub fn predict(&self, n: usize, seed: u64) -> Summary {
        let forge = RngForge::new(seed);
        let mut rng = forge.stream("analytic");
        let mut out = Summary::new();
        let placement = synthesis::single_app_placement(self.app, self.platform);
        let profile = self.app.cloud_profile();

        match placement {
            PlacementSite::Edge => {
                let slowdown = self.app.edge_slowdown();
                let r = self.rate_per_device.max(1e-9);
                let upload = profile.output_bytes as f64 / (867e6 / 8.0) + 0.0055;
                // Exact single-queue dynamics via the Lindley recursion
                // over the run horizon: deterministic arrivals every 1/r,
                // sampled service times. Handles stable and overloaded
                // regimes uniformly (an overloaded queue is a transient of
                // the run length, not a steady state).
                let per_run = ((self.duration_secs * r).ceil() as usize).max(1);
                let mut produced = 0usize;
                while produced < n {
                    let mut wait = 0.0f64;
                    for _ in 0..per_run.min(n - produced) {
                        let exec = profile.exec.sample_secs(&mut rng) * slowdown;
                        out.record(wait + exec + upload);
                        wait = (wait + exec - 1.0 / r).max(0.0);
                        produced += 1;
                    }
                }
            }
            PlacementSite::Cloud => {
                let mgmt = if self.platform.uses_fixed_pool() {
                    hivemind_sim::dist::Dist::constant(0.0)
                } else if self.platform.is_hybrid() {
                    hivemind_faas::scheduler::SchedulerPolicy::HiveMind.management_cost()
                } else {
                    hivemind_faas::scheduler::SchedulerPolicy::OpenWhiskDefault.management_cost()
                };
                let params = if self.platform.is_hybrid() {
                    ContainerParams::hivemind()
                } else {
                    ContainerParams::openwhisk_default()
                };
                let cold_p = if self.platform.uses_fixed_pool() {
                    0.0
                } else {
                    self.cold_fraction()
                };
                let data_io = if self.platform.uses_fixed_pool() {
                    // Direct RPC exchange.
                    2.0e-4 + (profile.input_bytes as f64 * self.input_scale) / 1.25e9
                } else if self.platform.remote_memory() {
                    4e-6 + self.upload_bytes() / 8e9
                } else {
                    2.0 * (0.0035 + self.upload_bytes() / 200e6)
                };
                let uplink = self.mean_uplink_secs();
                let core_wait = self.mean_core_wait_secs();
                let rpc = if self.platform.network_accelerated() {
                    2.1e-6
                } else {
                    1.5e-4 + self.upload_bytes() * 0.35e-9
                };
                let downlink = profile.output_bytes as f64 / (867e6 / 8.0) + 0.0025;
                for _ in 0..n {
                    let inst = if rng_chance(&mut rng, cold_p) {
                        params.cold_start.sample_secs(&mut rng)
                    } else {
                        params.warm_start.sample_secs(&mut rng)
                    };
                    let exec = profile.exec.sample_secs(&mut rng);
                    out.record(
                        uplink
                            + rpc
                            + mgmt.sample_secs(&mut rng)
                            + inst
                            + data_io
                            + core_wait
                            + exec
                            + downlink,
                    );
                }
            }
        }
        out
    }
}

fn rng_chance<R: rand::Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.gen::<f64>() < p
}

/// Relative deviation between two values, percent.
pub fn deviation_pct(real: f64, model: f64) -> f64 {
    if real == 0.0 {
        return 0.0;
    }
    100.0 * (model - real) / real
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uplink_saturates_with_devices() {
        let mut m = QuickModel::testbed(Platform::CentralizedFaaS, App::FaceRecognition);
        let calm = m.mean_uplink_secs();
        m.devices = 14;
        m.input_scale = 4.0; // 8 MB frames
        m.rate_per_device = 8.0; // full 8 fps offered to the cloud
        let saturated = m.mean_uplink_secs();
        assert!(
            saturated > calm * 5.0,
            "saturation must blow up latency: {calm} -> {saturated}"
        );
    }

    #[test]
    fn core_wait_negligible_at_testbed_load() {
        let m = QuickModel::testbed(Platform::CentralizedFaaS, App::Slam);
        // 16 tasks/s × 0.65 s on 480 cores: ρ ≈ 2 %.
        assert!(m.mean_core_wait_secs() < 1e-3);
    }

    #[test]
    fn hivemind_predicted_faster_than_centralized() {
        let cen =
            QuickModel::testbed(Platform::CentralizedFaaS, App::TextRecognition).predict(4000, 1);
        let hm = QuickModel::testbed(Platform::HiveMind, App::TextRecognition).predict(4000, 1);
        assert!(hm.median() < cen.median());
        assert!(hm.p99() < cen.p99());
    }

    #[test]
    fn edge_placement_prediction_scales_with_slowdown() {
        let d =
            QuickModel::testbed(Platform::DistributedEdge, App::FaceRecognition).predict(2000, 2);
        // 10× the 250 ms cloud median on-board.
        assert!(d.median() > 2.0, "median {}", d.median());
    }

    #[test]
    fn deviation_helper() {
        assert!((deviation_pct(100.0, 104.0) - 4.0).abs() < 1e-12);
        assert!((deviation_pct(100.0, 97.0) + 3.0).abs() < 1e-12);
        assert_eq!(deviation_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn cold_fraction_lower_with_hivemind_keepalive() {
        let ow = QuickModel::testbed(Platform::CentralizedFaaS, App::Maze);
        let hm = QuickModel::testbed(Platform::HiveMind, App::Maze);
        assert!(hm.cold_fraction() <= ow.cold_fraction());
    }
}

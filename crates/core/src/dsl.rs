//! The HiveMind domain-specific language (Sec. 4.1).
//!
//! Users "express a high-level description of their task graph" and
//! HiveMind synthesizes everything below it. This module is the Rust
//! embedding of Listings 1–3: [`TaskDef`] mirrors `Task(...)`,
//! [`TaskGraphBuilder`] mirrors `TaskGraph(...)` plus the relation
//! declarations (`Parallel`, `Serial`, `Overlap`, `Synchronize`), and
//! [`Directive`] carries the optional management directives.
//!
//! Validation happens at [`TaskGraphBuilder::build`]: unknown task
//! references, duplicate names, inconsistent parent/child links, and
//! cycles are all rejected — the paper notes incorrect API/dependency
//! definitions are a dominant source of bugs in multi-tier apps, which is
//! exactly what a compiled task graph rules out.
//!
//! # Examples
//!
//! Listing 3 (people recognition and deduplication), expressed here:
//!
//! ```rust
//! use hivemind_core::dsl::*;
//!
//! let graph = TaskGraphBuilder::new()
//!     .constraint(Constraint::ExecTime { secs: 10.0 })
//!     .task(TaskDef::new("createRoute").code("tasks/create_route"))
//!     .task(
//!         TaskDef::new("collectImage")
//!             .code("tasks/collect_image")
//!             .parent("createRoute")
//!             .arg("resolution", "1024p"),
//!     )
//!     .task(
//!         TaskDef::new("obstacleAvoidance")
//!             .code("tasks/obstacle_avoid")
//!             .parent("collectImage"),
//!     )
//!     .task(
//!         TaskDef::new("faceRecognition")
//!             .code("tasks/face_rec")
//!             .parent("collectImage"),
//!     )
//!     .task(
//!         TaskDef::new("deduplication")
//!             .code("tasks/dedup")
//!             .parent("faceRecognition"),
//!     )
//!     .parallel("obstacleAvoidance", "faceRecognition")
//!     .serial("faceRecognition", "deduplication")
//!     .directive(Directive::Learn {
//!         task: "faceRecognition".into(),
//!         scope: LearnScope::Swarm,
//!     })
//!     .directive(Directive::Place {
//!         task: "obstacleAvoidance".into(),
//!         site: PlacementSite::Edge,
//!     })
//!     .directive(Directive::Persist { task: "deduplication".into() })
//!     .build()
//!     .expect("valid graph");
//!
//! assert_eq!(graph.len(), 5);
//! assert_eq!(graph.roots(), vec!["createRoute"]);
//! assert!(graph.pinned_site("obstacleAvoidance") == Some(PlacementSite::Edge));
//! ```

use std::collections::{HashMap, HashSet};
use std::fmt;

/// Where a task is (or must be) placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementSite {
    /// On the edge devices.
    Edge,
    /// In the backend cloud.
    Cloud,
}

/// Scope of continuous learning for a task's model (Sec. 4.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LearnScope {
    /// No retraining.
    Off,
    /// Retrain from this device's own decisions.
    Device,
    /// Retrain jointly from the whole swarm's decisions.
    Swarm,
}

/// Fault-tolerance policy for a task (`Restore(task)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RestorePolicy {
    /// Re-run the task elsewhere on failure (default).
    #[default]
    Respawn,
    /// Drop the task's pending work on failure.
    Discard,
}

/// One `Task(...)` declaration (Listing 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskDef {
    /// Unique task name.
    pub name: String,
    /// Logical input object name.
    pub data_in: Option<String>,
    /// Logical output object name.
    pub data_out: Option<String>,
    /// Path to the task's code.
    pub code: String,
    /// Free-form task arguments (`speed='4'`, `algorithm='slam'`, …).
    pub args: Vec<(String, String)>,
    /// Declared parent task names.
    pub parents: Vec<String>,
}

impl TaskDef {
    /// Starts a task definition.
    pub fn new(name: impl Into<String>) -> TaskDef {
        TaskDef {
            name: name.into(),
            data_in: None,
            data_out: None,
            code: String::new(),
            args: Vec::new(),
            parents: Vec::new(),
        }
    }

    /// Sets the input object name.
    pub fn data_in(mut self, name: impl Into<String>) -> TaskDef {
        self.data_in = Some(name.into());
        self
    }

    /// Sets the output object name.
    pub fn data_out(mut self, name: impl Into<String>) -> TaskDef {
        self.data_out = Some(name.into());
        self
    }

    /// Sets the code path.
    pub fn code(mut self, path: impl Into<String>) -> TaskDef {
        self.code = path.into();
        self
    }

    /// Adds a free-form argument.
    pub fn arg(mut self, key: impl Into<String>, value: impl Into<String>) -> TaskDef {
        self.args.push((key.into(), value.into()));
        self
    }

    /// Declares a parent task.
    pub fn parent(mut self, name: impl Into<String>) -> TaskDef {
        self.parents.push(name.into());
        self
    }
}

/// Application-level constraints (`TaskGraph(..., constraints)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Constraint {
    /// End-to-end execution time bound, seconds.
    ExecTime {
        /// Bound in seconds.
        secs: f64,
    },
    /// Per-task latency bound, seconds.
    Latency {
        /// Bound in seconds.
        secs: f64,
    },
    /// Minimum throughput, tasks/second.
    Throughput {
        /// Tasks per second.
        tasks_per_sec: f64,
    },
    /// Maximum device power budget, fraction of battery.
    PowerBudget {
        /// Battery fraction in `[0, 1]`.
        battery_fraction: f64,
    },
    /// Upper limit on cloud cost, dollars.
    CloudCost {
        /// Dollars.
        dollars: f64,
    },
}

/// Declared timing relation between two tasks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Relation {
    /// The tasks may execute fully in parallel.
    Parallel(String, String),
    /// The tasks may partially overlap.
    Overlap(String, String),
    /// The second task must strictly follow the first.
    Serial(String, String),
}

/// Optional management directives (Listing 2).
#[derive(Debug, Clone, PartialEq)]
pub enum Directive {
    /// Scheduling constraint / priority for a task.
    Schedule {
        /// Target task.
        task: String,
        /// Priority (higher = sooner).
        priority: i32,
    },
    /// The task requires a dedicated container.
    Isolate {
        /// Target task.
        task: String,
    },
    /// Pin task placement to cloud or edge.
    Place {
        /// Target task.
        task: String,
        /// Where it must run.
        site: PlacementSite,
    },
    /// Fault-tolerance policy.
    Restore {
        /// Target task.
        task: String,
        /// Policy on device/function failure.
        policy: RestorePolicy,
    },
    /// Enable/disable online learning, one device vs swarm-wide.
    Learn {
        /// Target task.
        task: String,
        /// Learning scope.
        scope: LearnScope,
    },
    /// Persist the task's output in durable storage.
    Persist {
        /// Target task.
        task: String,
    },
    /// Synchronization barrier: the task waits for `condition` (e.g.
    /// `"all"` devices) before running.
    Synchronize {
        /// Target task.
        task: String,
        /// Barrier condition.
        condition: String,
    },
}

impl Directive {
    /// The task this directive applies to.
    pub fn task(&self) -> &str {
        match self {
            Directive::Schedule { task, .. }
            | Directive::Isolate { task }
            | Directive::Place { task, .. }
            | Directive::Restore { task, .. }
            | Directive::Learn { task, .. }
            | Directive::Persist { task }
            | Directive::Synchronize { task, .. } => task,
        }
    }
}

/// Errors produced by graph validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Two tasks share a name.
    DuplicateTask(String),
    /// A parent/relation/directive references an unknown task.
    UnknownTask(String),
    /// The dependency graph has a cycle through this task.
    Cycle(String),
    /// The graph has no tasks.
    Empty,
    /// A task lists itself as a parent.
    SelfParent(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateTask(t) => write!(f, "duplicate task name {t:?}"),
            GraphError::UnknownTask(t) => write!(f, "reference to unknown task {t:?}"),
            GraphError::Cycle(t) => write!(f, "dependency cycle through task {t:?}"),
            GraphError::Empty => write!(f, "task graph has no tasks"),
            GraphError::SelfParent(t) => write!(f, "task {t:?} lists itself as parent"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Builder for a [`TaskGraph`].
#[derive(Debug, Clone, Default)]
pub struct TaskGraphBuilder {
    tasks: Vec<TaskDef>,
    relations: Vec<Relation>,
    directives: Vec<Directive>,
    constraints: Vec<Constraint>,
}

impl TaskGraphBuilder {
    /// Starts an empty graph.
    pub fn new() -> TaskGraphBuilder {
        TaskGraphBuilder::default()
    }

    /// Adds a task definition.
    pub fn task(mut self, def: TaskDef) -> TaskGraphBuilder {
        self.tasks.push(def);
        self
    }

    /// Declares that two tasks may run in parallel.
    pub fn parallel(mut self, a: impl Into<String>, b: impl Into<String>) -> TaskGraphBuilder {
        self.relations.push(Relation::Parallel(a.into(), b.into()));
        self
    }

    /// Declares that two tasks may partially overlap.
    pub fn overlap(mut self, a: impl Into<String>, b: impl Into<String>) -> TaskGraphBuilder {
        self.relations.push(Relation::Overlap(a.into(), b.into()));
        self
    }

    /// Declares strict ordering between two tasks.
    pub fn serial(mut self, a: impl Into<String>, b: impl Into<String>) -> TaskGraphBuilder {
        self.relations.push(Relation::Serial(a.into(), b.into()));
        self
    }

    /// Adds a management directive.
    pub fn directive(mut self, d: Directive) -> TaskGraphBuilder {
        self.directives.push(d);
        self
    }

    /// Adds an application constraint.
    pub fn constraint(mut self, c: Constraint) -> TaskGraphBuilder {
        self.constraints.push(c);
        self
    }

    /// Validates and freezes the graph.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] for duplicate names, unknown references,
    /// self-parents, cycles, or an empty graph.
    pub fn build(self) -> Result<TaskGraph, GraphError> {
        if self.tasks.is_empty() {
            return Err(GraphError::Empty);
        }
        let mut names = HashSet::new();
        for t in &self.tasks {
            if !names.insert(t.name.clone()) {
                return Err(GraphError::DuplicateTask(t.name.clone()));
            }
        }
        let known = |n: &str| names.contains(n);
        for t in &self.tasks {
            for p in &t.parents {
                if p == &t.name {
                    return Err(GraphError::SelfParent(t.name.clone()));
                }
                if !known(p) {
                    return Err(GraphError::UnknownTask(p.clone()));
                }
            }
        }
        for r in &self.relations {
            let (a, b) = match r {
                Relation::Parallel(a, b) | Relation::Overlap(a, b) | Relation::Serial(a, b) => {
                    (a, b)
                }
            };
            for n in [a, b] {
                if !known(n) {
                    return Err(GraphError::UnknownTask(n.clone()));
                }
            }
        }
        for d in &self.directives {
            if !known(d.task()) {
                return Err(GraphError::UnknownTask(d.task().to_string()));
            }
        }
        // Cycle detection over parent edges + Serial relations.
        let index: HashMap<&str, usize> = self
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.as_str(), i))
            .collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            for p in &t.parents {
                adj[index[p.as_str()]].push(i);
            }
        }
        for r in &self.relations {
            if let Relation::Serial(a, b) = r {
                adj[index[a.as_str()]].push(index[b.as_str()]);
            }
        }
        // Kahn's algorithm; leftovers indicate a cycle.
        let mut indeg = vec![0usize; adj.len()];
        for edges in &adj {
            for &v in edges {
                indeg[v] += 1;
            }
        }
        let mut stack: Vec<usize> = indeg
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut seen = 0;
        let mut topo = Vec::with_capacity(adj.len());
        while let Some(u) = stack.pop() {
            seen += 1;
            topo.push(u);
            for &v in &adj[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    stack.push(v);
                }
            }
        }
        if seen != adj.len() {
            let stuck = indeg
                .iter()
                .position(|&d| d > 0)
                .expect("cycle implies a positive in-degree");
            return Err(GraphError::Cycle(self.tasks[stuck].name.clone()));
        }
        Ok(TaskGraph {
            tasks: self.tasks,
            relations: self.relations,
            directives: self.directives,
            constraints: self.constraints,
            topo_order: topo,
        })
    }
}

/// A validated task graph.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskGraph {
    tasks: Vec<TaskDef>,
    relations: Vec<Relation>,
    directives: Vec<Directive>,
    constraints: Vec<Constraint>,
    topo_order: Vec<usize>,
}

impl TaskGraph {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph is empty (never true for built graphs).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task definitions, in declaration order.
    pub fn tasks(&self) -> &[TaskDef] {
        &self.tasks
    }

    /// A task by name.
    pub fn task(&self, name: &str) -> Option<&TaskDef> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// Task names in a valid topological execution order.
    pub fn topological_names(&self) -> Vec<&str> {
        self.topo_order
            .iter()
            .map(|&i| self.tasks[i].name.as_str())
            .collect()
    }

    /// Tasks with no parents.
    pub fn roots(&self) -> Vec<&str> {
        self.tasks
            .iter()
            .filter(|t| t.parents.is_empty())
            .map(|t| t.name.as_str())
            .collect()
    }

    /// Children of a task.
    pub fn children(&self, name: &str) -> Vec<&str> {
        self.tasks
            .iter()
            .filter(|t| t.parents.iter().any(|p| p == name))
            .map(|t| t.name.as_str())
            .collect()
    }

    /// Declared relations.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Management directives.
    pub fn directives(&self) -> &[Directive] {
        &self.directives
    }

    /// Application constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The pinned placement for a task, if a `Place` directive exists.
    pub fn pinned_site(&self, task: &str) -> Option<PlacementSite> {
        self.directives.iter().find_map(|d| match d {
            Directive::Place { task: t, site } if t == task => Some(*site),
            _ => None,
        })
    }

    /// Whether a task demands a dedicated container.
    pub fn is_isolated(&self, task: &str) -> bool {
        self.directives
            .iter()
            .any(|d| matches!(d, Directive::Isolate { task: t } if t == task))
    }

    /// Whether a task's output must be persisted.
    pub fn is_persisted(&self, task: &str) -> bool {
        self.directives
            .iter()
            .any(|d| matches!(d, Directive::Persist { task: t } if t == task))
    }

    /// The learning scope for a task (default [`LearnScope::Off`]).
    pub fn learn_scope(&self, task: &str) -> LearnScope {
        self.directives
            .iter()
            .find_map(|d| match d {
                Directive::Learn { task: t, scope } if t == task => Some(*scope),
                _ => None,
            })
            .unwrap_or(LearnScope::Off)
    }

    /// Whether two tasks were declared parallel-safe.
    pub fn may_run_parallel(&self, a: &str, b: &str) -> bool {
        self.relations.iter().any(|r| match r {
            Relation::Parallel(x, y) | Relation::Overlap(x, y) => {
                (x == a && y == b) || (x == b && y == a)
            }
            Relation::Serial(..) => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tier() -> TaskGraphBuilder {
        TaskGraphBuilder::new()
            .task(TaskDef::new("collect").code("c"))
            .task(TaskDef::new("recognize").code("r").parent("collect"))
    }

    #[test]
    fn builds_and_orders() {
        let g = two_tier().build().unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.roots(), vec!["collect"]);
        assert_eq!(g.children("collect"), vec!["recognize"]);
        assert_eq!(g.topological_names(), vec!["collect", "recognize"]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = TaskGraphBuilder::new()
            .task(TaskDef::new("a"))
            .task(TaskDef::new("a"))
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::DuplicateTask("a".into()));
    }

    #[test]
    fn unknown_parent_rejected() {
        let err = TaskGraphBuilder::new()
            .task(TaskDef::new("a").parent("ghost"))
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::UnknownTask("ghost".into()));
    }

    #[test]
    fn self_parent_rejected() {
        let err = TaskGraphBuilder::new()
            .task(TaskDef::new("a").parent("a"))
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::SelfParent("a".into()));
    }

    #[test]
    fn cycles_rejected() {
        let err = TaskGraphBuilder::new()
            .task(TaskDef::new("a").parent("b"))
            .task(TaskDef::new("b").parent("a"))
            .build()
            .unwrap_err();
        assert!(matches!(err, GraphError::Cycle(_)));
    }

    #[test]
    fn serial_relation_participates_in_cycle_check() {
        let err = two_tier()
            .serial("recognize", "collect") // contradicts the parent edge
            .build()
            .unwrap_err();
        assert!(matches!(err, GraphError::Cycle(_)));
    }

    #[test]
    fn unknown_relation_target_rejected() {
        let err = two_tier().parallel("collect", "ghost").build().unwrap_err();
        assert_eq!(err, GraphError::UnknownTask("ghost".into()));
    }

    #[test]
    fn unknown_directive_target_rejected() {
        let err = two_tier()
            .directive(Directive::Persist {
                task: "ghost".into(),
            })
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::UnknownTask("ghost".into()));
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(
            TaskGraphBuilder::new().build().unwrap_err(),
            GraphError::Empty
        );
    }

    #[test]
    fn directives_are_queryable() {
        let g = two_tier()
            .directive(Directive::Place {
                task: "collect".into(),
                site: PlacementSite::Edge,
            })
            .directive(Directive::Isolate {
                task: "recognize".into(),
            })
            .directive(Directive::Persist {
                task: "recognize".into(),
            })
            .directive(Directive::Learn {
                task: "recognize".into(),
                scope: LearnScope::Swarm,
            })
            .build()
            .unwrap();
        assert_eq!(g.pinned_site("collect"), Some(PlacementSite::Edge));
        assert_eq!(g.pinned_site("recognize"), None);
        assert!(g.is_isolated("recognize"));
        assert!(!g.is_isolated("collect"));
        assert!(g.is_persisted("recognize"));
        assert_eq!(g.learn_scope("recognize"), LearnScope::Swarm);
        assert_eq!(g.learn_scope("collect"), LearnScope::Off);
    }

    #[test]
    fn parallel_relation_is_symmetric() {
        let g = two_tier().parallel("collect", "recognize").build().unwrap();
        assert!(g.may_run_parallel("collect", "recognize"));
        assert!(g.may_run_parallel("recognize", "collect"));
        assert!(!g.may_run_parallel("collect", "collect"));
    }

    #[test]
    fn topological_order_respects_all_edges() {
        let g = TaskGraphBuilder::new()
            .task(TaskDef::new("a"))
            .task(TaskDef::new("b").parent("a"))
            .task(TaskDef::new("c").parent("a"))
            .task(TaskDef::new("d").parent("b").parent("c"))
            .serial("b", "c")
            .build()
            .unwrap();
        let order = g.topological_names();
        let pos = |n: &str| order.iter().position(|&x| x == n).unwrap();
        assert!(pos("a") < pos("b"));
        assert!(pos("b") < pos("c"), "serial(b, c) must order them");
        assert!(pos("c") < pos("d"));
    }

    #[test]
    fn error_display_is_lowercase_and_concise() {
        let e = GraphError::Cycle("x".into());
        let s = e.to_string();
        assert!(s.starts_with("dependency cycle"));
    }
}

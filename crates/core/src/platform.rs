//! The evaluated system configurations.
//!
//! The paper compares HiveMind against fully centralized platforms (IaaS
//! and FaaS backends) and a fully distributed edge platform, plus the
//! Fig. 13 ablations that enable individual HiveMind techniques on the
//! baselines.

use hivemind_accel::rpc_accel::accelerated_rpc_profile;
use hivemind_faas::cluster::ClusterParams;
use hivemind_faas::dataplane::ExchangeProtocol;
use hivemind_faas::iaas::FixedPoolParams;
use hivemind_net::rpc::RpcProfile;

/// A swarm-coordination platform configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// All computation in the cloud on statically reserved resources of
    /// cost equal to the FaaS deployment (Fig. 1's "Centralized IaaS").
    CentralizedIaaS,
    /// All computation in the cloud on OpenWhisk-style serverless.
    CentralizedFaaS,
    /// All computation on the devices; only final outputs are uploaded.
    DistributedEdge,
    /// The full HiveMind stack: hybrid placement, HiveMind scheduler,
    /// long keep-alive, FPGA remote memory + RPC acceleration, straggler
    /// mitigation.
    HiveMind,
    /// Ablation: centralized FaaS + network (RPC) acceleration only.
    CentralizedNetAccel,
    /// Ablation: centralized FaaS + network + remote-memory acceleration.
    CentralizedNetRemoteMem,
    /// Ablation: distributed edge, but result transfers use accelerated
    /// RPCs.
    DistributedNetAccel,
    /// Ablation: HiveMind's software stack (hybrid placement, scheduler,
    /// keep-alive) without any hardware acceleration.
    HiveMindNoAccel,
}

impl Platform {
    /// The main four platforms of Figs. 1/11/14.
    pub const MAIN: [Platform; 4] = [
        Platform::CentralizedIaaS,
        Platform::CentralizedFaaS,
        Platform::DistributedEdge,
        Platform::HiveMind,
    ];

    /// The Fig. 13 ablation lineup.
    pub const ABLATIONS: [Platform; 6] = [
        Platform::HiveMind,
        Platform::CentralizedNetAccel,
        Platform::CentralizedNetRemoteMem,
        Platform::DistributedEdge,
        Platform::DistributedNetAccel,
        Platform::HiveMindNoAccel,
    ];

    /// Display label (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            Platform::CentralizedIaaS => "Centralized IaaS",
            Platform::CentralizedFaaS => "Centralized Cloud",
            Platform::DistributedEdge => "Distributed Edge",
            Platform::HiveMind => "HiveMind",
            Platform::CentralizedNetAccel => "Centr-Net Accel",
            Platform::CentralizedNetRemoteMem => "+Remote Mem",
            Platform::DistributedNetAccel => "Distr-Net Accel",
            Platform::HiveMindNoAccel => "HiveMind-No Accel",
        }
    }

    /// Whether per-frame tasks run on the devices by default.
    pub fn is_distributed(self) -> bool {
        matches!(
            self,
            Platform::DistributedEdge | Platform::DistributedNetAccel
        )
    }

    /// Whether placement is hybrid (HiveMind's synthesis decides per app).
    pub fn is_hybrid(self) -> bool {
        matches!(self, Platform::HiveMind | Platform::HiveMindNoAccel)
    }

    /// Whether cloud execution uses the statically provisioned pool.
    pub fn uses_fixed_pool(self) -> bool {
        self == Platform::CentralizedIaaS
    }

    /// Whether the server-side RPC stack is FPGA-offloaded.
    pub fn network_accelerated(self) -> bool {
        matches!(
            self,
            Platform::HiveMind
                | Platform::CentralizedNetAccel
                | Platform::CentralizedNetRemoteMem
                | Platform::DistributedNetAccel
        )
    }

    /// Whether function data exchange uses the remote-memory fabric.
    pub fn remote_memory(self) -> bool {
        matches!(self, Platform::HiveMind | Platform::CentralizedNetRemoteMem)
    }

    /// Server-side per-message RPC processing profile.
    pub fn cloud_rpc_profile(self) -> RpcProfile {
        if self.network_accelerated() {
            accelerated_rpc_profile()
        } else {
            RpcProfile::software()
        }
    }

    /// FaaS cluster parameters, or `None` when the platform does not run
    /// a serverless cluster (fixed pool / pure distributed upload sink).
    pub fn cluster_params(
        self,
        servers: u32,
        cores_per_server: u32,
        fault_rate: f64,
    ) -> Option<ClusterParams> {
        let exchange = if self.remote_memory() {
            ExchangeProtocol::RemoteMemory
        } else {
            ExchangeProtocol::CouchDb
        };
        let base = ClusterParams {
            servers,
            cores_per_server,
            fault_rate,
            exchange_in: exchange,
            exchange_out: exchange,
            ..ClusterParams::default()
        };
        match self {
            Platform::CentralizedIaaS
            | Platform::DistributedEdge
            | Platform::DistributedNetAccel => None,
            Platform::CentralizedFaaS
            | Platform::CentralizedNetAccel
            | Platform::CentralizedNetRemoteMem => Some(base),
            Platform::HiveMind => Some(ClusterParams {
                policy: hivemind_faas::scheduler::SchedulerPolicy::HiveMind,
                container: hivemind_faas::container::ContainerParams::hivemind(),
                straggler_mitigation: true,
                ..base
            }),
            Platform::HiveMindNoAccel => Some(ClusterParams {
                policy: hivemind_faas::scheduler::SchedulerPolicy::HiveMind,
                container: hivemind_faas::container::ContainerParams::hivemind(),
                straggler_mitigation: true,
                exchange_in: ExchangeProtocol::CouchDb,
                exchange_out: ExchangeProtocol::CouchDb,
                ..base
            }),
        }
    }

    /// Fixed-pool parameters for the IaaS platform: reserved cores of
    /// "equal cost" to the FaaS deployment — we give it a fixed fraction
    /// of the cluster (the FaaS deployment's average occupancy).
    pub fn fixed_pool_params(self, total_cores: u32) -> FixedPoolParams {
        FixedPoolParams {
            // "Equal cost" to the FaaS deployment's average occupancy:
            // a small reserved slice of the cluster, which saturates under
            // swarm-scale load exactly as Fig. 5a/5b's fixed deployments do.
            workers: (total_cores / 160).max(2),
            exchange: ExchangeProtocol::DirectRpc,
            ..FixedPoolParams::default()
        }
    }

    /// The fraction of sensor payload shipped to the cloud for
    /// cloud-placed per-frame tasks. Hybrid platforms decompose tasks so
    /// a cheap on-device tier filters non-salient data first (Sec. 4.2's
    /// hybrid execution), cutting uplink traffic roughly in half.
    pub fn upload_fraction(self) -> f64 {
        if self.is_hybrid() {
            0.55
        } else {
            1.0
        }
    }
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn main_platforms_cover_fig1() {
        assert_eq!(Platform::MAIN.len(), 4);
        assert_eq!(Platform::ABLATIONS.len(), 6);
    }

    #[test]
    fn hivemind_uses_all_techniques() {
        let p = Platform::HiveMind;
        assert!(p.is_hybrid());
        assert!(p.network_accelerated());
        assert!(p.remote_memory());
        let params = p.cluster_params(12, 40, 0.0).unwrap();
        assert!(params.straggler_mitigation);
        assert_eq!(params.exchange_in, ExchangeProtocol::RemoteMemory);
    }

    #[test]
    fn no_accel_keeps_software_paths() {
        let p = Platform::HiveMindNoAccel;
        assert!(p.is_hybrid());
        assert!(!p.network_accelerated());
        assert!(!p.remote_memory());
        let params = p.cluster_params(12, 40, 0.0).unwrap();
        assert_eq!(params.exchange_in, ExchangeProtocol::CouchDb);
    }

    #[test]
    fn distributed_platforms_have_no_cluster() {
        assert!(Platform::DistributedEdge
            .cluster_params(12, 40, 0.0)
            .is_none());
        assert!(Platform::DistributedNetAccel
            .cluster_params(12, 40, 0.0)
            .is_none());
        assert!(Platform::CentralizedIaaS
            .cluster_params(12, 40, 0.0)
            .is_none());
    }

    #[test]
    fn accelerated_rpc_is_cheaper() {
        let fast = Platform::HiveMind.cloud_rpc_profile();
        let slow = Platform::CentralizedFaaS.cloud_rpc_profile();
        assert!(slow.mean_one_way_secs(1024) > fast.mean_one_way_secs(1024) * 10.0);
    }

    #[test]
    fn hybrid_platforms_filter_uploads() {
        assert!(Platform::HiveMind.upload_fraction() < 1.0);
        assert_eq!(Platform::CentralizedFaaS.upload_fraction(), 1.0);
    }

    #[test]
    fn iaas_pool_sized_below_cluster() {
        let pool = Platform::CentralizedIaaS.fixed_pool_params(480);
        assert!(pool.workers >= 2 && pool.workers < 480);
    }
}

//! Deterministic parallel replicate execution.
//!
//! Every distribution-style figure repeats the same experiment under
//! several derived seeds. This module centralizes that pattern:
//!
//! * [`Runner`] — a scoped thread pool that maps a list of experiment
//!   configurations (or any work items) across workers while returning
//!   results **in input order**, so output is bit-identical no matter how
//!   the OS schedules the workers.
//! * [`Runner::run_replicates`] — derives one seed per replicate from the
//!   base configuration's root seed (SplitMix64 derivation, see
//!   [`hivemind_sim::rng::replicate_seed`]) and collects the outcomes
//!   into a [`RunSet`].
//! * [`RunSet`] — per-replicate outcomes plus order-independent merged
//!   summaries, with deterministic JSON output.
//!
//! Thread count comes from `HIVEMIND_THREADS` (default: available
//! parallelism; `1` = fully sequential in the calling thread). Because
//! each replicate's simulation is a pure function of its configuration,
//! changing the thread count changes wall-clock time only — never a
//! single output byte.

use std::sync::atomic::{AtomicUsize, Ordering};

use hivemind_sim::rng::replicate_seed;

/// Workers currently fanning out replicates, published so the sharded
/// engine can divide the machine between the two nesting levels: with
/// `w` replicate workers active, each engine's shard phase takes at most
/// `cores / w` threads (shard×replicate budget). Zero / one means no
/// outer fan-out is active.
static OUTER_WORKERS: AtomicUsize = AtomicUsize::new(1);

/// The number of replicate workers currently active (≥ 1).
pub(crate) fn outer_workers() -> usize {
    OUTER_WORKERS.load(Ordering::Relaxed).max(1)
}

fn set_outer_workers(n: usize) {
    OUTER_WORKERS.store(n.max(1), Ordering::Relaxed);
}
use hivemind_sim::stats::Summary;

use crate::experiment::{Experiment, ExperimentConfig};
use crate::metrics::{summary_json, BreakdownSummary, Outcome};

/// A deterministic parallel executor for experiment fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runner {
    threads: usize,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::from_env()
    }
}

impl Runner {
    /// A runner honoring `HIVEMIND_THREADS` (default: available
    /// parallelism, `1` = sequential).
    pub fn from_env() -> Runner {
        Runner {
            threads: threads_from(std::env::var("HIVEMIND_THREADS").ok().as_deref()),
        }
    }

    /// A runner with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Runner {
        Runner {
            threads: threads.max(1),
        }
    }

    /// The worker count this runner fans out across.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` on up to [`Runner::threads`] scoped workers,
    /// returning results in input order.
    ///
    /// Work is distributed by an atomic cursor (work stealing), so slow
    /// items don't serialize behind fast ones; each worker tags results
    /// with their input index and the tags restore input order afterwards.
    /// The result is therefore independent of scheduling. A panic in `f`
    /// propagates to the caller.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        // Publish the fan-out width so nested shard phases shrink their
        // thread budget instead of oversubscribing the machine.
        set_outer_workers(workers);
        let cursor = AtomicUsize::new(0);
        let parts: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(i, &items[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });
        set_outer_workers(1);
        // O(n) order restoration: every input index is produced exactly
        // once, so results drop straight into their slots — no sort.
        let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        for (i, u) in parts.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "index produced twice");
            slots[i] = Some(u);
        }
        slots
            .into_iter()
            .map(|s| s.expect("work-stealing cursor covers every index"))
            .collect()
    }

    /// Runs each configuration (a sweep) and returns the outcomes in
    /// configuration order.
    pub fn run_configs(&self, configs: &[ExperimentConfig]) -> Vec<Outcome> {
        self.map(configs, |_, cfg| Experiment::new(cfg.clone()).run())
    }

    /// Runs `replicates` copies of `base`, with per-replicate seeds
    /// derived from `base.seed`, and collects them into a [`RunSet`].
    pub fn run_replicates(&self, base: &ExperimentConfig, replicates: u64) -> RunSet {
        let seeds: Vec<u64> = (0..replicates)
            .map(|i| replicate_seed(base.seed, i))
            .collect();
        let configs: Vec<ExperimentConfig> = seeds.iter().map(|&s| base.clone().seed(s)).collect();
        let outcomes = self.run_configs(&configs);
        RunSet {
            root_seed: base.seed,
            seeds,
            outcomes,
        }
    }
}

/// Parses a `HIVEMIND_THREADS`-style value; `None`, empty, `0`, or
/// garbage all fall back to available parallelism.
fn threads_from(var: Option<&str>) -> usize {
    match var.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// The outcomes of a replicated experiment, in replicate order.
#[derive(Debug, Clone, Default)]
pub struct RunSet {
    root_seed: u64,
    seeds: Vec<u64>,
    outcomes: Vec<Outcome>,
}

impl RunSet {
    /// Builds a run set directly from parts (replicate order).
    pub fn from_parts(root_seed: u64, seeds: Vec<u64>, outcomes: Vec<Outcome>) -> RunSet {
        assert_eq!(seeds.len(), outcomes.len(), "one seed per outcome");
        RunSet {
            root_seed,
            seeds,
            outcomes,
        }
    }

    /// The root seed the replicate seeds were derived from.
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    /// Per-replicate seeds, in replicate order.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Per-replicate outcomes, in replicate order.
    pub fn outcomes(&self) -> &[Outcome] {
        &self.outcomes
    }

    /// Number of replicates.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// All task-latency breakdowns merged into one (order-independent).
    pub fn merged_tasks(&self) -> BreakdownSummary {
        let mut merged = BreakdownSummary::default();
        for o in &self.outcomes {
            merged.merge(&o.tasks);
        }
        merged
    }

    /// Median task latency in ms over the pooled samples.
    pub fn median_task_ms(&self) -> f64 {
        self.merged_tasks().total.median() * 1e3
    }

    /// p99 task latency in ms over the pooled samples.
    pub fn p99_task_ms(&self) -> f64 {
        self.merged_tasks().total.p99() * 1e3
    }

    /// Mission durations (seconds) across replicates.
    pub fn mission_durations(&self) -> Summary {
        self.outcomes
            .iter()
            .map(|o| o.mission.duration_secs)
            .collect()
    }

    /// Whether every replicate's mission completed.
    pub fn all_completed(&self) -> bool {
        self.outcomes.iter().all(|o| o.mission.completed)
    }

    /// Mean-of-means consumed battery percentage across replicates.
    pub fn mean_battery_pct(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| o.battery.mean_pct)
            .collect::<Summary>()
            .mean()
    }

    /// Per-replicate traces paired with their derived seeds, for runs
    /// whose base configuration enabled tracing. Replicates without a
    /// trace (tracing disabled) are skipped.
    pub fn traces(&self) -> impl Iterator<Item = (u64, &hivemind_sim::trace::Trace)> {
        self.seeds
            .iter()
            .zip(&self.outcomes)
            .filter_map(|(&seed, o)| o.trace.as_ref().map(|t| (seed, t)))
    }

    /// Worst consumed battery percentage across all replicates.
    pub fn max_battery_pct(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| o.battery.max_pct)
            .collect::<Summary>()
            .max()
    }

    /// Serializes the set — seeds, combined summaries, and every
    /// per-replicate outcome — as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "{{\"root_seed\":{},\"replicates\":{},\"seeds\":[",
            self.root_seed,
            self.len()
        ));
        for (i, s) in self.seeds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_string());
        }
        out.push_str("],\"combined\":{\"tasks_total\":");
        summary_json(&mut out, &self.merged_tasks().total);
        out.push_str(",\"mission_durations\":");
        summary_json(&mut out, &self.mission_durations());
        out.push_str("},\"outcomes\":[");
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&o.to_json());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use hivemind_apps::suite::App;

    fn base() -> ExperimentConfig {
        ExperimentConfig::single_app(App::WeatherAnalytics)
            .platform(Platform::CentralizedFaaS)
            .duration_secs(5.0)
            .seed(9)
    }

    #[test]
    fn threads_from_parses_and_falls_back() {
        assert_eq!(threads_from(Some("4")), 4);
        assert_eq!(threads_from(Some(" 2 ")), 2);
        assert_eq!(threads_from(Some("1")), 1);
        let default = threads_from(None);
        assert!(default >= 1);
        assert_eq!(threads_from(Some("0")), default);
        assert_eq!(threads_from(Some("lots")), default);
        assert_eq!(threads_from(Some("")), default);
    }

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        for threads in [1, 3, 8] {
            let out = Runner::with_threads(threads).map(&items, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_tiny_inputs() {
        let r = Runner::with_threads(8);
        assert_eq!(r.map(&[] as &[u64], |_, &x| x), Vec::<u64>::new());
        assert_eq!(r.map(&[7u64], |_, &x| x + 1), vec![8]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn map_propagates_worker_panics() {
        Runner::with_threads(4).map(&[0u64, 1, 2, 3, 4, 5], |i, _| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn replicates_use_distinct_derived_seeds() {
        let set = Runner::with_threads(1).run_replicates(&base(), 4);
        assert_eq!(set.len(), 4);
        assert_eq!(set.root_seed(), 9);
        let mut seeds = set.seeds().to_vec();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4, "derived seeds are unique");
        assert!(!set.seeds().contains(&9), "replicates never reuse the root");
    }

    #[test]
    fn parallel_equals_sequential_byte_for_byte() {
        let seq = Runner::with_threads(1).run_replicates(&base(), 3);
        let par = Runner::with_threads(8).run_replicates(&base(), 3);
        assert_eq!(seq.to_json(), par.to_json());
    }

    #[test]
    fn merged_tasks_pool_every_sample() {
        let set = Runner::with_threads(2).run_replicates(&base(), 3);
        let total: usize = set.outcomes().iter().map(|o| o.tasks.len()).sum();
        assert_eq!(set.merged_tasks().len(), total);
        assert!(set.median_task_ms() > 0.0);
        assert!(set.p99_task_ms() >= set.median_task_ms());
    }
}

//! Experiment outcome records.
//!
//! Every figure reduces to the quantities collected here: task-latency
//! distributions with the paper's four-way breakdown, mission-level
//! results (duration, completion, detection quality), bandwidth, and
//! battery.

use hivemind_apps::learning::DetectionQuality;
use hivemind_sim::stats::{Summary, TimeSeries};
use hivemind_sim::time::SimDuration;
use hivemind_sim::trace::Trace;

use crate::engine::TaskRecord;

/// Latency summaries split by the paper's breakdown categories.
#[derive(Debug, Clone, Default)]
pub struct BreakdownSummary {
    /// End-to-end task latency.
    pub total: Summary,
    /// Network (wire + RPC processing).
    pub network: Summary,
    /// Management (control path, scheduling, queueing).
    pub management: Summary,
    /// Container instantiation.
    pub instantiation: Summary,
    /// Data-plane I/O.
    pub data_io: Summary,
    /// Execution.
    pub exec: Summary,
}

impl BreakdownSummary {
    /// Accumulates one task record.
    pub fn record(&mut self, r: &TaskRecord) {
        self.total.record_duration(r.latency());
        self.network.record_duration(r.network);
        self.management
            .record_duration(r.management + r.instantiation);
        self.instantiation.record_duration(r.instantiation);
        self.data_io.record_duration(r.data_io);
        self.exec.record_duration(r.exec);
    }

    /// Merges another breakdown into this one, category by category.
    ///
    /// Merging is order-independent up to sample order, so the quantile,
    /// mean, and extrema statistics of the result do not depend on the
    /// order replicates are merged in.
    pub fn merge(&mut self, other: &BreakdownSummary) {
        self.total.merge(&other.total);
        self.network.merge(&other.network);
        self.management.merge(&other.management);
        self.instantiation.merge(&other.instantiation);
        self.data_io.merge(&other.data_io);
        self.exec.merge(&other.exec);
    }

    /// Number of tasks recorded.
    pub fn len(&self) -> usize {
        self.total.len()
    }

    /// Whether any tasks were recorded.
    pub fn is_empty(&self) -> bool {
        self.total.is_empty()
    }

    /// Mean fraction of latency spent in the network (Fig. 3a's metric).
    pub fn network_fraction(&self) -> f64 {
        let t = self.total.mean();
        if t == 0.0 {
            0.0
        } else {
            self.network.mean() / t
        }
    }

    /// Mean fraction spent in management + instantiation.
    pub fn management_fraction(&self) -> f64 {
        let t = self.total.mean();
        if t == 0.0 {
            0.0
        } else {
            self.management.mean() / t
        }
    }

    /// Mean fraction spent in instantiation alone (Fig. 6b's metric).
    pub fn instantiation_fraction(&self) -> f64 {
        let t = self.total.mean();
        if t == 0.0 {
            0.0
        } else {
            self.instantiation.mean() / t
        }
    }
}

/// Bandwidth usage over the edge↔cloud boundary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BandwidthStats {
    /// Mean rate, MB/s.
    pub mean_mbps: f64,
    /// 99th-percentile windowed rate, MB/s.
    pub p99_mbps: f64,
    /// Total volume, MB.
    pub total_mb: f64,
}

/// Battery consumption across the swarm at the end of an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BatteryStats {
    /// Mean consumed battery, percent of capacity.
    pub mean_pct: f64,
    /// Worst device, percent.
    pub max_pct: f64,
    /// Devices that fully depleted mid-mission.
    pub depleted: u32,
}

/// Fault-recovery metrics, populated only when the experiment ran with an
/// active [`FaultPlan`] (so fault-free outcomes serialize byte-identically
/// to pre-fault-plane builds).
///
/// [`FaultPlan`]: hivemind_sim::faults::FaultPlan
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecoveryStats {
    /// Wireless retransmission rounds forced by packet loss.
    pub packets_lost: u64,
    /// Transfers held back by a disconnect window or partition.
    pub transfers_held: u64,
    /// Cloud servers that crashed.
    pub server_crashes: u32,
    /// In-flight invocations lost to server crashes.
    pub invocations_lost: u64,
    /// Lost invocations rescheduled onto surviving servers.
    pub invocations_rescheduled: u64,
    /// Tasks that completed only after one or more fault respawns.
    pub tasks_retried: u64,
    /// Tasks abandoned (give-up retry policy exhausted, or no path to
    /// completion remained).
    pub tasks_lost: u64,
    /// Devices that failed (scripted + stochastic MTBF).
    pub device_failures: u32,
    /// Primary-controller failovers.
    pub controller_failovers: u32,
    /// Mean time from fault injection to detection, seconds (heartbeat
    /// window for devices/controller, immediate for server crashes).
    pub mean_detection_secs: f64,
    /// Mean time from fault injection to restored service, seconds.
    pub mean_recovery_secs: f64,
    /// Completed tasks whose end-to-end latency exceeded the plan's SLO.
    pub slo_violations: u64,
    /// `slo_violations` over completed tasks (0 when no SLO was set).
    pub slo_violation_fraction: f64,
}

/// Overload-control metrics, populated only when the experiment ran with
/// an active [`OverloadPolicy`] (so unconfigured outcomes serialize
/// byte-identically to pre-overload-plane builds).
///
/// [`OverloadPolicy`]: hivemind_sim::overload::OverloadPolicy
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ShedStats {
    /// Cloud invocations refused by the admission plane, total.
    pub invocations_shed: u64,
    /// …because the bounded admission queue was full on arrival.
    pub shed_queue_full: u64,
    /// …because they waited past the queueing deadline.
    pub shed_deadline: u64,
    /// …because the app's circuit breaker was open (fail fast).
    pub shed_breaker: u64,
    /// Circuit-breaker open transitions (including re-opens from failed
    /// half-open probes).
    pub breaker_opens: u32,
    /// Total wall-clock the breakers spent open, seconds.
    pub breaker_open_secs: f64,
    /// Shed tasks re-routed to degraded on-device execution (brownout
    /// spillover).
    pub tasks_spilled: u64,
    /// Tasks abandoned outright because their cloud work was shed and no
    /// spillover was configured.
    pub tasks_shed: u64,
    /// Mean accuracy penalty over *completed* tasks, percent: spilled
    /// tasks pay the policy's degraded-accuracy cost, everything else
    /// pays zero.
    pub mean_accuracy_penalty_pct: f64,
    /// Transfers held at a link ingress by network backpressure.
    pub net_holds: u64,
}

/// Disconnected-operation metrics, populated only when the experiment ran
/// with an active [`DisconnectPolicy`] (so unconfigured outcomes serialize
/// byte-identically to pre-disconnect-plane builds).
///
/// [`DisconnectPolicy`]: hivemind_sim::disconnect::DisconnectPolicy
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReconnectStats {
    /// Reconnect reconciliation sessions run (one per healed partition).
    pub partitions: u32,
    /// Device lease expirations (one per device per merged partition
    /// window it went autonomous under).
    pub lease_expirations: u64,
    /// Cloud-bound tasks re-routed to degraded autonomous on-device
    /// execution after a lease expiry.
    pub tasks_degraded: u64,
    /// Update summaries buffered while disconnected.
    pub updates_buffered: u64,
    /// Buffered updates replayed exactly once at reconnect.
    pub updates_replayed: u64,
    /// Buffered updates evicted under the replay-ring bound (explicit
    /// expiry, never silent growth).
    pub updates_expired: u64,
    /// Replay offers the session watermark rejected as duplicates.
    pub duplicates_dropped: u64,
    /// Stale heartbeats re-armed at reconciliation instead of being read
    /// as device deaths.
    pub devices_rearmed: u64,
    /// Mean staleness of replayed updates (heal − buffered-at), seconds.
    pub mean_staleness_secs: f64,
    /// Mean accuracy penalty over degraded tasks, percent.
    pub mean_accuracy_penalty_pct: f64,
    /// High-water mark of transfers simultaneously held by partition
    /// windows in the fabric.
    pub held_high_water: u64,
    /// Held transfers tail-dropped at the fabric's partition hold bound.
    pub transfers_dropped: u64,
}

/// Mission-level outcome (end-to-end scenarios).
#[derive(Debug, Clone, PartialEq)]
pub struct MissionOutcome {
    /// Whether the mission ran to completion (false = battery death or
    /// timeout left work unfinished).
    pub completed: bool,
    /// Wall-clock mission duration, seconds.
    pub duration_secs: f64,
    /// Targets found / counted (tennis balls, unique people, goals).
    pub targets_found: u32,
    /// Ground-truth target count.
    pub targets_total: u32,
    /// Detection quality when the scenario exercises recognition.
    pub detection: Option<DetectionQuality>,
}

impl Default for MissionOutcome {
    fn default() -> Self {
        MissionOutcome {
            completed: true,
            duration_secs: 0.0,
            targets_found: 0,
            targets_total: 0,
            detection: None,
        }
    }
}

/// Full outcome of one experiment run.
#[derive(Debug, Clone, Default)]
pub struct Outcome {
    /// Task-latency summaries with breakdown.
    pub tasks: BreakdownSummary,
    /// Mission result (defaults for single-app runs: completed, duration
    /// = workload duration).
    pub mission: MissionOutcome,
    /// Edge↔cloud bandwidth.
    pub bandwidth: BandwidthStats,
    /// Swarm battery consumption.
    pub battery: BatteryStats,
    /// Concurrently active cloud functions over time (Fig. 5b/5c).
    pub active_tasks: TimeSeries,
    /// Container pool statistics `(warm_hits, cold_misses)`.
    pub container_stats: (u64, u64),
    /// Straggler respawns that won.
    pub stragglers_mitigated: u64,
    /// Functions that recovered from injected faults.
    pub faults_recovered: u64,
    /// Recovery metrics; `None` unless the run had an active fault plan.
    pub recovery: Option<RecoveryStats>,
    /// Overload-control metrics; `None` unless the run had an active
    /// overload policy.
    pub shed: Option<ShedStats>,
    /// Disconnected-operation metrics; `None` unless the run had an
    /// active disconnect policy.
    pub reconnect: Option<ReconnectStats>,
    /// Structured event trace, present when the experiment ran with
    /// [`crate::experiment::ExperimentConfig::trace`] enabled. Excluded
    /// from [`Outcome::to_json`] — export it via
    /// [`Trace::to_jsonl`] / [`Trace::to_chrome_trace`].
    pub trace: Option<Trace>,
}

impl Outcome {
    /// Median task latency in milliseconds (the paper's Fig. 4/11 axis).
    pub fn median_task_ms(&mut self) -> f64 {
        self.tasks.total.median() * 1e3
    }

    /// p99 task latency in milliseconds.
    pub fn p99_task_ms(&mut self) -> f64 {
        self.tasks.total.p99() * 1e3
    }

    /// Serializes the outcome to a deterministic JSON string.
    ///
    /// The environment has no serde, so this is hand-rolled: fixed key
    /// order, floats printed with their shortest round-trip
    /// representation (`{:?}`). Two outcomes serialize byte-identically
    /// iff their observable metrics are identical — the property the
    /// cross-thread-count determinism tests assert on.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"tasks\":");
        breakdown_json(&mut out, &self.tasks);
        out.push_str(",\"mission\":");
        mission_json(&mut out, &self.mission);
        out.push_str(&format!(
            ",\"bandwidth\":{{\"mean_mbps\":{:?},\"p99_mbps\":{:?},\"total_mb\":{:?}}}",
            self.bandwidth.mean_mbps, self.bandwidth.p99_mbps, self.bandwidth.total_mb
        ));
        out.push_str(&format!(
            ",\"battery\":{{\"mean_pct\":{:?},\"max_pct\":{:?},\"depleted\":{}}}",
            self.battery.mean_pct, self.battery.max_pct, self.battery.depleted
        ));
        out.push_str(&format!(
            ",\"container_stats\":[{},{}],\"stragglers_mitigated\":{},\"faults_recovered\":{}",
            self.container_stats.0,
            self.container_stats.1,
            self.stragglers_mitigated,
            self.faults_recovered
        ));
        // Emitted only for fault-plan runs, so fault-free output stays
        // byte-identical to pre-fault-plane builds.
        if let Some(r) = &self.recovery {
            out.push_str(&format!(
                ",\"recovery\":{{\"packets_lost\":{},\"transfers_held\":{},\"server_crashes\":{},\
                 \"invocations_lost\":{},\"invocations_rescheduled\":{},\"tasks_retried\":{},\
                 \"tasks_lost\":{},\"device_failures\":{},\"controller_failovers\":{},\
                 \"mean_detection_secs\":{:?},\"mean_recovery_secs\":{:?},\
                 \"slo_violations\":{},\"slo_violation_fraction\":{:?}}}",
                r.packets_lost,
                r.transfers_held,
                r.server_crashes,
                r.invocations_lost,
                r.invocations_rescheduled,
                r.tasks_retried,
                r.tasks_lost,
                r.device_failures,
                r.controller_failovers,
                r.mean_detection_secs,
                r.mean_recovery_secs,
                r.slo_violations,
                r.slo_violation_fraction
            ));
        }
        // Likewise emitted only for overload-policy runs, preserving
        // byte-identity for unconfigured experiments.
        if let Some(s) = &self.shed {
            out.push_str(&format!(
                ",\"shed\":{{\"invocations_shed\":{},\"shed_queue_full\":{},\
                 \"shed_deadline\":{},\"shed_breaker\":{},\"breaker_opens\":{},\
                 \"breaker_open_secs\":{:?},\"tasks_spilled\":{},\"tasks_shed\":{},\
                 \"mean_accuracy_penalty_pct\":{:?},\"net_holds\":{}}}",
                s.invocations_shed,
                s.shed_queue_full,
                s.shed_deadline,
                s.shed_breaker,
                s.breaker_opens,
                s.breaker_open_secs,
                s.tasks_spilled,
                s.tasks_shed,
                s.mean_accuracy_penalty_pct,
                s.net_holds
            ));
        }
        // Likewise emitted only for disconnect-policy runs, preserving
        // byte-identity for unconfigured experiments.
        if let Some(r) = &self.reconnect {
            out.push_str(&format!(
                ",\"reconnect\":{{\"partitions\":{},\"lease_expirations\":{},\
                 \"tasks_degraded\":{},\"updates_buffered\":{},\"updates_replayed\":{},\
                 \"updates_expired\":{},\"duplicates_dropped\":{},\"devices_rearmed\":{},\
                 \"mean_staleness_secs\":{:?},\"mean_accuracy_penalty_pct\":{:?},\
                 \"held_high_water\":{},\"transfers_dropped\":{}}}",
                r.partitions,
                r.lease_expirations,
                r.tasks_degraded,
                r.updates_buffered,
                r.updates_replayed,
                r.updates_expired,
                r.duplicates_dropped,
                r.devices_rearmed,
                r.mean_staleness_secs,
                r.mean_accuracy_penalty_pct,
                r.held_high_water,
                r.transfers_dropped
            ));
        }
        out.push('}');
        out
    }
}

/// Serializes a [`Summary`] as its order statistics (deterministic
/// regardless of sample insertion order).
pub(crate) fn summary_json(out: &mut String, s: &Summary) {
    out.push_str(&format!(
        "{{\"len\":{},\"mean\":{:?},\"median\":{:?},\"p99\":{:?},\"min\":{:?},\"max\":{:?}}}",
        s.len(),
        s.mean(),
        s.median(),
        s.p99(),
        s.min(),
        s.max()
    ));
}

fn breakdown_json(out: &mut String, b: &BreakdownSummary) {
    out.push('{');
    for (i, (key, s)) in [
        ("total", &b.total),
        ("network", &b.network),
        ("management", &b.management),
        ("instantiation", &b.instantiation),
        ("data_io", &b.data_io),
        ("exec", &b.exec),
    ]
    .into_iter()
    .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{key}\":"));
        summary_json(out, s);
    }
    out.push('}');
}

fn mission_json(out: &mut String, m: &MissionOutcome) {
    out.push_str(&format!(
        "{{\"completed\":{},\"duration_secs\":{:?},\"targets_found\":{},\"targets_total\":{}",
        m.completed, m.duration_secs, m.targets_found, m.targets_total
    ));
    match &m.detection {
        None => out.push_str(",\"detection\":null}"),
        Some(q) => out.push_str(&format!(
            ",\"detection\":{{\"correct_pct\":{:?},\"false_negative_pct\":{:?},\"false_positive_pct\":{:?}}}}}",
            q.correct_pct, q.false_negative_pct, q.false_positive_pct
        )),
    }
}

/// Helper: a duration as fractional seconds (for summary recording).
pub fn secs(d: SimDuration) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::PlacementSite;
    use hivemind_apps::suite::App;
    use hivemind_sim::time::SimTime;

    fn record(net_ms: u64, exec_ms: u64) -> TaskRecord {
        TaskRecord {
            task: 0,
            app: App::FaceRecognition,
            device: 0,
            label: 0,
            capture: SimTime::ZERO,
            done: SimTime::ZERO + SimDuration::from_millis(net_ms + exec_ms),
            placement: PlacementSite::Cloud,
            network: SimDuration::from_millis(net_ms),
            management: SimDuration::ZERO,
            instantiation: SimDuration::ZERO,
            data_io: SimDuration::ZERO,
            exec: SimDuration::from_millis(exec_ms),
            cold_start: false,
        }
    }

    #[test]
    fn breakdown_fractions() {
        let mut b = BreakdownSummary::default();
        b.record(&record(30, 70));
        b.record(&record(40, 60));
        assert_eq!(b.len(), 2);
        assert!((b.network_fraction() - 0.35).abs() < 1e-9);
        assert_eq!(b.management_fraction(), 0.0);
    }

    #[test]
    fn empty_breakdown_is_safe() {
        let b = BreakdownSummary::default();
        assert!(b.is_empty());
        assert_eq!(b.network_fraction(), 0.0);
        assert_eq!(b.instantiation_fraction(), 0.0);
    }

    #[test]
    fn outcome_latency_accessors() {
        let mut o = Outcome::default();
        o.tasks.record(&record(50, 50));
        assert!((o.median_task_ms() - 100.0).abs() < 1e-6);
        assert!((o.p99_task_ms() - 100.0).abs() < 1e-6);
    }
}

//! The evaluation scenarios expressed in the HiveMind DSL.
//!
//! The paper's users "express each scenario's task graph in HiveMind's DSL
//! and provide the necessary task logic, and the system determines how to
//! place tasks" (Sec. 5.5). This module is that layer for the four
//! evaluation missions: each [`Scenario`] compiles to a validated
//! [`TaskGraph`] (Listing 3 is `MovingPeople`), with per-task cost hints
//! taken from the benchmark suite, and
//! [`synthesized_placements`] runs the Fig. 8 exploration to produce the
//! placement the mission engine pins.

use std::collections::HashMap;

use hivemind_apps::scenario::Scenario;
use hivemind_apps::suite::App;

use crate::dsl::{Directive, LearnScope, PlacementSite, TaskDef, TaskGraph, TaskGraphBuilder};
use crate::platform::Platform;
use crate::synthesis::{explore, Objective, TaskCost};

/// The DSL task name for a phase (the planning phase keeps its DSL name).
fn phase_task_name(phase: &hivemind_apps::scenario::PhaseSpec) -> &'static str {
    if phase.name == "createRoute" {
        "createRoute"
    } else {
        task_name(phase.app)
    }
}

/// The DSL task name for a mission phase app.
fn task_name(app: App) -> &'static str {
    match app {
        App::FaceRecognition => "faceRecognition",
        App::TreeRecognition => "itemRecognition",
        App::DroneDetection => "droneDetection",
        App::ObstacleAvoidance => "obstacleAvoidance",
        App::PeopleDedup => "deduplication",
        App::Maze => "routeUpdate",
        App::WeatherAnalytics => "weatherAnalytics",
        App::SoilAnalytics => "soilAnalytics",
        App::TextRecognition => "panelRecognition",
        App::Slam => "slam",
    }
}

/// Compiles a scenario's phase pipeline into its DSL task graph.
///
/// Structure mirrors Listing 3: a `createRoute` planning root, an edge-
/// pinned `collectImage` sensor tier, per-frame phases as its children
/// (with `Parallel` declarations), and any barrier phase (`deduplication`)
/// as a `Synchronize`d, `Persist`ed final tier with swarm-wide learning on
/// its parent recognition stage.
pub fn scenario_graph(scenario: Scenario) -> TaskGraph {
    let mut builder = TaskGraphBuilder::new()
        .task(TaskDef::new("createRoute").code("tasks/create_route"))
        .task(
            TaskDef::new("collectImage")
                .code("tasks/collect_image")
                .arg("speed", "4")
                .arg("colorFormat", "color")
                .parent("createRoute"),
        );
    let mut per_frame: Vec<&'static str> = Vec::new();
    for phase in scenario.phases() {
        if phase.name == "createRoute" {
            continue;
        }
        let name = task_name(phase.app);
        let parent = if phase.sync_barrier {
            // The barrier phase consumes the last per-frame phase's output.
            *per_frame.last().unwrap_or(&"collectImage")
        } else {
            "collectImage"
        };
        builder = builder.task(
            TaskDef::new(name)
                .code(format!("tasks/{name}"))
                .parent(parent),
        );
        if phase.sync_barrier {
            builder = builder
                .directive(Directive::Synchronize {
                    task: name.into(),
                    condition: "all".into(),
                })
                .directive(Directive::Persist { task: name.into() })
                .serial(parent, name);
        } else {
            if let Some(&prev) = per_frame.last() {
                builder = builder.parallel(prev, name);
            }
            per_frame.push(name);
        }
        if phase.app.edge_pinned() {
            builder = builder.directive(Directive::Place {
                task: name.into(),
                site: PlacementSite::Edge,
            });
        }
        if matches!(phase.app, App::FaceRecognition | App::TreeRecognition) {
            builder = builder.directive(Directive::Learn {
                task: name.into(),
                scope: LearnScope::Swarm,
            });
        }
    }
    builder
        .build()
        .expect("scenario graphs are valid by construction")
}

/// Cost hints for a scenario's tasks, from the benchmark suite.
pub fn scenario_costs(scenario: Scenario) -> HashMap<String, TaskCost> {
    let mut costs = HashMap::new();
    costs.insert("createRoute".to_string(), TaskCost::from_app(App::Maze));
    costs.insert(
        "collectImage".to_string(),
        TaskCost {
            cloud_exec: 0.001,
            edge_slowdown: 1.0,
            // The full camera stream for one batch (8 fps × 2 MB).
            boundary_bytes: 16_000_000,
        },
    );
    for phase in scenario.phases() {
        costs.insert(
            phase_task_name(&phase).to_string(),
            TaskCost::from_app(phase.app),
        );
    }
    costs
}

/// Runs the Fig. 8 exploration for a scenario on a platform and returns
/// the winning placement per benchmark app.
///
/// Non-hybrid platforms do not consult the synthesizer: centralized
/// platforms force the cloud, distributed platforms force the edge (the
/// exploration is HiveMind's contribution).
pub fn synthesized_placements(scenario: Scenario, platform: Platform) -> Vec<(App, PlacementSite)> {
    let graph = scenario_graph(scenario);
    let phases = scenario.phases();
    if !platform.is_hybrid() {
        let forced = if platform.is_distributed() {
            PlacementSite::Edge
        } else {
            PlacementSite::Cloud
        };
        return phases
            .iter()
            .map(|p| {
                (
                    p.app,
                    graph.pinned_site(phase_task_name(p)).unwrap_or(forced),
                )
            })
            .collect();
    }
    let ranked = explore(
        &graph,
        &scenario_costs(scenario),
        platform,
        Objective::Performance,
    );
    let best = &ranked[0].placement;
    phases
        .iter()
        .map(|p| (p.app, best[phase_task_name(p)]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenario_graphs_build() {
        for s in Scenario::ALL {
            let g = scenario_graph(s);
            assert!(g.len() >= 3, "{s:?}");
            assert_eq!(g.roots(), vec!["createRoute"], "{s:?}");
            // The sensor tier is always present and always edge-bound.
            assert!(g.task("collectImage").is_some());
        }
    }

    #[test]
    fn moving_people_matches_listing3_shape() {
        let g = scenario_graph(Scenario::MovingPeople);
        assert_eq!(g.len(), 5);
        assert!(g.may_run_parallel("obstacleAvoidance", "faceRecognition"));
        assert_eq!(g.children("faceRecognition"), vec!["deduplication"]);
        assert_eq!(
            g.pinned_site("obstacleAvoidance"),
            Some(PlacementSite::Edge)
        );
        assert!(g.is_persisted("deduplication"));
        assert_eq!(
            g.learn_scope("faceRecognition"),
            crate::dsl::LearnScope::Swarm
        );
    }

    #[test]
    fn hivemind_placements_split_the_work() {
        let placements: HashMap<App, PlacementSite> =
            synthesized_placements(Scenario::MovingPeople, Platform::HiveMind)
                .into_iter()
                .collect();
        assert_eq!(placements[&App::ObstacleAvoidance], PlacementSite::Edge);
        assert_eq!(placements[&App::FaceRecognition], PlacementSite::Cloud);
        assert_eq!(placements[&App::PeopleDedup], PlacementSite::Cloud);
    }

    #[test]
    fn forced_platforms_skip_the_explorer() {
        let cen: HashMap<App, PlacementSite> =
            synthesized_placements(Scenario::StationaryItems, Platform::CentralizedFaaS)
                .into_iter()
                .collect();
        // Everything in the cloud except the Place-pinned safety task.
        assert_eq!(cen[&App::TreeRecognition], PlacementSite::Cloud);
        assert_eq!(cen[&App::ObstacleAvoidance], PlacementSite::Edge);

        let dist: HashMap<App, PlacementSite> =
            synthesized_placements(Scenario::StationaryItems, Platform::DistributedEdge)
                .into_iter()
                .collect();
        assert!(dist.values().all(|&s| s == PlacementSite::Edge));
    }

    #[test]
    fn car_scenarios_compile_too() {
        let hunt = scenario_graph(Scenario::TreasureHunt);
        assert!(hunt.task("panelRecognition").is_some());
        let maze = scenario_graph(Scenario::CarMaze);
        assert!(maze.task("routeUpdate").is_some());
    }

    #[test]
    fn costs_cover_every_task() {
        for s in Scenario::ALL {
            let g = scenario_graph(s);
            let costs = scenario_costs(s);
            for t in g.tasks() {
                assert!(costs.contains_key(&t.name), "{s:?}: {}", t.name);
            }
        }
    }
}

//! A small multi-server FIFO queue used for on-device execution.
//!
//! Each edge device exposes `cores` logical cores (one on the drones'
//! Cortex-A8, four on the cars' Raspberry Pi); on-board tasks queue FIFO
//! behind them. This is the mechanism that makes distributed execution
//! "poor and unpredictable" for heavy apps in Fig. 4: a 2.5 s on-board
//! recognition task arriving once per second grows the queue without
//! bound.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use hivemind_sim::time::{SimDuration, SimTime};

/// A c-server FIFO queue with caller-supplied service times.
///
/// # Examples
///
/// ```rust
/// use hivemind_core::engine::fifo::FifoServer;
/// use hivemind_sim::time::{SimDuration, SimTime};
///
/// let mut q = FifoServer::new(1);
/// q.submit(SimTime::ZERO, 1, SimDuration::from_secs(2));
/// q.submit(SimTime::ZERO, 2, SimDuration::from_secs(2));
/// let done = q.advance_to(SimTime::from_secs(10));
/// assert_eq!(done, vec![
///     (SimTime::from_secs(2), 1, SimDuration::ZERO),
///     (SimTime::from_secs(4), 2, SimDuration::from_secs(2)),
/// ]);
/// ```
#[derive(Debug, Clone)]
pub struct FifoServer {
    servers: u32,
    /// `(finish, seq, id, queued_for)` of running jobs.
    running: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    /// Waiting jobs: `(arrival, id, service)`.
    waiting: VecDeque<(SimTime, u64, SimDuration)>,
    /// Completions not yet handed out, ordered by `(finish, id)`.
    ready: BinaryHeap<Reverse<(SimTime, u64, SimDuration)>>,
    /// Queue delay per running id (parallel to `running` entries).
    /// Fixed-seed hashing: per-job insert/remove churn must rehash at
    /// workload-determined instants (see `hivemind_sim::hash`).
    delays: hivemind_sim::hash::DetHashMap<u64, SimDuration>,
    seq: u64,
    /// Total busy core-time accumulated (for energy accounting).
    busy_time: SimDuration,
}

impl FifoServer {
    /// Creates a queue with `servers` parallel servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn new(servers: u32) -> FifoServer {
        assert!(servers > 0, "need at least one server");
        FifoServer {
            servers,
            running: BinaryHeap::new(),
            waiting: VecDeque::new(),
            ready: BinaryHeap::new(),
            delays: hivemind_sim::hash::DetHashMap::default(),
            seq: 0,
            busy_time: SimDuration::ZERO,
        }
    }

    fn start(&mut self, at: SimTime, id: u64, service: SimDuration, queued: SimDuration) {
        let seq = self.seq;
        self.seq += 1;
        self.busy_time += service;
        self.running.push(Reverse((at + service, seq, id)));
        self.delays.insert(id, queued);
    }

    /// Processes completions up to `now`, starting queued jobs as servers
    /// free.
    #[allow(clippy::while_let_loop)] // the loop also breaks on `finish > now`
    fn pump(&mut self, now: SimTime) {
        loop {
            let Some(&Reverse((finish, _, id))) = self.running.peek() else {
                break;
            };
            if finish > now {
                break;
            }
            self.running.pop();
            let queued = self.delays.remove(&id).unwrap_or(SimDuration::ZERO);
            self.ready.push(Reverse((finish, id, queued)));
            if let Some((arrival, wid, service)) = self.waiting.pop_front() {
                debug_assert!(arrival <= finish);
                self.start(finish, wid, service, finish - arrival);
            }
        }
    }

    /// Submits job `id` with the given service time at `now`.
    pub fn submit(&mut self, now: SimTime, id: u64, service: SimDuration) {
        self.pump(now);
        if (self.running.len() as u32) < self.servers {
            self.start(now, id, service, SimDuration::ZERO);
        } else {
            self.waiting.push_back((now, id, service));
        }
    }

    /// Earliest pending completion, if any.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        let run = self.running.peek().map(|Reverse((t, _, _))| *t);
        let ready = self.ready.peek().map(|&Reverse((t, _, _))| t);
        match (run, ready) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Returns `(finish, id, queue_delay)` for jobs finished by `now`,
    /// in completion order.
    pub fn advance_to(&mut self, now: SimTime) -> Vec<(SimTime, u64, SimDuration)> {
        let mut out = Vec::new();
        self.advance_into(now, &mut out);
        out
    }

    /// [`FifoServer::advance_to`] into a caller-provided buffer, so a hot
    /// caller can reuse one allocation across calls.
    pub fn advance_into(&mut self, now: SimTime, out: &mut Vec<(SimTime, u64, SimDuration)>) {
        self.pump(now);
        while let Some(&Reverse((t, id, q))) = self.ready.peek() {
            if t > now {
                break;
            }
            self.ready.pop();
            out.push((t, id, q));
        }
    }

    /// Jobs queued or running.
    pub fn load(&self) -> usize {
        self.running.len() + self.waiting.len()
    }

    /// Total core-busy time accumulated (for compute-energy accounting).
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_servers_run_concurrently() {
        let mut q = FifoServer::new(2);
        q.submit(SimTime::ZERO, 1, SimDuration::from_secs(2));
        q.submit(SimTime::ZERO, 2, SimDuration::from_secs(2));
        q.submit(SimTime::ZERO, 3, SimDuration::from_secs(2));
        let done = q.advance_to(SimTime::from_secs(10));
        assert_eq!(done[0].0, SimTime::from_secs(2));
        assert_eq!(done[1].0, SimTime::from_secs(2));
        assert_eq!(done[2].0, SimTime::from_secs(4));
        assert_eq!(done[2].2, SimDuration::from_secs(2), "third job queued 2 s");
    }

    #[test]
    fn idle_gaps_do_not_queue() {
        let mut q = FifoServer::new(1);
        q.submit(SimTime::ZERO, 1, SimDuration::from_secs(1));
        q.submit(SimTime::from_secs(5), 2, SimDuration::from_secs(1));
        let done = q.advance_to(SimTime::from_secs(10));
        assert_eq!(done[1].0, SimTime::from_secs(6));
        assert_eq!(done[1].2, SimDuration::ZERO);
    }

    #[test]
    fn overload_grows_queue_unboundedly() {
        let mut q = FifoServer::new(1);
        // 2.5 s tasks arriving every second: the distributed-edge death
        // spiral of Fig. 4.
        for i in 0..20u64 {
            q.submit(SimTime::from_secs(i), i, SimDuration::from_millis(2500));
        }
        let done = q.advance_to(SimTime::MAX);
        assert_eq!(done.len(), 20);
        let last = done.last().unwrap();
        // Last completes at 20 × 2.5 s = 50 s, having queued ~30 s.
        assert_eq!(last.0, SimTime::from_secs(50));
        assert!(last.2 > SimDuration::from_secs(25));
    }

    #[test]
    fn busy_time_accumulates() {
        let mut q = FifoServer::new(4);
        for i in 0..3u64 {
            q.submit(SimTime::ZERO, i, SimDuration::from_secs(1));
        }
        let _ = q.advance_to(SimTime::MAX);
        assert_eq!(q.busy_time(), SimDuration::from_secs(3));
    }

    #[test]
    fn next_wakeup_tracks_earliest() {
        let mut q = FifoServer::new(1);
        assert_eq!(q.next_wakeup(), None);
        q.submit(SimTime::ZERO, 1, SimDuration::from_secs(3));
        assert_eq!(q.next_wakeup(), Some(SimTime::from_secs(3)));
    }

    #[test]
    fn load_counts_running_and_waiting() {
        let mut q = FifoServer::new(1);
        q.submit(SimTime::ZERO, 1, SimDuration::from_secs(1));
        q.submit(SimTime::ZERO, 2, SimDuration::from_secs(1));
        assert_eq!(q.load(), 2);
        let _ = q.advance_to(SimTime::MAX);
        assert_eq!(q.load(), 0);
    }
}

//! Program synthesis for task placement (Sec. 4.2, Fig. 8).
//!
//! From a user's task graph, HiveMind "creates all — *meaningful* —
//! execution models, where part or all of the computation is placed on
//! the edge devices", generates the cross-tier communication APIs for
//! each, profiles them, and presents the Pareto set to the user (or picks
//! one satisfying their constraints). This module implements exactly that
//! pipeline over the [`TaskGraph`]:
//!
//! 1. [`enumerate_placements`] — all 2^n assignments, pruned by the
//!    "meaningful" rules (sensor-producing tasks never move to the cloud,
//!    `Place` pins are honored).
//! 2. [`bindings`] — the synthesized API for each adjacent task pair:
//!    Thrift-style RPC across the edge/cloud boundary, the serverless
//!    data plane inside the cloud, in-memory inside a device.
//! 3. [`estimate`] — an analytic latency/energy profile of a candidate
//!    (harnesses may replace this with full simulation).
//! 4. [`explore`] — ties it together and ranks candidates under a
//!    [`Objective`].

use std::collections::HashMap;

use hivemind_apps::suite::App;

use crate::dsl::{PlacementSite, TaskGraph};
use crate::platform::Platform;

/// A complete placement: task name → site.
pub type Placement = HashMap<String, PlacementSite>;

/// The synthesized communication binding for one graph edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binding {
    /// Apache-Thrift-style RPC between an edge device and the cloud (the
    /// synthesizer emits C++ stubs on the testbed).
    CrossTierRpc,
    /// OpenWhisk function interface + the platform data plane between two
    /// cloud functions.
    ServerlessDataPlane,
    /// Shared-memory handoff between two tasks on the same device.
    OnDevice,
}

/// Heuristics marking tasks that *produce* sensor data (they cannot run
/// in the cloud — "discarding execution models that would not make sense
/// practically, e.g., collecting sensor data in the cloud").
pub fn is_sensor_task(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    ["collect", "capture", "sensor", "camera"]
        .iter()
        .any(|k| lower.contains(k))
}

/// Enumerates all meaningful placements of `graph`.
///
/// Pruning rules:
/// * `Place`-pinned tasks keep their pinned site;
/// * sensor-producing tasks stay on the edge;
/// * everything else may go either way.
///
/// For a 2-tier graph `A → B` with no pins this returns the paper's four
/// models (`A_cloud→B_cloud`, `A_edge→B_cloud`, …).
pub fn enumerate_placements(graph: &TaskGraph) -> Vec<Placement> {
    let tasks = graph.tasks();
    let mut free: Vec<&str> = Vec::new();
    let mut fixed: Placement = HashMap::new();
    for t in tasks {
        if let Some(site) = graph.pinned_site(&t.name) {
            fixed.insert(t.name.clone(), site);
        } else if is_sensor_task(&t.name) {
            fixed.insert(t.name.clone(), PlacementSite::Edge);
        } else {
            free.push(&t.name);
        }
    }
    let n = free.len();
    assert!(n <= 20, "placement enumeration beyond 2^20 is impractical");
    let mut out = Vec::with_capacity(1 << n);
    for mask in 0u32..(1 << n) {
        let mut p = fixed.clone();
        for (i, name) in free.iter().enumerate() {
            let site = if mask & (1 << i) != 0 {
                PlacementSite::Cloud
            } else {
                PlacementSite::Edge
            };
            p.insert((*name).to_string(), site);
        }
        out.push(p);
    }
    out
}

/// The synthesized binding for each parent→child edge under `placement`.
///
/// # Panics
///
/// Panics if the placement does not cover every task in the graph.
pub fn bindings(graph: &TaskGraph, placement: &Placement) -> Vec<(String, String, Binding)> {
    let mut out = Vec::new();
    for t in graph.tasks() {
        for p in &t.parents {
            let ps = placement[p.as_str()];
            let cs = placement[t.name.as_str()];
            let b = match (ps, cs) {
                (PlacementSite::Cloud, PlacementSite::Cloud) => Binding::ServerlessDataPlane,
                (PlacementSite::Edge, PlacementSite::Edge) => Binding::OnDevice,
                _ => Binding::CrossTierRpc,
            };
            out.push((p.clone(), t.name.clone(), b));
        }
    }
    out
}

/// Per-task cost hints used by the analytic profiler. Defaults derive
/// from the benchmark suite when a task maps to a known app.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCost {
    /// Mean execution time on a cloud core, seconds.
    pub cloud_exec: f64,
    /// On-device slowdown multiplier.
    pub edge_slowdown: f64,
    /// Bytes this task's input must move if it crosses the boundary.
    pub boundary_bytes: u64,
}

impl TaskCost {
    /// Cost hints from a benchmark app.
    pub fn from_app(app: App) -> TaskCost {
        let p = app.cloud_profile();
        TaskCost {
            cloud_exec: p.exec.mean_secs(),
            edge_slowdown: app.edge_slowdown(),
            boundary_bytes: p.input_bytes,
        }
    }
}

/// Estimated profile of one candidate placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateProfile {
    /// Predicted end-to-end latency per pipeline invocation, seconds.
    pub latency: f64,
    /// Predicted edge energy per invocation, joules.
    pub edge_energy: f64,
    /// Predicted cloud core-seconds per invocation (the cost proxy).
    pub cloud_core_secs: f64,
}

/// What the user optimizes for (their DSL-level constraint).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Minimize latency.
    Performance,
    /// Minimize device energy.
    Power,
    /// Minimize cloud cost.
    Cost,
    /// Minimize latency subject to an energy bound (joules/invocation).
    PerformanceUnderPowerBudget {
        /// Maximum edge energy per invocation.
        max_edge_energy: f64,
    },
}

/// Analytic cost model for one candidate (unloaded; the experiment
/// harness refines the winner by simulation).
pub fn estimate(
    graph: &TaskGraph,
    placement: &Placement,
    costs: &HashMap<String, TaskCost>,
    platform: Platform,
) -> CandidateProfile {
    // Calibration constants mirroring the substrates' defaults.
    const WIFI_BYTES_PER_SEC: f64 = 867e6 / 8.0;
    const RPC_OVERHEAD: f64 = 120e-6;
    const FAAS_OVERHEAD: f64 = 0.030; // management + mixed instantiation
    const EDGE_COMPUTE_W: f64 = 3.5;
    const RADIO_J_PER_BYTE: f64 = 4.0e-7;

    let mut latency = 0.0;
    let mut edge_energy = 0.0;
    let mut cloud_core_secs = 0.0;
    for name in graph.topological_names() {
        let cost = costs.get(name).copied().unwrap_or(TaskCost {
            cloud_exec: 0.05,
            edge_slowdown: 5.0,
            boundary_bytes: 100_000,
        });
        match placement[name] {
            PlacementSite::Cloud => {
                latency += cost.cloud_exec + FAAS_OVERHEAD;
                cloud_core_secs += cost.cloud_exec;
            }
            PlacementSite::Edge => {
                let t = cost.cloud_exec * cost.edge_slowdown;
                latency += t;
                edge_energy += t * EDGE_COMPUTE_W;
            }
        }
    }
    for (_, child, binding) in bindings(graph, placement) {
        let bytes = costs
            .get(child.as_str())
            .map(|c| c.boundary_bytes)
            .unwrap_or(100_000) as f64;
        match binding {
            Binding::CrossTierRpc => {
                let wire = bytes * platform.upload_fraction() / WIFI_BYTES_PER_SEC;
                latency += wire + RPC_OVERHEAD;
                edge_energy += bytes * platform.upload_fraction() * RADIO_J_PER_BYTE;
            }
            Binding::ServerlessDataPlane => {
                latency += if platform.remote_memory() {
                    0.0002
                } else {
                    0.008
                };
            }
            Binding::OnDevice => latency += 0.0001,
        }
    }
    CandidateProfile {
        latency,
        edge_energy,
        cloud_core_secs,
    }
}

/// A ranked exploration result.
#[derive(Debug, Clone, PartialEq)]
pub struct Explored {
    /// The placement.
    pub placement: Placement,
    /// Its estimated profile.
    pub profile: CandidateProfile,
}

/// Runs the full exploration and returns candidates sorted best-first
/// under `objective`.
///
/// Candidate profiling fans out across the [`crate::runner::Runner`]
/// thread pool (the candidate set grows as 2^free-tasks); profiles come
/// back in enumeration order and ties sort stably, so the ranking is
/// identical at any thread count.
pub fn explore(
    graph: &TaskGraph,
    costs: &HashMap<String, TaskCost>,
    platform: Platform,
    objective: Objective,
) -> Vec<Explored> {
    let placements = enumerate_placements(graph);
    let profiles = crate::runner::Runner::from_env().map(&placements, |_, placement| {
        estimate(graph, placement, costs, platform)
    });
    let mut out: Vec<Explored> = placements
        .into_iter()
        .zip(profiles)
        .map(|(placement, profile)| Explored { placement, profile })
        .collect();
    let key = |p: &CandidateProfile| match objective {
        Objective::Performance => p.latency,
        Objective::Power => p.edge_energy,
        Objective::Cost => p.cloud_core_secs,
        Objective::PerformanceUnderPowerBudget { max_edge_energy } => {
            if p.edge_energy <= max_edge_energy {
                p.latency
            } else {
                f64::INFINITY
            }
        }
    };
    out.sort_by(|a, b| key(&a.profile).total_cmp(&key(&b.profile)));
    out
}

/// Placement decision for a single benchmark app under a platform — the
/// degenerate (one-tier) case of the exploration used by the engine.
pub fn single_app_placement(app: App, platform: Platform) -> PlacementSite {
    if platform.is_distributed() {
        return PlacementSite::Edge;
    }
    if !platform.is_hybrid() {
        return PlacementSite::Cloud;
    }
    if app.edge_pinned() {
        return PlacementSite::Edge;
    }
    // Hybrid: compare the unloaded analytic estimates exactly as the
    // synthesis pass would for a one-task graph.
    let cost = TaskCost::from_app(app);
    let edge_latency = cost.cloud_exec * cost.edge_slowdown;
    let wire = cost.boundary_bytes as f64 * platform.upload_fraction() / (867e6 / 8.0);
    let cloud_latency = cost.cloud_exec + 0.030 + wire + 120e-6;
    if edge_latency <= cloud_latency {
        PlacementSite::Edge
    } else {
        PlacementSite::Cloud
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{Directive, TaskDef, TaskGraphBuilder};

    fn two_tier() -> TaskGraph {
        TaskGraphBuilder::new()
            .task(TaskDef::new("analyze"))
            .task(TaskDef::new("aggregate").parent("analyze"))
            .build()
            .unwrap()
    }

    #[test]
    fn two_tier_enumerates_four_models() {
        let g = two_tier();
        let placements = enumerate_placements(&g);
        assert_eq!(placements.len(), 4, "the paper's A→B example");
    }

    #[test]
    fn sensor_tasks_never_go_to_cloud() {
        let g = TaskGraphBuilder::new()
            .task(TaskDef::new("collectImage"))
            .task(TaskDef::new("recognize").parent("collectImage"))
            .build()
            .unwrap();
        let placements = enumerate_placements(&g);
        assert_eq!(placements.len(), 2);
        assert!(placements
            .iter()
            .all(|p| p["collectImage"] == PlacementSite::Edge));
    }

    #[test]
    fn place_directives_are_honored() {
        let g = TaskGraphBuilder::new()
            .task(TaskDef::new("a"))
            .task(TaskDef::new("b").parent("a"))
            .directive(Directive::Place {
                task: "a".into(),
                site: PlacementSite::Cloud,
            })
            .build()
            .unwrap();
        let placements = enumerate_placements(&g);
        assert_eq!(placements.len(), 2);
        assert!(placements.iter().all(|p| p["a"] == PlacementSite::Cloud));
    }

    #[test]
    fn bindings_match_sites() {
        let g = two_tier();
        let mut p = Placement::new();
        p.insert("analyze".into(), PlacementSite::Edge);
        p.insert("aggregate".into(), PlacementSite::Cloud);
        let b = bindings(&g, &p);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].2, Binding::CrossTierRpc);

        p.insert("analyze".into(), PlacementSite::Cloud);
        assert_eq!(bindings(&g, &p)[0].2, Binding::ServerlessDataPlane);

        p.insert("analyze".into(), PlacementSite::Edge);
        p.insert("aggregate".into(), PlacementSite::Edge);
        assert_eq!(bindings(&g, &p)[0].2, Binding::OnDevice);
    }

    #[test]
    fn explore_performance_prefers_cloud_for_heavy_compute() {
        let g = two_tier();
        let mut costs = HashMap::new();
        costs.insert(
            "analyze".to_string(),
            TaskCost {
                cloud_exec: 0.5,
                edge_slowdown: 12.0,
                boundary_bytes: 500_000,
            },
        );
        costs.insert(
            "aggregate".to_string(),
            TaskCost {
                cloud_exec: 0.1,
                edge_slowdown: 10.0,
                boundary_bytes: 10_000,
            },
        );
        let ranked = explore(&g, &costs, Platform::HiveMind, Objective::Performance);
        let best = &ranked[0].placement;
        assert_eq!(best["analyze"], PlacementSite::Cloud);
        assert_eq!(best["aggregate"], PlacementSite::Cloud);
    }

    #[test]
    fn explore_power_prefers_cloud_offload() {
        // Minimizing edge energy pushes compute off the device entirely.
        let g = two_tier();
        let costs = HashMap::new();
        let ranked = explore(&g, &costs, Platform::HiveMind, Objective::Power);
        let best = &ranked[0].placement;
        assert!(best.values().all(|&s| s == PlacementSite::Cloud));
    }

    #[test]
    fn power_budget_constrains_performance_choice() {
        let g = two_tier();
        let mut costs = HashMap::new();
        for t in ["analyze", "aggregate"] {
            costs.insert(
                t.to_string(),
                TaskCost {
                    cloud_exec: 0.02,
                    edge_slowdown: 2.0,
                    boundary_bytes: 5_000_000,
                },
            );
        }
        // Pure performance keeps light tasks at the edge (no 5 MB upload).
        let perf = explore(&g, &costs, Platform::HiveMind, Objective::Performance);
        assert!(perf[0]
            .placement
            .values()
            .any(|&s| s == PlacementSite::Edge));
        // A zero energy budget forces everything to the cloud.
        let budget = explore(
            &g,
            &costs,
            Platform::HiveMind,
            Objective::PerformanceUnderPowerBudget {
                max_edge_energy: 0.0,
            },
        );
        assert!(budget[0]
            .placement
            .values()
            .all(|&s| s == PlacementSite::Cloud));
    }

    #[test]
    fn single_app_placements_match_paper_exceptions() {
        use App::*;
        for (app, expected) in [
            (WeatherAnalytics, PlacementSite::Edge),
            (DroneDetection, PlacementSite::Edge),
            (ObstacleAvoidance, PlacementSite::Edge),
            (FaceRecognition, PlacementSite::Cloud),
            (Slam, PlacementSite::Cloud),
            (TextRecognition, PlacementSite::Cloud),
        ] {
            assert_eq!(
                single_app_placement(app, Platform::HiveMind),
                expected,
                "{app}"
            );
        }
        assert_eq!(
            single_app_placement(FaceRecognition, Platform::DistributedEdge),
            PlacementSite::Edge
        );
        assert_eq!(
            single_app_placement(ObstacleAvoidance, Platform::CentralizedFaaS),
            PlacementSite::Cloud,
            "the single-app benchmark measures S4 in the cloud too"
        );
    }
}

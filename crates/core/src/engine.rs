//! The execution engine: swarm + network + cloud as one simulation.
//!
//! The engine owns the network [`Fabric`], the serverless [`Cluster`] (or
//! the IaaS [`FixedPool`]), one on-device [`FifoServer`]
//! per edge device, and the device battery models, and routes events
//! between them in global time order. Experiment harnesses inject *tasks*
//! (one sensor frame batch to process) and receive [`TaskRecord`]s with
//! the same latency decomposition the paper reports: network, management,
//! instantiation, data I/O, execution.
//!
//! ## Task pipelines
//!
//! Cloud-placed task (centralized platforms; heavy apps under HiveMind):
//!
//! ```text
//! capture → [hybrid: on-device filter tier] → device RPC send
//!         → wireless/ToR transfer → server RPC recv → FaaS control path
//!         → container (cold/warm) → data-in → exec → data-out
//!         → server RPC send → downlink transfer → device RPC recv → done
//! ```
//!
//! Edge-placed task (distributed platforms; light apps under HiveMind):
//!
//! ```text
//! capture → on-device FIFO queue → exec (slowdown × cloud time)
//!         → result upload → done at cloud
//! ```
//!
//! ## Sharded execution
//!
//! Device-local work (capture, the hybrid filter tier, on-device FIFO
//! execution, battery accounting, and the RPC-send cost draws) is
//! partitioned into [`ShardMap`] blocks — contiguous device ranges, one
//! spatial swarm region each — and advanced one *epoch* at a time under
//! conservative lookahead derived from the slowest cross-shard link
//! (the wireless hop: no device-side event can influence another
//! device's hardware, or the shared cloud, in less virtual time than
//! one wireless propagation). Each epoch runs two phases:
//!
//! 1. **Shard phase** (parallel): every shard drains its own action
//!    calendar and FIFO wake index up to the epoch boundary, drawing
//!    only from per-device RNG lanes (`forge.indexed_stream("device", d)`)
//!    and emitting boundary *effects* stamped `(time, device, seq)`.
//! 2. **Hub phase** (serial): the per-shard effect batches are folded,
//!    together with the previous epoch's not-yet-due leftovers, through
//!    one order-stable k-way merge ([`merge_keyed_into`]) per barrier —
//!    batched exchange, not per-event handoff — and applied interleaved,
//!    in global time order, with hub actions, network deliveries, and
//!    cloud completions. All hub randomness stays on the global
//!    `"engine"` stream.
//!
//! Because every shard-phase draw is keyed by device, every effect by a
//! shard-count-invariant `(time, device, seq)` key, and the epoch grid
//! by configuration alone, `HIVEMIND_SHARDS` (or
//! [`EngineConfig::shards`]) changes wall-clock time but never a single
//! output byte. The one hub→device feedback edge — overload spillover
//! resubmission — is deferred to the epoch boundary, which is itself
//! shard-count-invariant.

pub mod fifo;

use std::collections::HashMap;

use hivemind_apps::suite::App;
use hivemind_faas::cluster::Cluster;
use hivemind_faas::iaas::FixedPool;
use hivemind_faas::types::{AppId, AppProfile, Invocation};
use hivemind_net::fabric::{Fabric, Transfer};
use hivemind_net::rpc::RpcProfile;
use hivemind_net::topology::{Node, Topology, TopologyParams};
use hivemind_sim::calendar::CalendarQueue;
use hivemind_sim::disconnect::{self, DisconnectPolicy};
use hivemind_sim::faults::{self, FaultPlan};
use hivemind_sim::overload::OverloadPolicy;
use hivemind_sim::rng::RngForge;
use hivemind_sim::shard::{merge_keyed_into, shards_from_env, EffectKey, ShardMap};
use hivemind_sim::time::{SimDuration, SimTime};
use hivemind_sim::trace::{ArgValue, Trace, TraceHandle};
use rand::rngs::SmallRng;

use crate::dsl::PlacementSite;
use crate::platform::Platform;
use crate::synthesis;
use fifo::FifoServer;
use hivemind_accel::fpga::{FpgaConfig, FpgaFabric, SoftRegisters};

use hivemind_swarm::device::DeviceProfile;
use hivemind_swarm::disconnect::{ReplayRing, ReplaySession};
use hivemind_swarm::{Battery, BatteryBlock};

/// Epoch length used when nothing couples the hub back into the shard
/// phase inside an epoch (the dataflow is feed-forward): batching many
/// lookahead windows per barrier amortizes per-epoch synchronization
/// without affecting a single output byte. When spillover re-routing is
/// armed, or a caller is waiting on the next record, epochs shrink to
/// the true lookahead so feedback lands (and records surface) within
/// one wireless hop of their causal time.
const EPOCH_FLOOR: SimDuration = SimDuration::from_millis(250);

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Platform configuration.
    pub platform: Platform,
    /// Number of edge devices.
    pub devices: u32,
    /// Number of backend servers.
    pub servers: u32,
    /// Cores per server.
    pub cores_per_server: u32,
    /// Root random seed.
    pub seed: u64,
    /// Injected function fault probability.
    pub fault_rate: f64,
    /// Enable intra-task parallelism (fan each task into k functions).
    pub intra_task: bool,
    /// Device class profile.
    pub device_profile: DeviceProfile,
    /// Scales every app's sensor payload (resolution sweeps); 1.0 =
    /// paper default.
    pub input_scale: f64,
    /// Overrides the IaaS fixed-pool size (Fig. 5b provisions for average
    /// vs worst-case load); `None` = the platform's equal-cost default.
    pub iaas_workers: Option<u32>,
    /// Collect a structured event trace of the run (task lifecycle spans,
    /// scheduler decisions, container starts, queue-depth timelines).
    /// Off by default: tracing draws no randomness and perturbs nothing,
    /// but buffering events costs memory on long runs.
    pub trace: bool,
    /// The fault-injection plan. The inert default perturbs nothing; an
    /// active plan arms the network fault pass, schedules server crashes,
    /// overrides the function failure process/retry policy, and stalls
    /// cluster admission across a controller failover window.
    pub faults: FaultPlan,
    /// The overload-control policy. The inert default perturbs nothing;
    /// an active policy bounds the cluster admission queue, arms per-app
    /// circuit breakers, spills shed work to degraded on-device
    /// execution, and bounds link-ingress queues — all without RNG.
    pub overload: OverloadPolicy,
    /// The disconnected-operation policy. The inert default perturbs
    /// nothing; an active policy — together with scheduled partition
    /// windows in [`EngineConfig::faults`] — lets a device whose cloud
    /// lease expired flip to degraded autonomous on-device execution
    /// (the brownout spillover path) and buffer update summaries in a
    /// bounded ring for exactly-once replay at reconnect.
    pub disconnect: DisconnectPolicy,
    /// Spatial shards the device-local event loop is split into. Each
    /// shard owns a contiguous device block (its FIFO queues, batteries,
    /// and per-device RNG lanes) and advances on its own core under
    /// conservative lookahead. `0` reads `HIVEMIND_SHARDS` (default 1);
    /// the count is clamped to the device count. Purely a parallelism
    /// knob: every output byte is identical for every value.
    pub shards: u32,
}

impl EngineConfig {
    /// Testbed defaults for `platform`: 16 drones, 12×40-core servers.
    pub fn testbed(platform: Platform) -> EngineConfig {
        EngineConfig {
            platform,
            devices: 16,
            servers: 12,
            cores_per_server: 40,
            seed: 1,
            fault_rate: 0.0,
            intra_task: false,
            device_profile: DeviceProfile::drone(),
            input_scale: 1.0,
            iaas_workers: None,
            trace: false,
            faults: FaultPlan::default(),
            overload: OverloadPolicy::default(),
            disconnect: DisconnectPolicy::default(),
            shards: 0,
        }
    }
}

/// Engine-level fault bookkeeping that no lower layer can see on its own:
/// whole tasks lost to give-up retry policies, device failures noted by
/// the mission layer, and controller failovers, plus the detection/recovery
/// latencies behind the paper's 3 s heartbeat window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultLedger {
    /// Tasks whose cloud invocation exhausted a give-up retry policy.
    pub tasks_lost: u64,
    /// Device failures applied (scripted or MTBF-drawn).
    pub device_failures: u32,
    /// Primary-controller failovers.
    pub controller_failovers: u32,
    /// Sum of fault-detection latencies, seconds.
    pub detection_secs_sum: f64,
    /// Sum of fault-recovery times (failure to restored service), seconds.
    pub recovery_secs_sum: f64,
    /// Number of detection/recovery samples in the sums.
    pub recovery_events: u32,
}

/// Engine-level overload bookkeeping: whole-task consequences of the
/// cluster's shed decisions, which only the engine can attribute (it owns
/// the task ↔ sub-invocation mapping and the spillover re-routing).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ShedLedger {
    /// Tasks re-routed to degraded on-device execution after a shed.
    pub tasks_spilled: u64,
    /// Tasks abandoned because a sub-invocation was shed and no spillover
    /// was configured.
    pub tasks_shed: u64,
    /// Accuracy points lost across all spilled tasks (sum, not mean).
    pub accuracy_penalty_sum_pct: f64,
}

/// Engine-level disconnected-operation bookkeeping: what the disconnect
/// plane did while partitioned (lease expirations, degraded autonomous
/// executions, buffered summaries) and what the reconnect sessions
/// reconciled at heal (exactly-once replays, suppressed duplicates,
/// explicit expiries, staleness).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReconnectLedger {
    /// Reconnect reconciliation sessions run (one per healed partition).
    pub partitions: u32,
    /// Device lease expirations (one per device per merged partition
    /// window it went autonomous under).
    pub lease_expirations: u64,
    /// Cloud-bound tasks re-routed to degraded autonomous on-device
    /// execution because the device's lease had expired.
    pub tasks_degraded: u64,
    /// Update summaries buffered while disconnected.
    pub updates_buffered: u64,
    /// Buffered updates replayed exactly once at reconnect.
    pub updates_replayed: u64,
    /// Buffered updates evicted under the ring bound (explicit expiry,
    /// never silent growth).
    pub updates_expired: u64,
    /// Replay offers the session watermark rejected as duplicates.
    pub duplicates_dropped: u64,
    /// Stale heartbeats re-armed by reconnect reconciliation instead of
    /// being read as device deaths.
    pub devices_rearmed: u64,
    /// Sum over replayed updates of (heal − buffered-at), seconds.
    pub staleness_secs_sum: f64,
    /// Accuracy points lost across all degraded tasks (sum, not mean).
    pub accuracy_penalty_sum_pct: f64,
}

/// Completed-task record with the paper's latency decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRecord {
    /// Engine-assigned task id.
    pub task: u32,
    /// The benchmark app.
    pub app: App,
    /// Device that produced the sensor data.
    pub device: u32,
    /// Caller label (mission phase index, etc.).
    pub label: u32,
    /// Sensor capture time.
    pub capture: SimTime,
    /// Result availability time.
    pub done: SimTime,
    /// Where it executed.
    pub placement: PlacementSite,
    /// Wire + RPC-processing time (both directions).
    pub network: SimDuration,
    /// Management: control path, scheduling, queueing (cloud or device).
    pub management: SimDuration,
    /// Container instantiation.
    pub instantiation: SimDuration,
    /// Function data-plane I/O.
    pub data_io: SimDuration,
    /// Useful execution.
    pub exec: SimDuration,
    /// Whether the executing container was cold-started.
    pub cold_start: bool,
}

impl TaskRecord {
    /// End-to-end task latency.
    pub fn latency(&self) -> SimDuration {
        self.done - self.capture
    }
}

/// Hub-side actions (everything device-local lives in the shard phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Action {
    SubmitCloud {
        task: u32,
    },
    Response {
        task: u32,
        from_server: u32,
    },
    Finish {
        task: u32,
    },
    /// A scheduled partition healed: run the reconnect reconciliation
    /// session (replay every device's buffered updates exactly once).
    Reconnect,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TagPurpose {
    Upload { task: u32 },
    Response { task: u32 },
    ResultUpload { task: u32 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeJobKind {
    Exec,
    Filter,
    /// Degraded-model re-execution of a task whose cloud work was shed
    /// (brownout spillover).
    Spillover,
}

/// On-device job ids carry their task and kind arithmetically (kind in
/// the two low bits), so completions decode without a side table.
fn edge_job(task: u32, kind: EdgeJobKind) -> u64 {
    (task as u64) * 4
        + match kind {
            EdgeJobKind::Exec => 0,
            EdgeJobKind::Filter => 1,
            EdgeJobKind::Spillover => 2,
        }
}

fn decode_edge_job(job: u64) -> (u32, EdgeJobKind) {
    let kind = match job % 4 {
        0 => EdgeJobKind::Exec,
        2 => EdgeJobKind::Spillover,
        _ => EdgeJobKind::Filter,
    };
    ((job / 4) as u32, kind)
}

#[derive(Debug, Clone)]
struct TaskState {
    app: App,
    device: u32,
    label: u32,
    capture: SimTime,
    placement: PlacementSite,
    network: SimDuration,
    management: SimDuration,
    instantiation: SimDuration,
    data_io: SimDuration,
    exec: SimDuration,
    cold: bool,
    /// Outstanding cloud sub-invocations (intra-task parallelism).
    remaining: u32,
    /// Latest sub-completion time (the task finishes at the max).
    sub_done: SimTime,
    upload_bytes: u64,
    done: bool,
    /// A sub-invocation exhausted its retry budget; the task is lost and
    /// produces no [`TaskRecord`].
    failed: bool,
    /// A sub-invocation was shed by the overload plane; the task either
    /// spills over to the device or is abandoned.
    shed: bool,
}

/// The payload of a capture scheduled on a shard's action calendar. The
/// `(at, seq)` key lives in the queue itself; `seq` is unique per shard,
/// so the key order is total and the payload is never compared.
#[derive(Debug, Clone, Copy)]
struct Capture {
    task: u32,
    device: u32,
    app: App,
    placement: PlacementSite,
}

/// Device-local context a FIFO job completion needs that the job id
/// cannot carry.
#[derive(Debug, Clone, Copy)]
enum EdgePending {
    Exec { bytes: u64, service: SimDuration },
    Filter { upload_bytes: u64 },
}

/// A boundary event a shard hands to the hub, applied at its
/// [`EffectKey`] instant in globally merged key order.
#[derive(Debug, Clone, Copy)]
enum Effect {
    /// Put `bytes` on the uplink toward a (hub-chosen) server, tagged as
    /// a task upload; carries the latency-breakdown contributions of the
    /// device-side leg that produced it.
    Uplink {
        task: u32,
        bytes: u64,
        network: SimDuration,
        management: SimDuration,
    },
    /// Like [`Effect::Uplink`] but for an edge-executed task's result
    /// (no cloud execution follows); `exec` is the on-device service
    /// time drawn at capture.
    ResultUplink {
        task: u32,
        bytes: u64,
        network: SimDuration,
        management: SimDuration,
        exec: SimDuration,
    },
    /// A spillover (degraded on-device) job finished; the result is
    /// already on the device, so the task completes with no uplink.
    FinishLocal { task: u32, queued: SimDuration },
    /// Queue-depth trace counter from the shard phase (the tracer is
    /// hub-owned, so shard-side emissions ride the effect stream and
    /// land in merge-key order).
    QueueDepth { depth: u64 },
}

/// One spatial shard: a contiguous device block with its own action
/// calendar, FIFO wake index, and outbound effect batch.
///
/// Per-device hot state is struct-of-arrays: parallel vectors indexed by
/// the block offset `device - first_dev`, aligned with [`ShardMap`]'s
/// contiguous ranges, so the inner loop streams dense cache lines
/// instead of pointer-chasing one struct per device. The FIFO queues
/// (cold, pointer-heavy) live in their own array away from the battery /
/// RNG / sequence state the per-event path actually touches.
#[derive(Debug)]
struct Shard {
    first_dev: u32,
    /// Per-device FIFO compute queues, block-offset order.
    fifos: Vec<FifoServer>,
    /// Per-device batteries, one dense block.
    batteries: BatteryBlock,
    /// Per-device RNG lanes (`forge.indexed_stream("device", dev)`).
    rngs: Vec<SmallRng>,
    /// Per-device monotone effect counters — the `seq` leg of the
    /// shard-count-invariant `(time, device, seq)` merge key.
    eseqs: Vec<u64>,
    /// Scheduled captures, keyed `(at, seq)`; `aseq` is the per-shard
    /// tie-break counter.
    actions: CalendarQueue<(SimTime, u64), Capture>,
    aseq: u64,
    /// Conservative wake index over this shard's FIFO queues (entries
    /// may be early, never late; equal keys are interchangeable).
    wake: CalendarQueue<(SimTime, u32), ()>,
    /// Task → device-local context for in-flight FIFO jobs. Fixed-seed
    /// hashing: insert/remove churn must rehash at workload-determined
    /// instants or the steady-state allocation pin would be flaky.
    pending_jobs: hivemind_sim::hash::DetHashMap<u32, EdgePending>,
    /// RNG sampling calls made by this shard (profiling breakdown).
    rng_draws: u64,
    done_scratch: Vec<(SimTime, u64, SimDuration)>,
    /// Effects emitted this epoch, sorted by key at the barrier.
    out: Vec<(EffectKey, Effect)>,
    /// Latest device-local event time processed (feeds the engine clock:
    /// `now` tracks processed events, not epoch boundaries).
    cursor: SimTime,
    events: u64,
}

impl Shard {
    /// The earliest device-local instant at which anything happens.
    fn next_event(&self) -> Option<SimTime> {
        let a = self.actions.peek().map(|(t, _)| t);
        let w = self.wake.peek().map(|(t, _)| t);
        match (a, w) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (x, y) => x.or(y),
        }
    }
}

/// Per-phase cost breakdown of a run, for profiling harnesses
/// (`perf_smoke`, `HIVEMIND_PROFILE=1`).
///
/// The operation counters (`queue_ops`, `rng_draws`, `merge_elems`,
/// `exchange_effects`) are exact and deterministic — they count the same
/// way on every machine and never feed back into scheduling. The
/// `*_ns` wall-clock timers are only accumulated while profiling is
/// enabled ([`Engine::enable_profiling`] or `HIVEMIND_PROFILE=1`) and
/// vary run to run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Wall nanoseconds inside the parallel shard phase.
    pub shard_ns: u64,
    /// Wall nanoseconds inside the barrier merge/exchange.
    pub merge_ns: u64,
    /// Wall nanoseconds inside the serial hub phase.
    pub hub_ns: u64,
    /// Calendar-queue pushes + pops across the hub action queue and
    /// every shard's action and wake queues.
    pub queue_ops: u64,
    /// Service/cost sampling calls drawn from RNG lanes (hub and shard).
    pub rng_draws: u64,
    /// Elements folded through the k-way exchange merge at barriers
    /// (zero when every barrier hits the buffer-swap fast path).
    pub merge_elems: u64,
    /// Effects handed across the shard → hub barrier.
    pub exchange_effects: u64,
    /// Barrier epochs that exchanged at least one effect.
    pub exchange_epochs: u64,
}

/// Read-only configuration snapshot the parallel shard phase runs
/// against (everything it needs from [`EngineConfig`], plus the edge
/// RPC profile).
struct ShardCtx<'a> {
    hybrid: bool,
    upload_fraction: f64,
    input_scale: f64,
    uplink_budget: f64,
    device_factor: f64,
    trace: bool,
    edge_rpc: &'a RpcProfile,
}

/// The simulation engine.
#[derive(Debug)]
pub struct Engine {
    cfg: EngineConfig,
    now: SimTime,
    fabric: Fabric,
    cluster: Option<Cluster>,
    pool: Option<FixedPool>,
    /// Spatial shards (contiguous device blocks with their hardware).
    shards: Vec<Shard>,
    map: ShardMap,
    /// Conservative cross-shard lookahead (the wireless hop).
    lookahead: SimDuration,
    /// Merged shard effects not yet applied, as one sorted run consumed
    /// through `pending_cursor` (effects may be future-dated past their
    /// epoch, e.g. `finish + send_cost`). Rebuilt once per barrier by
    /// folding the leftovers with the fresh per-shard batches.
    pending: Vec<(EffectKey, Effect)>,
    pending_cursor: usize,
    /// The merge target swapped with `pending` at each barrier; both
    /// buffers hold their high-water capacity, so the exchange is
    /// allocation-free in steady state.
    pending_scratch: Vec<(EffectKey, Effect)>,
    actions: CalendarQueue<(SimTime, u64), Action>,
    seq: u64,
    tasks: Vec<TaskState>,
    /// Purpose of each in-flight transfer, indexed by its dense
    /// [`TransferId`](hivemind_net::fabric::TransferId) — a direct-mapped
    /// table instead of a hash map on the per-delivery path.
    tags: Vec<Option<TagPurpose>>,
    records: Vec<TaskRecord>,
    /// Reusable per-epoch buffers (the hot loop stays allocation-free).
    delivery_scratch: Vec<hivemind_net::fabric::Delivery>,
    completion_scratch: Vec<hivemind_faas::types::Completion>,
    /// Spillover jobs created by the hub phase, resubmitted to their
    /// device's FIFO at the epoch boundary (the one hub→device feedback
    /// edge; the boundary is shard-count-invariant, so the deferral is
    /// deterministic).
    spill_inbox: Vec<(SimTime, u32, u64, SimDuration)>,
    rng: SmallRng,
    next_server: u32,
    /// Per-task uplink byte budget for hybrid platforms (rate adaptation).
    uplink_budget_bytes: f64,
    placements: HashMap<App, PlacementSite>,
    edge_rpc: RpcProfile,
    cloud_rpc: RpcProfile,
    /// The servers' FPGA boards, present on accelerated platforms. The
    /// model charges their reconfiguration costs at registration time and
    /// exposes the device for area/reconfiguration accounting.
    fpga: Option<FpgaFabric>,
    tracer: TraceHandle,
    ledger: FaultLedger,
    shed_ledger: ShedLedger,
    /// Armed when the disconnect policy is active *and* the fault plan
    /// schedules wireless partitions (there is nothing to survive
    /// otherwise). Never true under the inert defaults, so the plane
    /// cannot perturb a byte of any existing run.
    disconnect_armed: bool,
    /// Per-device bounded rings of update summaries awaiting replay
    /// (empty unless the disconnect plane is armed).
    rings: Vec<ReplayRing<u32>>,
    /// Per-device exactly-once replay sessions: lifetime watermarks, so
    /// dedup is session-scoped across repeated partitions.
    sessions: Vec<ReplaySession>,
    /// Heal instant (seconds) of the merged partition window each device
    /// is currently autonomous under (`None` = lease held).
    autonomy_heal: Vec<Option<f64>>,
    reconnect_ledger: ReconnectLedger,
    hub_events: u64,
    /// RNG sampling calls made by the hub (profiling breakdown).
    rng_draws: u64,
    /// Whether the per-phase wall-clock timers run (`HIVEMIND_PROFILE=1`
    /// or [`Engine::enable_profiling`]). Counters are always on.
    profile: bool,
    /// Accumulated phase timers and exchange counters.
    breakdown: PhaseBreakdown,
    /// Cores available to the shard phase (cached at construction).
    phase_budget: usize,
}

impl Engine {
    /// Builds an engine for `cfg`: constructs the topology, registers the
    /// benchmark suite on the cloud backend, and resolves per-app
    /// placements through the synthesis pass.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized configurations.
    pub fn new(cfg: EngineConfig) -> Engine {
        assert!(cfg.devices > 0 && cfg.servers > 0);
        assert!(cfg.input_scale > 0.0);
        if let Err(e) = cfg.faults.validate(cfg.devices, cfg.servers) {
            panic!("invalid fault plan: {e}");
        }
        if let Err(e) = cfg.overload.validate() {
            panic!("invalid overload policy: {e}");
        }
        if let Err(e) = cfg.disconnect.validate() {
            panic!("invalid disconnect policy: {e}");
        }
        let forge = RngForge::new(cfg.seed);
        let tracer = if cfg.trace {
            TraceHandle::enabled()
        } else {
            TraceHandle::disabled()
        };
        let mut topo_params = TopologyParams {
            devices: cfg.devices,
            servers: cfg.servers,
            ..TopologyParams::default()
        };
        // Bandwidth degradation is applied once at topology build time so
        // every wireless transfer slows uniformly; the hybrid uplink
        // budget below stays at the nominal rate (rate adaptation is
        // provisioned at design time — degradation is a fault the
        // application stack does not know about).
        if cfg.faults.net.bandwidth_factor != 1.0 {
            topo_params.wireless_bps *= cfg.faults.net.bandwidth_factor;
        }
        let topology = Topology::new(topo_params);
        let lookahead = topology.lookahead();
        let mut fabric = Fabric::new(topology);
        fabric.set_tracer(tracer.clone());
        if cfg.faults.net.per_transfer() {
            // The fault RNG lives on its own lane of the seed chain so
            // arming it never reshuffles the workload's randomness.
            fabric.set_faults(cfg.faults.net.clone(), forge.child("faults").stream("net"));
        }
        // Ingress backpressure needs no RNG lane at all: hold decisions
        // are pure functions of link occupancy at the offer instant.
        fabric.set_backpressure(cfg.overload.net);

        let mut cluster = cfg
            .platform
            .cluster_params(cfg.servers, cfg.cores_per_server, cfg.fault_rate)
            .map(|mut p| {
                if cfg.platform.is_hybrid() {
                    // Sec. 4.3: when a single scheduler would saturate,
                    // HiveMind shards the scheduler while keeping global
                    // visibility (shared-state cluster management).
                    p.scheduler_shards = cfg.devices.div_ceil(200).max(1);
                }
                // The per-user function-concurrency limit is raised for
                // large simulated swarms (providers allow this on request).
                p.max_concurrent = p.max_concurrent.max(cfg.devices * 2);
                if let Some(rate) = cfg.faults.functions.fault_rate {
                    p.fault_rate = rate;
                }
                p.retry = cfg.faults.functions.retry.clone();
                p.overload = cfg.overload.clone();
                let mut c = Cluster::new(p, forge.child("cluster"));
                c.set_tracer(tracer.clone());
                for crash in &cfg.faults.servers {
                    c.schedule_server_crash(
                        SimTime::ZERO + SimDuration::from_secs_f64(crash.at_secs),
                        crash.server,
                        SimDuration::from_secs_f64(crash.down_secs),
                    );
                }
                if let Some(at) = cfg.faults.devices.controller_failover_at_secs {
                    // The serverless control plane goes dark from the
                    // primary's death until the backup finishes taking
                    // over (3 s heartbeat detection + state re-sync).
                    let from = SimTime::ZERO + SimDuration::from_secs_f64(at);
                    let until = from
                        + faults::DETECTION_WINDOW
                        + SimDuration::from_secs_f64(cfg.faults.devices.controller_takeover_secs);
                    c.add_controller_outage(from, until);
                }
                c
            });
        let mut pool = if cfg.platform.uses_fixed_pool() {
            let mut params = cfg
                .platform
                .fixed_pool_params(cfg.servers * cfg.cores_per_server);
            if let Some(workers) = cfg.iaas_workers {
                params.workers = workers;
            }
            let mut p = FixedPool::new(params, forge.child("pool"));
            p.set_tracer(tracer.clone());
            Some(p)
        } else {
            None
        };

        // Register the suite (and intra-task split variants) on whichever
        // backend exists.
        for app in App::ALL {
            if let Some(c) = cluster.as_mut() {
                c.register_app(app.app_id(), scaled_profile(app, &cfg));
                if cfg.intra_task {
                    c.register_app(split_id(app), split_profile(app, &cfg));
                }
            }
            if let Some(p) = pool.as_mut() {
                p.register_app(app.app_id(), scaled_profile(app, &cfg));
            }
        }

        let placements = App::ALL
            .iter()
            .map(|&app| (app, synthesis::single_app_placement(app, cfg.platform)))
            .collect();

        // Accelerated platforms carry the FPGA fabric; buffer sizes are
        // "configured on a per-application basis, online, through partial
        // reconfiguration" (Sec. 4.5) — one soft reconfiguration per app.
        let fpga = if cfg.platform.network_accelerated() {
            let mut board = FpgaFabric::new(FpgaConfig::default());
            for app in App::ALL {
                let profile = app.cloud_profile();
                let _ = board.configure(SoftRegisters {
                    // Deeper queues for chatty small-payload apps, fewer
                    // larger buffers for bulk-frame apps.
                    queue_depth: if profile.input_bytes > 1_000_000 {
                        64
                    } else {
                        512
                    },
                    ..SoftRegisters::default()
                });
            }
            Some(board)
        } else {
            None
        };

        // The controller-failover window is known up front (the trace is
        // sorted at finish time, so future-timestamped instants are fine).
        let mut ledger = FaultLedger::default();
        if let Some(at) = cfg.faults.devices.controller_failover_at_secs {
            let detection = faults::DETECTION_WINDOW.as_secs_f64();
            let takeover = cfg.faults.devices.controller_takeover_secs;
            ledger.controller_failovers = 1;
            ledger.detection_secs_sum += detection;
            ledger.recovery_secs_sum += detection + takeover;
            ledger.recovery_events += 1;
            if tracer.is_enabled() {
                for (name, offset) in [
                    (faults::EV_INJECTED, 0.0),
                    (faults::EV_DETECTED, detection),
                    (faults::EV_RECOVERED, detection + takeover),
                ] {
                    tracer.instant(
                        faults::TRACE_CAT,
                        name,
                        0,
                        SimTime::ZERO + SimDuration::from_secs_f64(at + offset),
                        vec![("kind", ArgValue::Str("controller_failover".into()))],
                    );
                }
            }
        }

        let shard_count = if cfg.shards == 0 {
            shards_from_env()
        } else {
            cfg.shards
        };
        let map = ShardMap::new(cfg.devices, shard_count);
        let shards = (0..map.shards())
            .map(|s| {
                let range = map.range(s);
                let n = range.len();
                Shard {
                    first_dev: range.start,
                    fifos: (0..n)
                        .map(|_| FifoServer::new(cfg.device_profile.cores))
                        .collect(),
                    batteries: BatteryBlock::new(cfg.device_profile.battery, n),
                    // One RNG lane per device, keyed by the
                    // shard-count-invariant device id — re-sharding
                    // never reshuffles a single draw.
                    rngs: range
                        .map(|dev| forge.indexed_stream("device", dev as u64))
                        .collect(),
                    eseqs: vec![0; n],
                    actions: CalendarQueue::new(),
                    aseq: 0,
                    wake: CalendarQueue::new(),
                    pending_jobs: hivemind_sim::hash::DetHashMap::default(),
                    rng_draws: 0,
                    done_scratch: Vec::new(),
                    out: Vec::new(),
                    cursor: SimTime::ZERO,
                    events: 0,
                }
            })
            .collect();

        let topo_params = hivemind_net::topology::TopologyParams {
            devices: cfg.devices,
            servers: cfg.servers,
            ..Default::default()
        };
        let devices_per_router = cfg.devices.div_ceil(topo_params.effective_routers()).max(1);
        let uplink_budget_bytes =
            0.7 * (topo_params.wireless_bps / 8.0) / devices_per_router as f64;
        let disconnect_armed = cfg.disconnect.is_active() && !cfg.faults.net.partitions.is_empty();
        let mut engine = Engine {
            uplink_budget_bytes,
            shards,
            map,
            lookahead,
            pending: Vec::new(),
            pending_cursor: 0,
            pending_scratch: Vec::new(),
            fabric,
            cluster,
            pool,
            now: SimTime::ZERO,
            actions: CalendarQueue::with_capacity(64),
            seq: 0,
            tasks: Vec::new(),
            tags: Vec::new(),
            records: Vec::new(),
            delivery_scratch: Vec::new(),
            completion_scratch: Vec::new(),
            spill_inbox: Vec::new(),
            rng: forge.stream("engine"),
            next_server: 0,
            placements,
            edge_rpc: RpcProfile::edge_software(),
            cloud_rpc: cfg.platform.cloud_rpc_profile(),
            fpga,
            tracer,
            ledger,
            shed_ledger: ShedLedger::default(),
            disconnect_armed,
            rings: if disconnect_armed {
                (0..cfg.devices)
                    .map(|_| ReplayRing::new(cfg.disconnect.buffer_cap))
                    .collect()
            } else {
                Vec::new()
            },
            sessions: if disconnect_armed {
                vec![ReplaySession::new(); cfg.devices as usize]
            } else {
                Vec::new()
            },
            autonomy_heal: if disconnect_armed {
                vec![None; cfg.devices as usize]
            } else {
                Vec::new()
            },
            reconnect_ledger: ReconnectLedger::default(),
            hub_events: 0,
            rng_draws: 0,
            profile: std::env::var_os("HIVEMIND_PROFILE").is_some_and(|v| v != "0"),
            breakdown: PhaseBreakdown::default(),
            phase_budget: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cfg,
        };
        if engine.disconnect_armed {
            // One reconciliation session per distinct heal instant.
            // Chained windows fold to their final heal, so a partition
            // that "heals" straight into the next window reconciles once,
            // at the true end — exactly when the fabric releases its held
            // transfers.
            let mut heals: Vec<f64> = engine
                .cfg
                .faults
                .net
                .partitions
                .iter()
                .filter_map(|p| engine.cfg.faults.net.partition_until(p.from_secs))
                .collect();
            heals.sort_by(|a, b| a.partial_cmp(b).expect("validated windows are finite"));
            heals.dedup();
            for h in heals {
                engine.push_action(
                    SimTime::ZERO + SimDuration::from_secs_f64(h),
                    Action::Reconnect,
                );
            }
        }
        engine
    }

    /// The engine's tracing handle (disabled unless
    /// [`EngineConfig::trace`] was set).
    pub fn tracer(&self) -> &TraceHandle {
        &self.tracer
    }

    /// Drains the collected trace, or `None` when tracing is disabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.tracer.finish()
    }

    /// The acceleration fabric, when this platform carries one.
    pub fn fpga(&self) -> Option<&FpgaFabric> {
        self.fpga.as_ref()
    }

    /// Whether this platform has any cloud execution backend (serverless
    /// cluster or reserved pool) to place tasks on.
    pub fn has_cloud_backend(&self) -> bool {
        self.cluster.is_some() || self.pool.is_some()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The number of spatial shards the device plane is split into.
    pub fn shard_count(&self) -> u32 {
        self.map.shards()
    }

    /// The conservative cross-shard lookahead (the wireless hop).
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// The resolved device→shard partition, for components that want to
    /// align their own spatial bookkeeping with the engine's (e.g. the
    /// swarm controller's per-shard region view).
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Total simulation events processed so far (shard-phase actions and
    /// FIFO completions plus hub-phase actions, effects, deliveries, and
    /// cloud completions). A throughput denominator for benchmarks.
    pub fn events_processed(&self) -> u64 {
        self.hub_events + self.shards.iter().map(|s| s.events).sum::<u64>()
    }

    /// Turns on the per-phase wall-clock timers (equivalent to running
    /// with `HIVEMIND_PROFILE=1`). The operation counters in
    /// [`PhaseBreakdown`] accumulate regardless.
    pub fn enable_profiling(&mut self) {
        self.profile = true;
    }

    /// The per-phase cost breakdown accumulated so far. Timers are zero
    /// unless profiling is enabled; counters are always exact.
    pub fn phase_breakdown(&self) -> PhaseBreakdown {
        let mut b = self.breakdown;
        b.queue_ops = self.actions.ops()
            + self
                .shards
                .iter()
                .map(|s| s.actions.ops() + s.wake.ops())
                .sum::<u64>();
        b.rng_draws = self.rng_draws + self.shards.iter().map(|s| s.rng_draws).sum::<u64>();
        b
    }

    /// The resolved placement for an app on this platform.
    pub fn placement_of(&self, app: App) -> PlacementSite {
        self.placements[&app]
    }

    /// Overrides the placement of one app (missions pin obstacle
    /// avoidance to the edge on every platform).
    pub fn pin_placement(&mut self, app: App, site: PlacementSite) {
        self.placements.insert(app, site);
    }

    /// Injects a task: device `device` captured a frame batch for `app`
    /// at time `at` (which must not precede the current engine time).
    /// Returns the task id.
    pub fn submit_task(&mut self, at: SimTime, device: u32, app: App, label: u32) -> u32 {
        assert!(at >= self.now, "cannot submit into the past");
        assert!(device < self.cfg.devices, "device out of range");
        let placement = self.placements[&app];
        let id = self.tasks.len() as u32;
        self.tasks.push(TaskState {
            app,
            device,
            label,
            capture: at,
            placement,
            network: SimDuration::ZERO,
            management: SimDuration::ZERO,
            instantiation: SimDuration::ZERO,
            data_io: SimDuration::ZERO,
            exec: SimDuration::ZERO,
            cold: false,
            remaining: 0,
            sub_done: at,
            upload_bytes: 0,
            done: false,
            failed: false,
            shed: false,
        });
        if self.tracer.is_enabled() {
            self.tracer.instant(
                "task",
                "submit",
                device,
                at,
                vec![
                    ("task", ArgValue::U64(id as u64)),
                    ("app", ArgValue::Str(format!("{app:?}"))),
                    ("device", ArgValue::U64(device as u64)),
                ],
            );
        }
        let sh = &mut self.shards[self.map.shard_of(device) as usize];
        let seq = sh.aseq;
        sh.aseq += 1;
        sh.actions.push(
            (at, seq),
            Capture {
                task: id,
                device,
                app,
                placement,
            },
        );
        id
    }

    fn push_action(&mut self, at: SimTime, action: Action) {
        let seq = self.seq;
        self.seq += 1;
        self.actions.push((at, seq), action);
    }

    /// Records the purpose of transfer `id` (ids are dense, so the table
    /// grows at most once per new transfer).
    fn set_tag(&mut self, id: u64, purpose: TagPurpose) {
        let i = id as usize;
        if self.tags.len() <= i {
            // Grow to a power of two so the table reallocates O(log n)
            // times over a run, not once per new transfer id.
            self.tags.resize((i + 1).next_power_of_two(), None);
        }
        self.tags[i] = Some(purpose);
    }

    /// Resolves a device id to its `(shard index, block offset)` pair.
    #[inline]
    fn locate(&self, device: u32) -> (usize, usize) {
        let s = self.map.shard_of(device) as usize;
        (s, (device - self.shards[s].first_dev) as usize)
    }

    /// The earliest instant at which anything will happen.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        let mut best: Option<SimTime> = self.actions.peek().map(|(t, _)| t);
        let mut merge = |t: Option<SimTime>| {
            best = match (best, t) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        };
        merge(self.pending.get(self.pending_cursor).map(|&(k, _)| k.at));
        merge(self.fabric.next_wakeup());
        merge(self.cluster.as_ref().and_then(|c| c.next_wakeup()));
        merge(self.pool.as_ref().and_then(|p| p.next_wakeup()));
        for sh in &self.shards {
            merge(sh.next_event());
        }
        best
    }

    /// Runs until quiescent or `deadline`, returning completed records
    /// accumulated since the last call.
    pub fn run_until(&mut self, deadline: SimTime) -> Vec<TaskRecord> {
        self.advance_until(deadline);
        std::mem::take(&mut self.records)
    }

    /// Like [`Engine::run_until`], but appends the completed records into
    /// `out` instead of returning a fresh vector. Both `out` and the
    /// internal record buffer keep their capacity, so a warmed-up caller
    /// polling epoch after epoch never touches the allocator.
    pub fn run_until_into(&mut self, deadline: SimTime, out: &mut Vec<TaskRecord>) {
        self.advance_until(deadline);
        out.append(&mut self.records);
    }

    fn advance_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.next_wakeup() {
            if t > deadline {
                break;
            }
            debug_assert!(t >= self.now, "engine time went backwards");
            self.run_epoch(t, deadline, false);
        }
        if deadline > self.now && deadline < SimTime::MAX {
            self.now = deadline;
        }
    }

    /// Runs until every injected task has completed.
    pub fn run_to_completion(&mut self) -> Vec<TaskRecord> {
        self.run_until(SimTime::MAX)
    }

    /// Runs until at least one task completes (or the engine quiesces),
    /// returning the records produced. Used by missions whose next step
    /// depends on a result — e.g. a car waiting for an instruction panel
    /// to be OCR'd before it can move. Epochs shrink to the true
    /// lookahead here, so the caller resumes within one wireless hop of
    /// the completion.
    pub fn run_until_record(&mut self) -> Vec<TaskRecord> {
        while self.records.is_empty() {
            let Some(t) = self.next_wakeup() else {
                break;
            };
            self.run_epoch(t, SimTime::MAX, true);
        }
        std::mem::take(&mut self.records)
    }

    /// Advances one barrier epoch `[start, end]` where
    /// `end = min(start + horizon, deadline)`: the parallel shard phase,
    /// the order-stable effect merge, the serial hub phase, and the
    /// spillover drain. The epoch grid is a pure function of the
    /// configuration and the (shard-count-invariant) event stream, so
    /// sharding never moves the boundaries.
    fn run_epoch(&mut self, start: SimTime, deadline: SimTime, stop_on_record: bool) {
        let horizon =
            if stop_on_record || self.cfg.overload.spillover.enabled || self.disconnect_armed {
                // Spillover and autonomous degraded execution both feed hub
                // decisions back into device FIFOs through `spill_inbox`;
                // epochs shrink to the true lookahead so the feedback lands
                // within one wireless hop of its causal time.
                self.lookahead
            } else {
                self.lookahead.max(EPOCH_FLOOR)
            };
        let end = start.saturating_add(horizon).min(deadline);
        if self.profile {
            let t0 = std::time::Instant::now();
            self.run_shard_phase(end);
            let t1 = std::time::Instant::now();
            self.collect_effects();
            let t2 = std::time::Instant::now();
            self.run_hub_phase(end);
            let t3 = std::time::Instant::now();
            self.breakdown.shard_ns += (t1 - t0).as_nanos() as u64;
            self.breakdown.merge_ns += (t2 - t1).as_nanos() as u64;
            self.breakdown.hub_ns += (t3 - t2).as_nanos() as u64;
        } else {
            self.run_shard_phase(end);
            self.collect_effects();
            self.run_hub_phase(end);
        }
        self.drain_spillover(end);
        // The clock tracks the latest *processed* event, not the epoch
        // boundary: the boundary is only a processing bound, so leaving
        // `now` at the last event keeps post-run submissions (mission
        // barriers at the last record's time) legal, exactly as in the
        // unsharded engine.
        let latest = self
            .shards
            .iter()
            .map(|s| s.cursor)
            .fold(self.now, SimTime::max);
        self.now = latest;
    }

    /// Phase A: every shard with work in the window advances
    /// independently (in parallel when cores and shards allow).
    fn run_shard_phase(&mut self, upto: SimTime) {
        let ctx = ShardCtx {
            hybrid: self.cfg.platform.is_hybrid(),
            upload_fraction: self.cfg.platform.upload_fraction(),
            input_scale: self.cfg.input_scale,
            uplink_budget: self.uplink_budget_bytes,
            device_factor: self.cfg.device_profile.compute_slowdown / 10.0,
            trace: self.tracer.is_enabled(),
            edge_rpc: &self.edge_rpc,
        };
        let mut active = 0usize;
        let mut only = 0usize;
        for (i, sh) in self.shards.iter().enumerate() {
            if sh.next_event().is_some_and(|t| t <= upto) {
                active += 1;
                only = i;
            }
        }
        if active == 0 {
            return;
        }
        if active == 1 {
            shard_phase(&mut self.shards[only], &ctx, upto);
            return;
        }
        let outer = crate::runner::outer_workers().max(1);
        let threads = (self.phase_budget / outer).clamp(1, self.shards.len());
        if threads <= 1 {
            for sh in &mut self.shards {
                shard_phase(sh, &ctx, upto);
            }
            return;
        }
        let chunk = self.shards.len().div_ceil(threads);
        let ctx = &ctx;
        std::thread::scope(|scope| {
            for group in self.shards.chunks_mut(chunk) {
                scope.spawn(move || {
                    for sh in group {
                        shard_phase(sh, ctx, upto);
                    }
                });
            }
        });
    }

    /// Barrier: the batched cross-shard exchange. Every shard's (sorted)
    /// effect batch and the previous epoch's not-yet-due leftovers fold
    /// through one k-way merge into the next pending run — a single
    /// buffer swap per epoch instead of a per-event heap handoff. The
    /// result is the same unique `(time, device, seq)` order a global
    /// heap would produce, independent of the shard count.
    fn collect_effects(&mut self) {
        if self.shards.len() == 1 {
            let sh = &mut self.shards[0];
            if sh.out.is_empty() {
                return;
            }
            self.breakdown.exchange_epochs += 1;
            self.breakdown.exchange_effects += sh.out.len() as u64;
            if self.pending_cursor == self.pending.len() {
                // No leftovers: the fresh batch *is* the next pending
                // run; swap buffers and reuse the old one for emission.
                std::mem::swap(&mut self.pending, &mut sh.out);
            } else {
                self.pending_scratch.clear();
                merge_keyed_into(
                    &[&self.pending[self.pending_cursor..], &sh.out],
                    &mut self.pending_scratch,
                );
                std::mem::swap(&mut self.pending, &mut self.pending_scratch);
                self.breakdown.merge_elems += self.pending.len() as u64;
            }
            sh.out.clear();
            self.pending_cursor = 0;
            return;
        }
        let leftover = self.pending_cursor < self.pending.len();
        if !leftover && self.shards.iter().all(|s| s.out.is_empty()) {
            return;
        }
        self.breakdown.exchange_epochs += 1;
        self.breakdown.exchange_effects +=
            self.shards.iter().map(|s| s.out.len() as u64).sum::<u64>();
        self.pending_scratch.clear();
        {
            let mut runs: Vec<&[(EffectKey, Effect)]> = Vec::with_capacity(self.shards.len() + 1);
            runs.push(&self.pending[self.pending_cursor..]);
            for sh in &self.shards {
                runs.push(&sh.out);
            }
            merge_keyed_into(&runs, &mut self.pending_scratch);
        }
        std::mem::swap(&mut self.pending, &mut self.pending_scratch);
        self.breakdown.merge_elems += self.pending.len() as u64;
        self.pending_cursor = 0;
        for sh in &mut self.shards {
            sh.out.clear();
        }
    }

    /// Phase B: the serial hub loop — due effects, hub actions, network
    /// deliveries, and cloud completions, interleaved in global time
    /// order up to the epoch boundary.
    fn run_hub_phase(&mut self, end: SimTime) {
        loop {
            let mut best: Option<SimTime> =
                self.pending.get(self.pending_cursor).map(|&(k, _)| k.at);
            {
                let mut merge = |t: Option<SimTime>| {
                    best = match (best, t) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                };
                merge(self.actions.peek().map(|(t, _)| t));
                merge(self.fabric.next_wakeup());
                merge(self.cluster.as_ref().and_then(|c| c.next_wakeup()));
                merge(self.pool.as_ref().and_then(|p| p.next_wakeup()));
            }
            let Some(t) = best else { break };
            if t > end {
                break;
            }
            if t > self.now {
                self.now = t;
            }
            // 1. Due effects: a cursor walk over the sorted pending run,
            //    already in merge-key order.
            while let Some(&(key, effect)) = self.pending.get(self.pending_cursor) {
                if key.at > t {
                    break;
                }
                self.pending_cursor += 1;
                self.hub_events += 1;
                self.apply_effect(key, effect);
            }
            // 2. Hub actions due now.
            while self.actions.peek().is_some_and(|(at, _)| at <= t) {
                let ((at, _), action) = self.actions.pop().expect("peeked");
                self.hub_events += 1;
                self.handle_action(at, action);
            }
            // 3. Network deliveries (through the reusable scratch buffer —
            //    the hot path allocates nothing in steady state).
            let mut deliveries = std::mem::take(&mut self.delivery_scratch);
            self.fabric.advance_into(t, &mut deliveries);
            for d in deliveries.drain(..) {
                self.hub_events += 1;
                self.handle_delivery(d);
            }
            self.delivery_scratch = deliveries;
            // 4. Cloud completions (cluster first, then pool — platforms
            //    carry at most one, but the order is part of the contract).
            let mut completions = std::mem::take(&mut self.completion_scratch);
            if let Some(cluster) = self.cluster.as_mut() {
                cluster.advance_into(t, &mut completions);
            }
            if let Some(pool) = self.pool.as_mut() {
                pool.advance_into(t, &mut completions);
            }
            for c in completions.drain(..) {
                self.hub_events += 1;
                self.handle_cloud_completion(
                    c.finished,
                    c.tag,
                    c.server,
                    c.breakdown,
                    c.cold_start,
                    c.outcome,
                );
            }
            self.completion_scratch = completions;
        }
    }

    /// Resubmits hub-phase spillover jobs to their device FIFOs at the
    /// epoch boundary, in hub (time) order.
    fn drain_spillover(&mut self, end: SimTime) {
        if self.spill_inbox.is_empty() {
            return;
        }
        let inbox = std::mem::take(&mut self.spill_inbox);
        for (orig, device, job, service) in inbox {
            let at = orig.max(end);
            self.hub_edge_submit(at, device, job, service);
        }
    }

    /// Shard-aware FIFO submission from the (serial) hub side.
    fn hub_edge_submit(&mut self, now: SimTime, device: u32, job: u64, service: SimDuration) {
        let sh = &mut self.shards[self.map.shard_of(device) as usize];
        let di = (device - sh.first_dev) as usize;
        let fifo = &mut sh.fifos[di];
        let prev = fifo.next_wakeup();
        fifo.submit(now, job, service);
        let new = fifo.next_wakeup();
        // Index only head changes — one live entry per device, not one
        // per job (which would go quadratic on overloaded devices).
        if new != prev {
            if let Some(t) = new {
                sh.wake.push((t, device), ());
            }
        }
        if self.tracer.is_enabled() {
            let depth = sh.fifos[di].load() as f64;
            self.tracer.counter("edge", "queue", device, now, depth);
        }
    }

    /// Applies one merged shard effect at its key instant.
    fn apply_effect(&mut self, key: EffectKey, effect: Effect) {
        let at = key.at;
        let device = key.lane;
        match effect {
            Effect::Uplink {
                task,
                bytes,
                network,
                management,
            } => {
                {
                    let st = &mut self.tasks[task as usize];
                    st.upload_bytes = bytes;
                    st.network += network;
                    st.management += management;
                }
                if let Some(heal) = self.autonomous_at(at) {
                    // The device's cloud lease expired mid-partition:
                    // degrade to autonomous on-device execution instead
                    // of holding the uplink for the rest of the window.
                    self.degrade_task(at, device, task, heal);
                    return;
                }
                self.battery_mut(device).draw_radio(bytes);
                let server = self.pick_server();
                let tag = self.fabric.send(
                    at,
                    Transfer {
                        src: Node::Device(device),
                        dst: Node::Server(server),
                        bytes,
                        tag: task as u64,
                    },
                );
                self.set_tag(tag.0, TagPurpose::Upload { task });
            }
            Effect::ResultUplink {
                task,
                bytes,
                network,
                management,
                exec,
            } => {
                {
                    let st = &mut self.tasks[task as usize];
                    st.network += network;
                    st.management += management;
                    st.exec = exec;
                }
                if let Some(heal) = self.autonomous_at(at) {
                    // The result is already computed at full fidelity on
                    // the device; finish locally and queue a summary for
                    // replay at heal instead of holding the upload.
                    self.note_autonomous(at, device, heal);
                    self.buffer_update(at, device, task);
                    self.finish_task(at, task);
                    return;
                }
                let server = self.pick_server();
                let tag = self.fabric.send(
                    at,
                    Transfer {
                        src: Node::Device(device),
                        dst: Node::Server(server),
                        bytes,
                        tag: task as u64,
                    },
                );
                self.set_tag(tag.0, TagPurpose::ResultUpload { task });
            }
            Effect::FinishLocal { task, queued } => {
                self.tasks[task as usize].management += queued;
                self.finish_task(at, task);
            }
            Effect::QueueDepth { depth } => {
                self.tracer
                    .counter("edge", "queue", device, at, depth as f64);
            }
        }
    }

    fn handle_action(&mut self, t: SimTime, action: Action) {
        match action {
            Action::SubmitCloud { task } => {
                let st = &self.tasks[task as usize];
                let app = st.app;
                let k = if self.cfg.intra_task {
                    app.intra_parallelism()
                } else {
                    1
                };
                self.tasks[task as usize].remaining = k;
                let app_id = if k > 1 { split_id(app) } else { app.app_id() };
                for i in 0..k {
                    let tag = (task as u64) * 16 + i as u64;
                    let inv = Invocation::root(app_id, tag);
                    if let Some(c) = self.cluster.as_mut() {
                        c.submit(t, inv);
                    } else if let Some(p) = self.pool.as_mut() {
                        p.submit(t, inv);
                    } else {
                        unreachable!("cloud placement requires a backend");
                    }
                }
            }
            Action::Response { task, from_server } => {
                let st = &self.tasks[task as usize];
                let bytes = st.app.cloud_profile().output_bytes;
                let device = st.device;
                let tag = self.fabric.send(
                    t,
                    Transfer {
                        src: Node::Server(from_server),
                        dst: Node::Device(device),
                        bytes,
                        tag: task as u64,
                    },
                );
                self.set_tag(tag.0, TagPurpose::Response { task });
            }
            Action::Finish { task } => self.finish_task(t, task),
            Action::Reconnect => self.reconcile_reconnect(t),
        }
    }

    /// When `at` falls inside a scheduled partition *and* the lease
    /// granted by the last pre-partition heartbeat ack has expired (the
    /// merged window has been open for at least one lease timeout),
    /// returns the window's heal instant in seconds. A pure function of
    /// the fault plan and the policy — no RNG, no per-shard state — so
    /// the autonomy decision is shard-count-invariant. During the first
    /// lease-timeout of a partition the device still trusts the cloud
    /// and its uplinks hold in the fabric, exactly as without the plane.
    fn autonomous_at(&self, at: SimTime) -> Option<f64> {
        if !self.disconnect_armed {
            return None;
        }
        let t = (at - SimTime::ZERO).as_secs_f64();
        let heal = self.cfg.faults.net.partition_until(t)?;
        let lease = self.cfg.disconnect.lease_timeout.as_secs_f64();
        // The lease had expired by `at` iff the same merged window
        // already covered `at - lease`; a distinct earlier window means
        // the lease was renewed in the gap between them.
        match self.cfg.faults.net.partition_until(t - lease) {
            Some(h) if h == heal => Some(heal),
            _ => None,
        }
    }

    /// Marks `device` autonomous under the merged window healing at
    /// `heal`, counting one lease expiration per (device, window).
    fn note_autonomous(&mut self, at: SimTime, device: u32, heal: f64) {
        let slot = &mut self.autonomy_heal[device as usize];
        if *slot != Some(heal) {
            *slot = Some(heal);
            self.reconnect_ledger.lease_expirations += 1;
            if self.tracer.is_enabled() {
                self.tracer.instant(
                    disconnect::TRACE_CAT,
                    disconnect::EV_AUTONOMOUS,
                    device,
                    at,
                    vec![("heal_secs", ArgValue::Str(format!("{heal}")))],
                );
            }
        }
    }

    /// Buffers one update summary for `task` in `device`'s replay ring.
    fn buffer_update(&mut self, at: SimTime, device: u32, task: u32) {
        let seq = self.rings[device as usize].push(at, task);
        if self.tracer.is_enabled() {
            self.tracer.instant(
                disconnect::TRACE_CAT,
                disconnect::EV_BUFFERED,
                device,
                at,
                vec![
                    ("task", ArgValue::U64(task as u64)),
                    ("seq", ArgValue::U64(seq)),
                ],
            );
        }
    }

    /// Re-routes a cloud-bound task to degraded autonomous on-device
    /// execution — the brownout spillover path with the disconnect
    /// policy's speedup/penalty — and buffers its update summary.
    fn degrade_task(&mut self, at: SimTime, device: u32, task: u32, heal: f64) {
        self.note_autonomous(at, device, heal);
        let app = self.tasks[task as usize].app;
        let policy = self.cfg.disconnect;
        let factor = self.cfg.device_profile.compute_slowdown / 10.0;
        self.rng_draws += 1;
        let service =
            edge_service_from(&mut self.rng, app, factor).mul_f64(1.0 / policy.degraded_speedup);
        {
            let st = &mut self.tasks[task as usize];
            st.placement = PlacementSite::Edge;
            st.exec = st.exec.max(service);
        }
        self.battery_mut(device).draw_compute(service);
        self.reconnect_ledger.tasks_degraded += 1;
        self.reconnect_ledger.accuracy_penalty_sum_pct += policy.accuracy_penalty_pct;
        self.buffer_update(at, device, task);
        if self.tracer.is_enabled() {
            self.tracer.instant(
                "task",
                "degraded",
                device,
                at,
                vec![("task", ArgValue::U64(task as u64))],
            );
        }
        // The device FIFO belongs to the shard phase; like overload
        // spillover, the job is resubmitted at the (shard-count-
        // invariant) epoch boundary.
        self.spill_inbox
            .push((at, device, edge_job(task, EdgeJobKind::Spillover), service));
    }

    /// The heal-time reconciliation session: every device drains its
    /// replay ring through its lifetime [`ReplaySession`] watermark in
    /// device-id order (deterministic and shard-count-invariant). Each
    /// accepted summary costs one radio transmission and rides the
    /// fabric untagged — bandwidth and energy are charged, but no
    /// response path follows. Duplicate offers are suppressed, so every
    /// buffered update lands exactly once across repeated partitions.
    fn reconcile_reconnect(&mut self, t: SimTime) {
        self.reconnect_ledger.partitions += 1;
        if self.tracer.is_enabled() {
            self.tracer.instant(
                disconnect::TRACE_CAT,
                disconnect::EV_RECONNECT,
                0,
                t,
                vec![(
                    "partitions",
                    ArgValue::U64(self.reconnect_ledger.partitions as u64),
                )],
            );
        }
        let summary_bytes = self.cfg.disconnect.summary_bytes;
        for device in 0..self.cfg.devices {
            self.autonomy_heal[device as usize] = None;
            if self.rings[device as usize].is_empty() {
                continue;
            }
            let updates: Vec<_> = self.rings[device as usize].drain().collect();
            for u in updates {
                if !self.sessions[device as usize].offer(u.seq) {
                    continue;
                }
                self.reconnect_ledger.staleness_secs_sum += (t - u.at).as_secs_f64();
                self.battery_mut(device).draw_radio(summary_bytes);
                let server = self.pick_server();
                let _ = self.fabric.send(
                    t,
                    Transfer {
                        src: Node::Device(device),
                        dst: Node::Server(server),
                        bytes: summary_bytes,
                        tag: u.seq,
                    },
                );
                if self.tracer.is_enabled() {
                    self.tracer.instant(
                        disconnect::TRACE_CAT,
                        disconnect::EV_REPLAYED,
                        device,
                        t,
                        vec![
                            ("task", ArgValue::U64(u.item as u64)),
                            ("seq", ArgValue::U64(u.seq)),
                        ],
                    );
                }
            }
        }
    }

    fn pick_server(&mut self) -> u32 {
        let s = self.next_server % self.cfg.servers;
        self.next_server += 1;
        s
    }

    fn handle_delivery(&mut self, d: hivemind_net::fabric::Delivery) {
        let Some(purpose) = self.tags.get_mut(d.id.0 as usize).and_then(Option::take) else {
            return;
        };
        match purpose {
            TagPurpose::Upload { task } => {
                self.tasks[task as usize].network += d.latency();
                self.rng_draws += 1;
                let recv = self.cloud_rpc.recv_cost(&mut self.rng, d.bytes);
                self.tasks[task as usize].network += recv;
                self.push_action(d.delivered_at + recv, Action::SubmitCloud { task });
            }
            TagPurpose::Response { task } => {
                let device = {
                    let st = &mut self.tasks[task as usize];
                    st.network += d.latency();
                    st.device
                };
                self.rng_draws += 1;
                let recv = self.edge_rpc.recv_overhead.sample(&mut self.rng);
                self.tasks[task as usize].network += recv;
                self.battery_mut(device).draw_radio(d.bytes);
                self.push_action(d.delivered_at + recv, Action::Finish { task });
            }
            TagPurpose::ResultUpload { task } => {
                self.tasks[task as usize].network += d.latency();
                self.rng_draws += 1;
                let recv = self.cloud_rpc.recv_cost(&mut self.rng, d.bytes);
                self.tasks[task as usize].network += recv;
                self.push_action(d.delivered_at + recv, Action::Finish { task });
            }
        }
    }

    fn handle_cloud_completion(
        &mut self,
        finished: SimTime,
        tag: u64,
        server: u32,
        breakdown: hivemind_faas::types::LatencyBreakdown,
        cold: bool,
        outcome: hivemind_faas::types::Outcome,
    ) {
        let task = (tag / 16) as u32;
        let (output_bytes, sub_done, device, lost, shed, app) = {
            let st = &mut self.tasks[task as usize];
            // Aggregate sub-invocation contributions; the slowest defines
            // the completion time, the cost components take the max (they
            // overlap in wall-clock time), management accumulates.
            st.management += breakdown.queueing + breakdown.management;
            st.instantiation = st.instantiation.max(breakdown.instantiation);
            st.data_io = st.data_io.max(breakdown.data_io);
            st.exec = st.exec.max(breakdown.exec);
            st.cold |= cold;
            st.sub_done = st.sub_done.max(finished);
            if matches!(outcome, hivemind_faas::types::Outcome::Failed { .. }) {
                st.failed = true;
            }
            if matches!(outcome, hivemind_faas::types::Outcome::Shed { .. }) {
                st.shed = true;
            }
            st.remaining -= 1;
            if st.remaining != 0 {
                return;
            }
            if st.failed {
                // The retry policy gave up on (at least) one sub-invocation:
                // the task is lost — no response, no record.
                st.done = true;
            }
            (
                st.app.cloud_profile().output_bytes,
                st.sub_done,
                st.device,
                st.failed,
                st.shed,
                st.app,
            )
        };
        if lost {
            self.ledger.tasks_lost += 1;
            if self.tracer.is_enabled() {
                self.tracer.instant(
                    "task",
                    "lost",
                    device,
                    sub_done,
                    vec![("task", ArgValue::U64(task as u64))],
                );
            }
            return;
        }
        if shed {
            // The overload plane refused (at least) one sub-invocation.
            // Brownout spillover re-routes the whole task to a degraded
            // on-device model; without spillover the task is shed outright.
            let spill = self.cfg.overload.spillover;
            if spill.enabled {
                let factor = self.cfg.device_profile.compute_slowdown / 10.0;
                self.rng_draws += 1;
                let service = edge_service_from(&mut self.rng, app, factor)
                    .mul_f64(1.0 / spill.degraded_speedup);
                {
                    let st = &mut self.tasks[task as usize];
                    st.placement = PlacementSite::Edge;
                    st.exec = st.exec.max(service);
                }
                self.battery_mut(device).draw_compute(service);
                self.shed_ledger.tasks_spilled += 1;
                self.shed_ledger.accuracy_penalty_sum_pct += spill.accuracy_penalty_pct;
                if self.tracer.is_enabled() {
                    self.tracer.instant(
                        "task",
                        "spillover",
                        device,
                        sub_done,
                        vec![("task", ArgValue::U64(task as u64))],
                    );
                }
                // The device FIFO belongs to the shard phase, which has
                // already advanced past `sub_done`; the job is resubmitted
                // at the (shard-count-invariant) epoch boundary.
                self.spill_inbox.push((
                    sub_done,
                    device,
                    edge_job(task, EdgeJobKind::Spillover),
                    service,
                ));
            } else {
                self.tasks[task as usize].done = true;
                self.shed_ledger.tasks_shed += 1;
                if self.tracer.is_enabled() {
                    self.tracer.instant(
                        "task",
                        "shed",
                        device,
                        sub_done,
                        vec![("task", ArgValue::U64(task as u64))],
                    );
                }
            }
            return;
        }
        self.rng_draws += 1;
        let send = self.cloud_rpc.send_cost(&mut self.rng, output_bytes);
        self.tasks[task as usize].network += send;
        self.push_action(
            sub_done + send,
            Action::Response {
                task,
                from_server: server,
            },
        );
    }

    fn finish_task(&mut self, t: SimTime, task: u32) {
        let st = &mut self.tasks[task as usize];
        debug_assert!(!st.done, "double finish for task {task}");
        st.done = true;
        let record = TaskRecord {
            task,
            app: st.app,
            device: st.device,
            label: st.label,
            capture: st.capture,
            done: t,
            placement: st.placement,
            network: st.network,
            management: st.management,
            instantiation: st.instantiation,
            data_io: st.data_io,
            exec: st.exec,
            cold_start: st.cold,
        };
        self.trace_task(&record);
        self.records.push(record);
    }

    /// Emits the task's overall span plus its Fig. 13 breakdown phases
    /// laid end to end from capture time, so per-phase durations in the
    /// trace sum exactly to the [`TaskRecord`] components (no-op when
    /// tracing is disabled).
    fn trace_task(&self, r: &TaskRecord) {
        if !self.tracer.is_enabled() {
            return;
        }
        self.tracer.span(
            "task",
            "task",
            r.device,
            r.capture,
            r.done - r.capture,
            vec![
                ("task", ArgValue::U64(r.task as u64)),
                ("app", ArgValue::Str(format!("{:?}", r.app))),
                ("placement", ArgValue::Str(format!("{:?}", r.placement))),
                ("cold", ArgValue::Bool(r.cold_start)),
            ],
        );
        let mut at = r.capture;
        for (name, dur) in [
            ("network", r.network),
            ("management", r.management),
            ("instantiation", r.instantiation),
            ("data_io", r.data_io),
            ("exec", r.exec),
        ] {
            if dur > SimDuration::ZERO {
                self.tracer.span(
                    "task",
                    name,
                    r.device,
                    at,
                    dur,
                    vec![("task", ArgValue::U64(r.task as u64))],
                );
            }
            at = at.saturating_add(dur);
        }
    }

    /// Engine-level fault bookkeeping (lost tasks, device failures,
    /// controller failovers, detection/recovery latency sums).
    pub fn fault_ledger(&self) -> FaultLedger {
        self.ledger
    }

    /// Engine-level overload bookkeeping (spilled and shed tasks,
    /// accumulated accuracy penalty).
    pub fn shed_ledger(&self) -> ShedLedger {
        self.shed_ledger
    }

    /// Engine-level disconnected-operation bookkeeping. The replay
    /// counters are read live from the per-device rings and sessions, so
    /// the conservation identity
    /// `buffered == replayed + expired + still-buffered` holds by
    /// construction at every instant.
    pub fn reconnect_ledger(&self) -> ReconnectLedger {
        let mut l = self.reconnect_ledger;
        l.updates_buffered = self.rings.iter().map(|r| r.pushed()).sum();
        l.updates_expired = self.rings.iter().map(|r| r.expired()).sum();
        l.updates_replayed = self.sessions.iter().map(|s| s.delivered()).sum();
        l.duplicates_dropped = self.sessions.iter().map(|s| s.duplicates()).sum();
        l
    }

    /// Whether the disconnect plane is armed for this run: an active
    /// policy plus at least one scheduled partition window.
    pub fn disconnect_armed(&self) -> bool {
        self.disconnect_armed
    }

    /// Records heartbeat re-arms applied by the mission layer's reconnect
    /// reconciliation (the controller side of the heal protocol).
    pub fn note_reconnect_rearm(&mut self, devices: u32) {
        self.reconnect_ledger.devices_rearmed += devices as u64;
    }

    /// Records a device failure applied by the mission layer: `detection`
    /// is the heartbeat-silence window before the controller declared it
    /// dead, `recovery` the span from failure to the moment its area is
    /// fully re-covered by the heirs.
    pub fn note_device_failure(&mut self, detection: SimDuration, recovery: SimDuration) {
        self.ledger.device_failures += 1;
        self.ledger.detection_secs_sum += detection.as_secs_f64();
        self.ledger.recovery_secs_sum += recovery.as_secs_f64();
        self.ledger.recovery_events += 1;
    }

    /// Battery state of a device.
    pub fn battery(&self, device: u32) -> &Battery {
        let (s, di) = self.locate(device);
        self.shards[s].batteries.cell(di)
    }

    /// Mutable battery access (missions charge motion energy directly).
    pub fn battery_mut(&mut self, device: u32) -> &mut Battery {
        let (s, di) = self.locate(device);
        self.shards[s].batteries.cell_mut(di)
    }

    /// The network fabric (bandwidth accounting).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Mutable fabric access (meter finalization).
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// The FaaS cluster, when this platform runs one.
    pub fn cluster(&self) -> Option<&Cluster> {
        self.cluster.as_ref()
    }

    /// The IaaS fixed pool, when this platform runs one.
    pub fn pool(&self) -> Option<&FixedPool> {
        self.pool.as_ref()
    }

    /// Concurrently active cloud functions over time, whichever backend
    /// is in use.
    pub fn active_series(&self) -> Option<&hivemind_sim::stats::TimeSeries> {
        self.cluster
            .as_ref()
            .map(|c| c.active_series())
            .or_else(|| self.pool.as_ref().map(|p| p.active_series()))
    }

    /// Pending on-device work for a device (queue depth).
    pub fn edge_load(&self, device: u32) -> usize {
        let (s, di) = self.locate(device);
        self.shards[s].fifos[di].load()
    }

    /// Total on-device busy compute time for a device.
    pub fn edge_busy_time(&self, device: u32) -> SimDuration {
        let (s, di) = self.locate(device);
        self.shards[s].fifos[di].busy_time()
    }
}

/// Advances one shard through `[.., upto]`: local captures and FIFO
/// completions in device-local time order, drawing only from per-device
/// RNG lanes and emitting boundary effects. Runs with no access to hub
/// state, so shards advance in parallel.
fn shard_phase(sh: &mut Shard, ctx: &ShardCtx<'_>, upto: SimTime) {
    while let Some(t) = sh.next_event() {
        if t > upto {
            break;
        }
        sh.cursor = sh.cursor.max(t);
        while sh.actions.peek().is_some_and(|(at, _)| at <= t) {
            let ((at, _), c) = sh.actions.pop().expect("peeked");
            sh.events += 1;
            shard_capture(sh, ctx, at, c);
        }
        drain_completions(sh, ctx, t);
    }
    // The hub merges batches by `(time, device, seq)`; emissions can be
    // future-dated (`finish + send`), so local order is not key order.
    // Keys are unique, so the unstable sort is order-deterministic and
    // avoids the stable sort's temporary buffer.
    sh.out.sort_unstable_by_key(|&(k, _)| k);
}

/// Stamps and queues one effect on the shard's outbound batch.
fn emit(sh: &mut Shard, device: u32, at: SimTime, effect: Effect) {
    let di = (device - sh.first_dev) as usize;
    let seq = sh.eseqs[di];
    sh.eseqs[di] += 1;
    sh.out.push((EffectKey::new(at, device, seq), effect));
}

/// Shard-side FIFO submission (mirrors the hub's head-change wake
/// indexing; the queue-depth counter rides the effect stream).
fn fifo_submit(
    sh: &mut Shard,
    ctx: &ShardCtx<'_>,
    now: SimTime,
    device: u32,
    job: u64,
    service: SimDuration,
) {
    let di = (device - sh.first_dev) as usize;
    let fifo = &mut sh.fifos[di];
    let prev = fifo.next_wakeup();
    fifo.submit(now, job, service);
    let new = fifo.next_wakeup();
    if new != prev {
        if let Some(t) = new {
            sh.wake.push((t, device), ());
        }
    }
    if ctx.trace {
        let depth = sh.fifos[di].load() as u64;
        emit(sh, device, now, Effect::QueueDepth { depth });
    }
}

fn shard_capture(sh: &mut Shard, ctx: &ShardCtx<'_>, at: SimTime, c: Capture) {
    let Capture {
        task,
        device,
        app,
        placement,
    } = c;
    let di = (device - sh.first_dev) as usize;
    match placement {
        PlacementSite::Edge => {
            sh.rng_draws += 1;
            let service = edge_service_from(&mut sh.rngs[di], app, ctx.device_factor);
            let bytes = app.cloud_profile().output_bytes.max(1);
            sh.batteries.cell_mut(di).draw_compute(service);
            sh.pending_jobs
                .insert(task, EdgePending::Exec { bytes, service });
            fifo_submit(
                sh,
                ctx,
                at,
                device,
                edge_job(task, EdgeJobKind::Exec),
                service,
            );
        }
        PlacementSite::Cloud => {
            let mut upload =
                (scaled_input_bytes(app, ctx.input_scale) as f64) * ctx.upload_fraction;
            if ctx.hybrid {
                // The synthesized collect tier is rate-adaptive: it
                // never offers more than ~70% of the device's fair
                // share of the wireless medium, so HiveMind "does not
                // saturate the network links" even at 8 MB / 32 fps
                // (Sec. 5.6, Fig. 17a) — excess pixels are culled by
                // the on-device filter instead.
                upload = upload.min(ctx.uplink_budget);
            }
            let upload_bytes = (upload as u64).max(1);
            if ctx.hybrid {
                // The synthesized on-device filter tier runs first: a
                // cheap salience detector, far lighter than the full
                // model (bounded so it never dominates the device).
                sh.rng_draws += 1;
                let filter = edge_service_from(&mut sh.rngs[di], app, ctx.device_factor)
                    .mul_f64(0.02)
                    .min(SimDuration::from_millis(40));
                sh.batteries.cell_mut(di).draw_compute(filter);
                sh.pending_jobs
                    .insert(task, EdgePending::Filter { upload_bytes });
                fifo_submit(
                    sh,
                    ctx,
                    at,
                    device,
                    edge_job(task, EdgeJobKind::Filter),
                    filter,
                );
            } else {
                sh.rng_draws += 1;
                let send = ctx.edge_rpc.send_cost(&mut sh.rngs[di], upload_bytes);
                emit(
                    sh,
                    device,
                    at + send,
                    Effect::Uplink {
                        task,
                        bytes: upload_bytes,
                        network: send,
                        management: SimDuration::ZERO,
                    },
                );
            }
        }
    }
}

/// Drains this shard's FIFO completions due by `t`, in global head-time
/// order (wake entries are exact head times or stale-early duplicates).
fn drain_completions(sh: &mut Shard, ctx: &ShardCtx<'_>, t: SimTime) {
    let mut done = std::mem::take(&mut sh.done_scratch);
    while let Some((et, dev)) = sh.wake.peek() {
        if et > t {
            break;
        }
        sh.wake.pop();
        let di = (dev - sh.first_dev) as usize;
        match sh.fifos[di].next_wakeup() {
            Some(actual) if actual <= t => {
                sh.fifos[di].advance_into(actual, &mut done);
                if let Some(next) = sh.fifos[di].next_wakeup() {
                    sh.wake.push((next, dev), ());
                }
                if ctx.trace {
                    let depth = sh.fifos[di].load() as u64;
                    emit(sh, dev, actual, Effect::QueueDepth { depth });
                }
                // Drain in place: `done` keeps its high-water capacity
                // across batches instead of reallocating per completion.
                for (finish, job, queued) in done.drain(..) {
                    sh.events += 1;
                    edge_completion(sh, ctx, dev, finish, job, queued);
                }
            }
            Some(actual) => sh.wake.push((actual, dev), ()),
            None => {}
        }
    }
    sh.done_scratch = done;
}

fn edge_completion(
    sh: &mut Shard,
    ctx: &ShardCtx<'_>,
    dev: u32,
    finish: SimTime,
    job: u64,
    queued: SimDuration,
) {
    let (task, kind) = decode_edge_job(job);
    let di = (dev - sh.first_dev) as usize;
    match kind {
        EdgeJobKind::Exec => {
            let Some(EdgePending::Exec { bytes, service }) = sh.pending_jobs.remove(&task) else {
                unreachable!("exec completion without pending state");
            };
            sh.batteries.cell_mut(di).draw_radio(bytes);
            sh.rng_draws += 1;
            let send = ctx.edge_rpc.send_cost(&mut sh.rngs[di], bytes);
            emit(
                sh,
                dev,
                finish + send,
                Effect::ResultUplink {
                    task,
                    bytes,
                    network: send,
                    management: queued,
                    exec: service,
                },
            );
        }
        EdgeJobKind::Filter => {
            let Some(EdgePending::Filter { upload_bytes }) = sh.pending_jobs.remove(&task) else {
                unreachable!("filter completion without pending state");
            };
            sh.rng_draws += 1;
            let send = ctx.edge_rpc.send_cost(&mut sh.rngs[di], upload_bytes);
            emit(
                sh,
                dev,
                finish + send,
                Effect::Uplink {
                    task,
                    bytes: upload_bytes,
                    network: send,
                    management: queued,
                },
            );
        }
        EdgeJobKind::Spillover => {
            // Degraded re-execution finished: the result is already on
            // the device, so the task completes with no downlink leg.
            emit(sh, dev, finish, Effect::FinishLocal { task, queued });
        }
    }
}

/// On-device service time: the app's edge slow-down is calibrated for
/// the drone's Cortex-A8; other device classes scale proportionally.
fn edge_service_from(rng: &mut SmallRng, app: App, device_factor: f64) -> SimDuration {
    let factor = (app.edge_slowdown() * device_factor).max(1.0);
    let cloud = app.cloud_profile().exec.sample(rng);
    cloud.mul_f64(factor)
}

fn scaled_input_bytes(app: App, input_scale: f64) -> u64 {
    ((app.cloud_profile().input_bytes as f64) * input_scale).max(1.0) as u64
}

fn scaled_profile(app: App, cfg: &EngineConfig) -> AppProfile {
    let base = app.cloud_profile();
    AppProfile {
        input_bytes: ((base.input_bytes as f64) * cfg.input_scale * cfg.platform.upload_fraction())
            as u64,
        ..base
    }
}

fn split_id(app: App) -> AppId {
    AppId(100 + app.app_id().0)
}

fn split_profile(app: App, cfg: &EngineConfig) -> AppProfile {
    let base = scaled_profile(app, cfg);
    let k = app.intra_parallelism().max(1) as f64;
    AppProfile {
        exec: base.exec.scaled(1.0 / k),
        input_bytes: ((base.input_bytes as f64) / k) as u64,
        output_bytes: ((base.output_bytes as f64) / k).max(1.0) as u64,
        ..base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_one(platform: Platform, app: App) -> TaskRecord {
        let mut engine = Engine::new(EngineConfig::testbed(platform));
        engine.submit_task(SimTime::ZERO, 0, app, 0);
        let records = engine.run_to_completion();
        assert_eq!(records.len(), 1);
        records.into_iter().next().unwrap()
    }

    #[test]
    fn centralized_task_round_trips() {
        let r = run_one(Platform::CentralizedFaaS, App::FaceRecognition);
        assert_eq!(r.placement, PlacementSite::Cloud);
        assert!(r.network > SimDuration::from_millis(10), "2 MB uplink");
        assert!(r.exec >= SimDuration::from_millis(100));
        assert!(r.instantiation > SimDuration::ZERO, "first call is cold");
        assert!(r.cold_start);
        let parts = r.network + r.management + r.instantiation + r.data_io + r.exec;
        assert!(
            parts <= r.latency() + SimDuration::from_millis(1),
            "breakdown must not exceed total: {parts} vs {}",
            r.latency()
        );
    }

    #[test]
    fn distributed_task_runs_on_device() {
        let r = run_one(Platform::DistributedEdge, App::FaceRecognition);
        assert_eq!(r.placement, PlacementSite::Edge);
        // 10× slower than the ~250 ms cloud median.
        assert!(r.exec > SimDuration::from_secs(1));
        assert_eq!(r.instantiation, SimDuration::ZERO);
    }

    #[test]
    fn hivemind_places_light_apps_at_edge_heavy_in_cloud() {
        let engine = Engine::new(EngineConfig::testbed(Platform::HiveMind));
        assert_eq!(
            engine.placement_of(App::WeatherAnalytics),
            PlacementSite::Edge
        );
        assert_eq!(
            engine.placement_of(App::DroneDetection),
            PlacementSite::Edge
        );
        assert_eq!(
            engine.placement_of(App::ObstacleAvoidance),
            PlacementSite::Edge
        );
        assert_eq!(
            engine.placement_of(App::FaceRecognition),
            PlacementSite::Cloud
        );
        assert_eq!(engine.placement_of(App::Slam), PlacementSite::Cloud);
    }

    #[test]
    fn hivemind_beats_centralized_on_heavy_apps() {
        let mut latencies = Vec::new();
        for platform in [Platform::CentralizedFaaS, Platform::HiveMind] {
            let mut engine = Engine::new(EngineConfig::testbed(platform));
            for i in 0..60u64 {
                for dev in 0..16 {
                    engine.submit_task(SimTime::from_secs(i), dev, App::TextRecognition, 0);
                }
            }
            let records = engine.run_to_completion();
            let mut s = hivemind_sim::stats::Summary::new();
            for r in &records {
                s.record_duration(r.latency());
            }
            latencies.push(s.median());
        }
        assert!(
            latencies[1] < latencies[0],
            "HiveMind {} should beat centralized {}",
            latencies[1],
            latencies[0]
        );
    }

    #[test]
    fn edge_queueing_explodes_for_heavy_distributed_apps() {
        let mut engine = Engine::new(EngineConfig::testbed(Platform::DistributedEdge));
        for i in 0..30u64 {
            engine.submit_task(SimTime::from_secs(i), 0, App::Slam, 0);
        }
        let records = engine.run_to_completion();
        let first = records.first().unwrap().latency();
        let last = records.last().unwrap().latency();
        assert!(
            last > first * 3,
            "queue must grow: first {first}, last {last}"
        );
    }

    #[test]
    fn intra_task_parallelism_cuts_latency() {
        let lat = |intra: bool| {
            let mut cfg = EngineConfig::testbed(Platform::CentralizedFaaS);
            cfg.intra_task = intra;
            let mut engine = Engine::new(cfg);
            for i in 0..20u64 {
                engine.submit_task(SimTime::from_secs(i), 0, App::Slam, 0);
            }
            let records = engine.run_to_completion();
            let mut s = hivemind_sim::stats::Summary::new();
            for r in &records {
                s.record_duration(r.latency());
            }
            s.median()
        };
        let serial = lat(false);
        let parallel = lat(true);
        assert!(
            parallel < serial * 0.75,
            "8-way SLAM split should cut latency: {serial} -> {parallel}"
        );
    }

    #[test]
    fn batteries_charge_radio_and_compute() {
        let mut engine = Engine::new(EngineConfig::testbed(Platform::CentralizedFaaS));
        engine.submit_task(SimTime::ZERO, 3, App::FaceRecognition, 0);
        let _ = engine.run_to_completion();
        assert!(engine.battery(3).consumed_j() > 0.0, "radio energy spent");
        assert_eq!(engine.battery(0).consumed_j(), 0.0);

        let mut engine = Engine::new(EngineConfig::testbed(Platform::DistributedEdge));
        engine.submit_task(SimTime::ZERO, 3, App::FaceRecognition, 0);
        let _ = engine.run_to_completion();
        let (_, compute, _, _) = engine.battery(3).energy_split();
        assert!(compute > 0.0, "on-board exec costs compute energy");
    }

    #[test]
    fn bandwidth_meter_sees_uploads() {
        let mut engine = Engine::new(EngineConfig::testbed(Platform::CentralizedFaaS));
        for dev in 0..16 {
            engine.submit_task(SimTime::ZERO, dev, App::FaceRecognition, 0);
        }
        let _ = engine.run_to_completion();
        // 16 × 2 MB uplink + small responses.
        assert!(engine.fabric().edge_bytes_total() >= 32_000_000.0);
    }

    #[test]
    fn hybrid_uploads_less_than_centralized() {
        let edge_bytes = |platform| {
            let mut engine = Engine::new(EngineConfig::testbed(platform));
            for dev in 0..16 {
                engine.submit_task(SimTime::ZERO, dev, App::FaceRecognition, 0);
            }
            let _ = engine.run_to_completion();
            engine.fabric().edge_bytes_total()
        };
        let centralized = edge_bytes(Platform::CentralizedFaaS);
        let hivemind = edge_bytes(Platform::HiveMind);
        assert!(
            hivemind < centralized * 0.7,
            "hybrid filtering must cut uplink bytes: {hivemind} vs {centralized}"
        );
    }

    #[test]
    fn input_scale_grows_network_share() {
        let net = |scale: f64| {
            let mut cfg = EngineConfig::testbed(Platform::CentralizedFaaS);
            cfg.input_scale = scale;
            let mut engine = Engine::new(cfg);
            engine.submit_task(SimTime::ZERO, 0, App::FaceRecognition, 0);
            engine.run_to_completion()[0].network
        };
        assert!(net(4.0) > net(1.0) * 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_device_panics() {
        let mut engine = Engine::new(EngineConfig::testbed(Platform::CentralizedFaaS));
        engine.submit_task(SimTime::ZERO, 99, App::Maze, 0);
    }

    #[test]
    fn multi_tenant_apps_share_the_cluster() {
        // "We evaluate one service at a time to eliminate interference,
        // however, the platform supports multi-tenancy" (Sec. 2.1).
        let mut engine = Engine::new(EngineConfig::testbed(Platform::CentralizedFaaS));
        for i in 0..20u64 {
            for (dev, app) in [
                (0u32, App::FaceRecognition),
                (1, App::WeatherAnalytics),
                (2, App::Slam),
            ] {
                engine.submit_task(SimTime::from_secs(i), dev, app, 0);
            }
        }
        let records = engine.run_to_completion();
        assert_eq!(records.len(), 60);
        let median = |app: App| {
            let mut s = hivemind_sim::stats::Summary::new();
            for r in records.iter().filter(|r| r.app == app) {
                s.record_duration(r.latency());
            }
            s.median()
        };
        // Per-app latencies keep their identity under co-tenancy.
        assert!(median(App::WeatherAnalytics) < median(App::FaceRecognition));
        assert!(median(App::FaceRecognition) < median(App::Slam));
    }

    #[test]
    fn worker_monitors_report_utilization() {
        let mut engine = Engine::new(EngineConfig::testbed(Platform::HiveMind));
        for dev in 0..16 {
            engine.submit_task(SimTime::ZERO, dev, App::Slam, 0);
        }
        // Advance partway: functions should be in flight.
        let _ = engine.run_until(SimTime::ZERO + SimDuration::from_millis(400));
        let cluster = engine.cluster().expect("HiveMind runs a cluster");
        let utils = cluster.server_utilizations();
        assert_eq!(utils.len(), 12);
        assert!(utils.iter().all(|&u| (0.0..=1.0).contains(&u)));
        assert!(
            utils.iter().sum::<f64>() > 0.0,
            "monitors observe the in-flight load"
        );
        let _ = engine.run_to_completion();
    }

    #[test]
    fn accelerated_platforms_carry_the_fpga() {
        let hm = Engine::new(EngineConfig::testbed(Platform::HiveMind));
        let board = hm.fpga().expect("HiveMind deploys the fabric");
        // Ten apps registered → ten soft reconfigurations, no hard ones.
        assert_eq!(board.reconfig_counts(), (0, 10));
        let cen = Engine::new(EngineConfig::testbed(Platform::CentralizedFaaS));
        assert!(cen.fpga().is_none(), "stock OpenWhisk has no FPGA");
    }

    #[test]
    fn iaas_pool_executes_tasks() {
        let r = run_one(Platform::CentralizedIaaS, App::WeatherAnalytics);
        assert_eq!(r.placement, PlacementSite::Cloud);
        assert_eq!(r.instantiation, SimDuration::ZERO, "reserved workers");
    }

    /// Runs a mixed workload (edge + cloud placements, multiple devices)
    /// and fingerprints everything byte-visible about the records.
    fn record_fingerprint(platform: Platform, shards: u32) -> Vec<(u32, u32, u64, u64, u64)> {
        let mut cfg = EngineConfig::testbed(platform);
        cfg.shards = shards;
        let mut engine = Engine::new(cfg);
        for i in 0..20u64 {
            for dev in 0..16 {
                let app = if dev % 2 == 0 {
                    App::FaceRecognition
                } else {
                    App::DroneDetection
                };
                engine.submit_task(SimTime::from_secs(i), dev, app, dev);
            }
        }
        let records = engine.run_to_completion();
        records
            .iter()
            .map(|r| {
                (
                    r.task,
                    r.device,
                    (r.done - SimTime::ZERO).as_nanos(),
                    r.network.as_nanos(),
                    r.exec.as_nanos(),
                )
            })
            .collect()
    }

    #[test]
    fn shard_count_never_changes_a_byte() {
        for platform in [
            Platform::CentralizedFaaS,
            Platform::DistributedEdge,
            Platform::HiveMind,
        ] {
            let one = record_fingerprint(platform, 1);
            assert!(!one.is_empty());
            for shards in [2u32, 3, 8, 16, 64] {
                assert_eq!(
                    one,
                    record_fingerprint(platform, shards),
                    "{platform:?} diverged at {shards} shards"
                );
            }
        }
    }

    #[test]
    fn shard_count_is_clamped_to_devices() {
        let mut cfg = EngineConfig::testbed(Platform::HiveMind);
        cfg.shards = 1000;
        let engine = Engine::new(cfg);
        assert_eq!(engine.shard_count(), 16);
        assert_eq!(engine.lookahead(), SimDuration::from_millis(5));
    }

    #[test]
    fn events_counter_advances() {
        let mut engine = Engine::new(EngineConfig::testbed(Platform::HiveMind));
        assert_eq!(engine.events_processed(), 0);
        for dev in 0..16 {
            engine.submit_task(SimTime::ZERO, dev, App::DroneDetection, 0);
        }
        let records = engine.run_to_completion();
        assert_eq!(records.len(), 16);
        assert!(engine.events_processed() >= 32, "captures + completions");
    }
}

//! The experiment harness every figure is generated from.
//!
//! An [`Experiment`] couples a workload — one of the S1–S10 single-app
//! benchmarks under a configurable load, or an end-to-end mission — with
//! a [`Platform`] and swarm/cluster sizing, runs it on the deterministic
//! engine, and returns an [`Outcome`] carrying the paper's metrics.
//!
//! # Examples
//!
//! A 120-second S1 benchmark on the centralized serverless platform
//! (Fig. 4's setup):
//!
//! ```rust
//! use hivemind_core::experiment::{Experiment, ExperimentConfig};
//! use hivemind_core::platform::Platform;
//! use hivemind_apps::suite::App;
//!
//! let mut outcome = Experiment::new(
//!     ExperimentConfig::single_app(App::WeatherAnalytics)
//!         .platform(Platform::CentralizedFaaS)
//!         .duration_secs(30.0)
//!         .seed(1),
//! )
//! .run();
//! assert!(outcome.tasks.len() > 100);
//! assert!(outcome.median_task_ms() > 1.0);
//! ```

use std::fmt;

use hivemind_apps::learning::RetrainMode;
use hivemind_apps::scenario::{Fleet, Scenario};
use hivemind_apps::suite::App;
use hivemind_sim::disconnect::DisconnectPolicy;
use hivemind_sim::faults::{FaultPlan, FaultPlanError};
use hivemind_sim::overload::OverloadPolicy;
use hivemind_sim::stats::Summary;
use hivemind_sim::time::{SimDuration, SimTime};
use hivemind_swarm::device::DeviceProfile;

use crate::engine::{Engine, EngineConfig, TaskRecord};
use crate::metrics::{
    BandwidthStats, BatteryStats, MissionOutcome, Outcome, ReconnectStats, RecoveryStats, ShedStats,
};
use crate::mission;
use crate::platform::Platform;

/// What the experiment runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// One benchmark app at steady (or profiled) load for a duration.
    SingleApp {
        /// The app.
        app: App,
        /// Workload duration in seconds (paper: 120 s per job).
        duration_secs: f64,
    },
    /// An end-to-end mission.
    Mission(Scenario),
}

/// The run-control planes of an experiment, gathered into one builder
/// with a single cross-checking [`RunPlan::validate`]: fault injection,
/// overload control, tracing, scripted device failures, and engine
/// sharding. Attach one to a configuration with
/// [`ExperimentConfig::plan`]:
///
/// ```rust
/// use hivemind_core::experiment::{ExperimentConfig, RunPlan};
/// use hivemind_apps::suite::App;
/// use hivemind_sim::faults::FaultPlan;
///
/// let cfg = ExperimentConfig::single_app(App::FaceRecognition).plan(
///     RunPlan::new()
///         .faults(FaultPlan::default().packet_loss(0.05))
///         .trace(true)
///         .shards(4),
/// );
/// assert!(cfg.validate().is_ok());
/// ```
///
/// Every plane is inert by default: a default `RunPlan` leaves every
/// output byte identical to a plan-less run.
#[derive(Debug, Clone, Default)]
pub struct RunPlan {
    /// The fault-injection plan (network loss/outages, server crashes,
    /// function failure process + retry policy, device MTBF, controller
    /// failover). The inert default leaves every metric byte-identical.
    pub faults: FaultPlan,
    /// The overload-control policy (bounded admission, load shedding,
    /// circuit breaking, brownout spillover, network backpressure). The
    /// inert default leaves every metric byte-identical; an active policy
    /// makes no RNG draws, so its decisions are pure functions of load.
    pub overload: OverloadPolicy,
    /// The disconnected-operation policy (lease-based autonomy, bounded
    /// update buffering, exactly-once reconnect replay). The inert
    /// default leaves every metric byte-identical; the plane only ever
    /// acts during partition windows scheduled in the fault plan.
    pub disconnect: DisconnectPolicy,
    /// Collect a structured event trace; the result lands in
    /// [`Outcome::trace`]. Tracing draws no randomness, so enabling it
    /// never changes any metric.
    pub trace: bool,
    /// Mid-mission device failures: `(seconds_from_start, device)`. The
    /// controller detects each via missed heartbeats and repartitions the
    /// failed device's remaining area among its live neighbours (Fig. 10).
    pub device_failures: Vec<(f64, u32)>,
    /// Spatial shards for the engine's device-local event loop; `0`
    /// (the default) reads `HIVEMIND_SHARDS`. Purely a parallelism knob:
    /// every output byte is identical for every value.
    pub shards: u32,
}

impl RunPlan {
    /// An inert plan: no faults, no overload control, no tracing, no
    /// scripted failures, sharding from the environment.
    pub fn new() -> RunPlan {
        RunPlan::default()
    }

    /// Attaches a fault-injection plan. All stochastic fault draws come
    /// from a dedicated lane of the seed chain, so the same seed compares
    /// the same workload under different disturbance levels.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Attaches an overload-control policy. Unlike the fault plane, the
    /// overload plane draws no randomness at all — every shed, breaker,
    /// and backpressure decision is a pure function of queue lengths,
    /// counters, and event times.
    pub fn overload(mut self, policy: OverloadPolicy) -> Self {
        self.overload = policy;
        self
    }

    /// Attaches a disconnected-operation policy. Like the overload
    /// plane, the disconnect plane's own decisions draw no randomness:
    /// autonomy flips are pure functions of the fault plan's partition
    /// windows and the lease timeout (degraded execution samples its
    /// service time from the same engine stream the spillover path uses).
    pub fn disconnect(mut self, policy: DisconnectPolicy) -> Self {
        self.disconnect = policy;
        self
    }

    /// Enables (or disables) structured event tracing for the run.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Kills a device `at_secs` into the mission (missions only).
    pub fn fail_device(mut self, at_secs: f64, device: u32) -> Self {
        self.device_failures.push((at_secs, device));
        self
    }

    /// Pins the engine's shard count (0 = read `HIVEMIND_SHARDS`).
    pub fn shards(mut self, n: u32) -> Self {
        self.shards = n;
        self
    }

    /// Whether any plane deviates from the inert default in a way that
    /// can change metrics (sharding and tracing never do).
    pub fn is_active(&self) -> bool {
        self.faults.is_active()
            || self.overload.is_active()
            || self.disconnect.is_active()
            || !self.device_failures.is_empty()
    }

    /// Cross-checks every plane against the workload it will run under:
    /// `fail_device` entries must target a device inside the fleet and
    /// fire within `horizon_secs`, the fault plan and overload policy
    /// must each be self-consistent, and a pinned shard count must not
    /// exceed the fleet (one shard owns at least one device).
    pub fn validate(
        &self,
        devices: u32,
        servers: u32,
        horizon_secs: f64,
    ) -> Result<(), ConfigError> {
        for &(at_secs, device) in &self.device_failures {
            if device >= devices {
                return Err(ConfigError::FailedDeviceOutOfRange {
                    device,
                    fleet: devices,
                });
            }
            if !(at_secs.is_finite() && at_secs >= 0.0) || at_secs > horizon_secs {
                return Err(ConfigError::FailureOutsideMission {
                    at_secs,
                    horizon_secs,
                });
            }
        }
        self.faults
            .validate(devices, servers)
            .map_err(ConfigError::InvalidFaultPlan)?;
        self.overload
            .validate()
            .map_err(ConfigError::InvalidOverloadPolicy)?;
        self.disconnect
            .validate()
            .map_err(ConfigError::InvalidDisconnectPolicy)?;
        if self.shards > devices {
            return Err(ConfigError::InvalidShardPlan {
                shards: self.shards,
                fleet: devices,
            });
        }
        Ok(())
    }
}

/// Full experiment configuration (builder-style).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The workload.
    pub workload: Workload,
    /// The platform.
    pub platform: Platform,
    /// Edge device count.
    pub devices: u32,
    /// Backend servers.
    pub servers: u32,
    /// Cores per server.
    pub cores_per_server: u32,
    /// Root seed.
    pub seed: u64,
    /// Sensor payload scale (1.0 = 2 MB frames).
    pub input_scale: f64,
    /// Task-rate scale (1.0 = the app's default; 2.0 doubles fps).
    pub rate_scale: f64,
    /// Injected function fault probability.
    pub fault_rate: f64,
    /// Enable intra-task parallelism.
    pub intra_task: bool,
    /// Optional load profile: `(seconds_from_start, active_devices)`
    /// steps; `None` = all devices active throughout.
    pub load_profile: Option<Vec<(f64, u32)>>,
    /// Continuous-learning mode for missions.
    pub retrain: RetrainMode,
    /// Override the IaaS pool size.
    pub iaas_workers: Option<u32>,
    /// The run-control planes: faults, overload, tracing, scripted
    /// device failures, sharding.
    pub plan: RunPlan,
}

/// Why an [`ExperimentConfig`] cannot be run.
///
/// Produced by [`ExperimentConfig::validate`] /
/// [`Experiment::try_new`]; [`Experiment::new`] panics with the same
/// message.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A `fail_device` entry targets a device outside the fleet.
    FailedDeviceOutOfRange {
        /// The offending device id.
        device: u32,
        /// Configured fleet size.
        fleet: u32,
    },
    /// A `fail_device` entry fires outside the mission (or workload)
    /// duration, so it could never take effect.
    FailureOutsideMission {
        /// The configured failure instant, seconds.
        at_secs: f64,
        /// The workload's time horizon, seconds.
        horizon_secs: f64,
    },
    /// The fault plan itself is inconsistent (bad probability, empty or
    /// non-finite window, overlapping partitions, out-of-range target…);
    /// the typed variant names the first problem precisely.
    InvalidFaultPlan(FaultPlanError),
    /// The overload policy is inconsistent (zero deadline, zero cooldown,
    /// out-of-range spillover model…); the string is the policy's own
    /// description of the first problem.
    InvalidOverloadPolicy(String),
    /// The disconnect policy is inconsistent (zero lease timeout, zero
    /// buffer, sub-unity speedup…); the string is the policy's own
    /// description of the first problem.
    InvalidDisconnectPolicy(String),
    /// The pinned shard count exceeds the fleet (a shard must own at
    /// least one device).
    InvalidShardPlan {
        /// The configured shard count.
        shards: u32,
        /// Configured fleet size.
        fleet: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::FailedDeviceOutOfRange { device, fleet } => {
                write!(
                    f,
                    "fail_device targets device {device} but the fleet has {fleet} devices"
                )
            }
            ConfigError::FailureOutsideMission {
                at_secs,
                horizon_secs,
            } => write!(
                f,
                "fail_device at {at_secs} s is outside the workload horizon of {horizon_secs} s"
            ),
            ConfigError::InvalidFaultPlan(msg) => write!(f, "invalid fault plan: {msg}"),
            ConfigError::InvalidOverloadPolicy(msg) => {
                write!(f, "invalid overload policy: {msg}")
            }
            ConfigError::InvalidDisconnectPolicy(msg) => {
                write!(f, "invalid disconnect policy: {msg}")
            }
            ConfigError::InvalidShardPlan { shards, fleet } => write!(
                f,
                "shard plan pins {shards} shards but the fleet has only {fleet} devices"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl ExperimentConfig {
    /// A single-app benchmark with the paper's defaults (120 s, 16
    /// drones, 12×40-core cluster, centralized FaaS).
    pub fn single_app(app: App) -> ExperimentConfig {
        ExperimentConfig {
            workload: Workload::SingleApp {
                app,
                duration_secs: 120.0,
            },
            platform: Platform::CentralizedFaaS,
            devices: 16,
            servers: 12,
            cores_per_server: 40,
            seed: 1,
            input_scale: 1.0,
            rate_scale: 1.0,
            fault_rate: 0.0,
            intra_task: false,
            load_profile: None,
            retrain: RetrainMode::SwarmWide,
            iaas_workers: None,
            plan: RunPlan::default(),
        }
    }

    /// An end-to-end mission with the scenario's default fleet size.
    pub fn scenario(s: Scenario) -> ExperimentConfig {
        ExperimentConfig {
            workload: Workload::Mission(s),
            devices: s.default_devices(),
            ..ExperimentConfig::single_app(App::FaceRecognition)
        }
    }

    /// Sets the platform.
    pub fn platform(mut self, p: Platform) -> Self {
        self.platform = p;
        self
    }

    /// Sets the edge device count (drones, cars, sensors…).
    pub fn devices(mut self, n: u32) -> Self {
        self.devices = n;
        self
    }

    /// Sets the backend server count.
    pub fn servers(mut self, n: u32) -> Self {
        self.servers = n;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Sets the single-app workload duration.
    ///
    /// # Panics
    ///
    /// Panics if the workload is a mission.
    pub fn duration_secs(mut self, secs: f64) -> Self {
        match &mut self.workload {
            Workload::SingleApp { duration_secs, .. } => *duration_secs = secs,
            Workload::Mission(_) => panic!("missions run to completion, not a duration"),
        }
        self
    }

    /// Sets the single-app workload duration from a [`SimDuration`].
    ///
    /// Typed alternative to [`ExperimentConfig::duration_secs`].
    ///
    /// # Panics
    ///
    /// Panics if the workload is a mission.
    pub fn duration(self, d: SimDuration) -> Self {
        self.duration_secs(d.as_secs_f64())
    }

    /// Sets the payload scale.
    pub fn input_scale(mut self, s: f64) -> Self {
        self.input_scale = s;
        self
    }

    /// Sets the task-rate scale.
    pub fn rate_scale(mut self, s: f64) -> Self {
        self.rate_scale = s;
        self
    }

    /// Sets the fault-injection rate.
    pub fn fault_rate(mut self, r: f64) -> Self {
        self.fault_rate = r;
        self
    }

    /// Enables intra-task parallelism.
    pub fn intra_task(mut self, on: bool) -> Self {
        self.intra_task = on;
        self
    }

    /// Installs a load profile (Fig. 5b/5c's fluctuating load).
    pub fn load_profile(mut self, steps: Vec<(f64, u32)>) -> Self {
        self.load_profile = Some(steps);
        self
    }

    /// Sets the retraining mode for missions.
    pub fn retrain(mut self, mode: RetrainMode) -> Self {
        self.retrain = mode;
        self
    }

    /// Overrides the IaaS pool size.
    pub fn iaas_workers(mut self, workers: u32) -> Self {
        self.iaas_workers = Some(workers);
        self
    }

    /// Attaches the run-control planes (faults, overload, tracing,
    /// scripted device failures, sharding) in one validated bundle.
    pub fn plan(mut self, plan: RunPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Kills a device `at_secs` into the mission (missions only).
    #[deprecated(note = "use `.plan(RunPlan::new().fail_device(..))` — \
                         planes now live on the RunPlan builder")]
    pub fn fail_device(mut self, at_secs: f64, device: u32) -> Self {
        self.plan.device_failures.push((at_secs, device));
        self
    }

    /// Attaches a fault-injection plan.
    #[deprecated(note = "use `.plan(RunPlan::new().faults(..))` — \
                         planes now live on the RunPlan builder")]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.plan.faults = plan;
        self
    }

    /// Attaches an overload-control policy.
    #[deprecated(note = "use `.plan(RunPlan::new().overload(..))` — \
                         planes now live on the RunPlan builder")]
    pub fn overload(mut self, policy: OverloadPolicy) -> Self {
        self.plan.overload = policy;
        self
    }

    /// Enables (or disables) structured event tracing for the run.
    #[deprecated(note = "use `.plan(RunPlan::new().trace(..))` — \
                         planes now live on the RunPlan builder")]
    pub fn trace(mut self, on: bool) -> Self {
        self.plan.trace = on;
        self
    }

    /// The workload's time horizon in seconds (single-app duration, or
    /// the mission timeout).
    pub fn horizon_secs(&self) -> f64 {
        match self.workload {
            Workload::SingleApp { duration_secs, .. } => duration_secs,
            Workload::Mission(s) => s.mission_timeout().as_secs_f64(),
        }
    }

    /// Checks the configuration for inconsistencies that would make the
    /// run meaningless, by cross-checking the attached [`RunPlan`]
    /// against the workload (see [`RunPlan::validate`]).
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.plan
            .validate(self.devices, self.servers, self.horizon_secs())
    }

    /// The device profile implied by the workload's fleet.
    pub fn device_profile(&self) -> DeviceProfile {
        match self.workload {
            Workload::Mission(s) if s.fleet() == Fleet::Cars => DeviceProfile::car(),
            _ => DeviceProfile::drone(),
        }
    }

    pub(crate) fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            platform: self.platform,
            devices: self.devices,
            servers: self.servers,
            cores_per_server: self.cores_per_server,
            seed: self.seed,
            fault_rate: self.fault_rate,
            intra_task: self.intra_task,
            device_profile: self.device_profile(),
            input_scale: self.input_scale,
            iaas_workers: self.iaas_workers,
            trace: self.plan.trace,
            faults: self.plan.faults.clone(),
            overload: self.plan.overload.clone(),
            disconnect: self.plan.disconnect,
            shards: self.plan.shards,
        }
    }
}

/// How to account for device motion energy at assembly time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum MotionPolicy {
    /// Devices fly/hover from t = 0 until their last result (at least
    /// `floor_secs`); used by the steady-load single-app benchmarks.
    UntilLastDone {
        /// Minimum airborne time, seconds.
        floor_secs: f64,
    },
    /// The mission already charged motion/idle energy explicitly.
    PreCharged,
}

/// A configured, runnable experiment.
#[derive(Debug, Clone)]
pub struct Experiment {
    config: ExperimentConfig,
}

impl Experiment {
    /// Wraps a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`ExperimentConfig::validate`]); use [`Experiment::try_new`] to
    /// handle the error instead.
    pub fn new(config: ExperimentConfig) -> Experiment {
        match Experiment::try_new(config) {
            Ok(e) => e,
            Err(e) => panic!("invalid experiment config: {e}"),
        }
    }

    /// Validates and wraps a configuration, surfacing inconsistencies
    /// (out-of-range `fail_device` targets, failure times beyond the
    /// workload horizon, malformed fault plans) as a [`ConfigError`].
    pub fn try_new(config: ExperimentConfig) -> Result<Experiment, ConfigError> {
        config.validate()?;
        Ok(Experiment { config })
    }

    /// The configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Runs the experiment to completion.
    pub fn run(&self) -> Outcome {
        match self.config.workload {
            Workload::SingleApp { app, duration_secs } => self.run_single_app(app, duration_secs),
            Workload::Mission(s) => mission::run_mission(&self.config, s),
        }
    }

    fn active_devices_at(&self, t_secs: f64) -> u32 {
        match &self.config.load_profile {
            None => self.config.devices,
            Some(steps) => {
                let mut active = 0;
                for &(at, n) in steps {
                    if t_secs >= at {
                        active = n;
                    }
                }
                active.min(self.config.devices)
            }
        }
    }

    fn run_single_app(&self, app: App, duration_secs: f64) -> Outcome {
        let cfg = &self.config;
        let mut engine = Engine::new(cfg.engine_config());
        let rate = app.tasks_per_sec() * cfg.rate_scale;
        assert!(rate > 0.0, "task rate must be positive");
        let period = 1.0 / rate;

        // Deterministic arrivals with per-device phase offsets so devices
        // don't fire in lockstep.
        let mut n_tasks = 0u64;
        for dev in 0..cfg.devices {
            let offset = period * (dev as f64 / cfg.devices as f64);
            let mut t = offset;
            while t < duration_secs {
                if dev < self.active_devices_at(t) {
                    engine.submit_task(SimTime::ZERO + SimDuration::from_secs_f64(t), dev, app, 0);
                    n_tasks += 1;
                }
                t += period;
            }
        }
        assert!(n_tasks > 0, "workload produced no tasks");
        let records = engine.run_to_completion();
        self.assemble(
            engine,
            records,
            MotionPolicy::UntilLastDone {
                floor_secs: duration_secs,
            },
            MissionOutcome::default(),
        )
    }

    pub(crate) fn assemble(
        &self,
        mut engine: Engine,
        records: Vec<TaskRecord>,
        motion: MotionPolicy,
        mut mission: MissionOutcome,
    ) -> Outcome {
        let cfg = &self.config;
        let mut outcome = Outcome::default();
        // Per-device last completion, for hover-time accounting.
        let floor = match motion {
            MotionPolicy::UntilLastDone { floor_secs } => floor_secs,
            MotionPolicy::PreCharged => 0.0,
        };
        let mut last_done = vec![floor; cfg.devices as usize];
        let mut slo_violations = 0u64;
        for r in &records {
            outcome.tasks.record(r);
            if let Some(slo) = cfg.plan.faults.slo {
                if r.latency() > slo {
                    slo_violations += 1;
                }
            }
            let d = &mut last_done[r.device as usize];
            *d = d.max(r.done.as_secs_f64());
        }
        // Devices stay airborne (motion power) until their own results
        // land — waiting on slow backends costs battery (Fig. 1's IaaS
        // column). Missions account for motion themselves.
        if matches!(motion, MotionPolicy::UntilLastDone { .. }) {
            for dev in 0..cfg.devices {
                let airborne = SimDuration::from_secs_f64(last_done[dev as usize]);
                engine.battery_mut(dev).draw_motion(airborne);
            }
        }

        let mut battery = Summary::new();
        let mut depleted = 0;
        for dev in 0..cfg.devices {
            let b = engine.battery(dev);
            battery.record(b.consumed_percent());
            if b.is_depleted() {
                depleted += 1;
            }
        }
        outcome.battery = BatteryStats {
            mean_pct: battery.mean(),
            max_pct: battery.max(),
            depleted,
        };

        let end = records
            .iter()
            .map(|r| r.done)
            .max()
            .unwrap_or(SimTime::ZERO)
            .max(SimTime::ZERO + SimDuration::from_secs_f64(floor));
        let (edge, _) = engine.fabric_mut().finish_meters(end);
        outcome.bandwidth = BandwidthStats {
            mean_mbps: edge.mean_rate() / 1e6,
            p99_mbps: edge.p99_rate() / 1e6,
            total_mb: edge.total() / 1e6,
        };

        if let Some(series) = engine.active_series() {
            outcome.active_tasks = series.clone();
        }
        if let Some(cluster) = engine.cluster() {
            outcome.container_stats = cluster.container_stats();
            outcome.stragglers_mitigated = cluster.stragglers_mitigated();
            outcome.faults_recovered = cluster.faults_recovered();
        }
        // Recovery metrics exist only for runs with an active fault plan,
        // so inert configurations serialize byte-identically to pre-fault
        // outputs.
        if cfg.plan.faults.is_active() {
            let net = engine.fabric().fault_stats();
            let ledger = engine.fault_ledger();
            let mut recovery = RecoveryStats {
                packets_lost: net.packets_lost,
                transfers_held: net.transfers_held,
                tasks_retried: outcome.faults_recovered,
                tasks_lost: ledger.tasks_lost,
                device_failures: ledger.device_failures,
                controller_failovers: ledger.controller_failovers,
                slo_violations,
                ..RecoveryStats::default()
            };
            if ledger.recovery_events > 0 {
                let n = ledger.recovery_events as f64;
                recovery.mean_detection_secs = ledger.detection_secs_sum / n;
                recovery.mean_recovery_secs = ledger.recovery_secs_sum / n;
            }
            if let Some(cluster) = engine.cluster() {
                let crashes = cluster.crash_stats();
                recovery.server_crashes = crashes.server_crashes;
                recovery.invocations_lost = crashes.invocations_lost;
                recovery.invocations_rescheduled = crashes.invocations_rescheduled;
            }
            if cfg.plan.faults.slo.is_some() {
                recovery.slo_violation_fraction =
                    slo_violations as f64 / (records.len().max(1)) as f64;
            }
            outcome.recovery = Some(recovery);
        }
        // Shed metrics likewise exist only for runs with an active
        // overload policy.
        if cfg.plan.overload.is_active() {
            let mut shed = ShedStats {
                net_holds: engine.fabric().backpressure_holds(),
                ..ShedStats::default()
            };
            if let Some(cluster) = engine.cluster() {
                let oc = cluster.overload_counters();
                shed.invocations_shed = oc.shed_total();
                shed.shed_queue_full = oc.shed_queue_full;
                shed.shed_deadline = oc.shed_deadline;
                shed.shed_breaker = oc.shed_breaker;
                shed.breaker_opens = oc.breaker_opens;
                shed.breaker_open_secs = cluster.breaker_open_time(end).as_secs_f64();
            }
            let ledger = engine.shed_ledger();
            shed.tasks_spilled = ledger.tasks_spilled;
            shed.tasks_shed = ledger.tasks_shed;
            shed.mean_accuracy_penalty_pct =
                ledger.accuracy_penalty_sum_pct / records.len().max(1) as f64;
            outcome.shed = Some(shed);
        }
        // Reconnect metrics likewise exist only for runs with an active
        // disconnect policy. The conservation identity
        // `buffered == replayed + expired + (still buffered at run end)`
        // holds by construction — the counters are read live from the
        // per-device rings and sessions.
        if cfg.plan.disconnect.is_active() {
            let ledger = engine.reconnect_ledger();
            let net = engine.fabric().fault_stats();
            let mut reconnect = ReconnectStats {
                partitions: ledger.partitions,
                lease_expirations: ledger.lease_expirations,
                tasks_degraded: ledger.tasks_degraded,
                updates_buffered: ledger.updates_buffered,
                updates_replayed: ledger.updates_replayed,
                updates_expired: ledger.updates_expired,
                duplicates_dropped: ledger.duplicates_dropped,
                devices_rearmed: ledger.devices_rearmed,
                held_high_water: net.held_high_water,
                transfers_dropped: net.transfers_dropped,
                ..ReconnectStats::default()
            };
            if ledger.updates_replayed > 0 {
                reconnect.mean_staleness_secs =
                    ledger.staleness_secs_sum / ledger.updates_replayed as f64;
            }
            if ledger.tasks_degraded > 0 {
                reconnect.mean_accuracy_penalty_pct =
                    ledger.accuracy_penalty_sum_pct / ledger.tasks_degraded as f64;
            }
            outcome.reconnect = Some(reconnect);
        }
        if mission.duration_secs == 0.0 {
            mission.duration_secs = end.as_secs_f64();
        }
        outcome.mission = mission;
        outcome.trace = engine.take_trace();
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(app: App, platform: Platform) -> Outcome {
        Experiment::new(
            ExperimentConfig::single_app(app)
                .platform(platform)
                .duration_secs(20.0)
                .seed(3),
        )
        .run()
    }

    #[test]
    fn single_app_produces_expected_task_count() {
        let outcome = quick(App::WeatherAnalytics, Platform::CentralizedFaaS);
        // 16 devices × 1 task/s × 20 s.
        assert_eq!(outcome.tasks.len(), 320);
        assert!(outcome.mission.completed);
    }

    #[test]
    fn centralized_beats_distributed_for_heavy_apps() {
        let mut cen = quick(App::TextRecognition, Platform::CentralizedFaaS);
        let mut dist = quick(App::TextRecognition, Platform::DistributedEdge);
        assert!(
            cen.median_task_ms() < dist.median_task_ms(),
            "cloud must win S9: {} vs {}",
            cen.median_task_ms(),
            dist.median_task_ms()
        );
    }

    #[test]
    fn distributed_wins_obstacle_avoidance() {
        let mut cen = quick(App::ObstacleAvoidance, Platform::CentralizedFaaS);
        let mut dist = quick(App::ObstacleAvoidance, Platform::DistributedEdge);
        assert!(
            dist.median_task_ms() < cen.median_task_ms(),
            "S4 is better at the edge: {} vs {}",
            dist.median_task_ms(),
            cen.median_task_ms()
        );
    }

    #[test]
    fn hivemind_reduces_network_fraction() {
        let cen = quick(App::FaceRecognition, Platform::CentralizedFaaS);
        let hm = quick(App::FaceRecognition, Platform::HiveMind);
        assert!(
            hm.tasks.network_fraction() < cen.tasks.network_fraction(),
            "network share must drop: {} -> {}",
            cen.tasks.network_fraction(),
            hm.tasks.network_fraction()
        );
    }

    #[test]
    fn load_profile_limits_arrivals() {
        let outcome = Experiment::new(
            ExperimentConfig::single_app(App::WeatherAnalytics)
                .platform(Platform::CentralizedFaaS)
                .duration_secs(20.0)
                .load_profile(vec![(0.0, 2), (10.0, 4)])
                .seed(1),
        )
        .run();
        // 2 devices × 10 s + 4 devices × 10 s = 60 tasks.
        assert_eq!(outcome.tasks.len(), 60);
    }

    #[test]
    fn faults_are_recovered_not_lost() {
        let outcome = Experiment::new(
            ExperimentConfig::single_app(App::FaceRecognition)
                .platform(Platform::CentralizedFaaS)
                .duration_secs(20.0)
                .fault_rate(0.2)
                .seed(2),
        )
        .run();
        assert_eq!(outcome.tasks.len(), 320, "every task completes");
        assert!(outcome.faults_recovered > 20);
    }

    #[test]
    fn battery_and_bandwidth_populate() {
        let outcome = quick(App::FaceRecognition, Platform::CentralizedFaaS);
        assert!(outcome.battery.mean_pct > 0.0);
        assert!(outcome.bandwidth.total_mb > 500.0, "16 devices × 20 × 2 MB");
        assert!(outcome.bandwidth.mean_mbps > 0.0);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let mut a = quick(App::SoilAnalytics, Platform::HiveMind);
        let mut b = quick(App::SoilAnalytics, Platform::HiveMind);
        assert_eq!(a.tasks.len(), b.tasks.len());
        assert_eq!(a.median_task_ms(), b.median_task_ms());
        assert_eq!(a.p99_task_ms(), b.p99_task_ms());
    }

    #[test]
    fn inert_overload_policy_is_byte_identical() {
        let base = Experiment::new(
            ExperimentConfig::single_app(App::FaceRecognition)
                .duration_secs(15.0)
                .seed(7),
        )
        .run();
        let with_default = Experiment::new(
            ExperimentConfig::single_app(App::FaceRecognition)
                .duration_secs(15.0)
                .plan(RunPlan::new().overload(OverloadPolicy::default()))
                .seed(7),
        )
        .run();
        assert_eq!(base.to_json(), with_default.to_json());
        assert!(with_default.shed.is_none());
    }

    fn overloaded(policy: OverloadPolicy) -> Outcome {
        Experiment::new(
            ExperimentConfig::single_app(App::Slam)
                .platform(Platform::CentralizedFaaS)
                .servers(1)
                .duration_secs(20.0)
                .rate_scale(4.0)
                .plan(RunPlan::new().overload(policy))
                .seed(2),
        )
        .run()
    }

    #[test]
    fn bounded_queue_sheds_under_overload() {
        let outcome = overloaded(OverloadPolicy::default().queue_bound(8));
        let shed = outcome.shed.expect("active policy populates shed stats");
        assert!(shed.invocations_shed > 0, "saturated queue must shed");
        assert_eq!(shed.invocations_shed, shed.shed_queue_full);
        assert_eq!(shed.tasks_shed, shed.invocations_shed);
        assert_eq!(shed.tasks_spilled, 0);
        // Shed tasks produce no record.
        let total = outcome.tasks.len() as u64 + shed.tasks_shed;
        assert!(!outcome.tasks.is_empty() && total > outcome.tasks.len() as u64);
        assert!(outcome
            .to_json()
            .contains("\"shed\":{\"invocations_shed\":"));
    }

    #[test]
    fn spillover_completes_shed_tasks_on_device() {
        let bounded = overloaded(OverloadPolicy::default().queue_bound(8));
        let spilled = overloaded(OverloadPolicy::default().queue_bound(8).spillover());
        let stats = spilled.shed.expect("shed stats");
        assert!(stats.tasks_spilled > 0, "shed work must spill to devices");
        assert_eq!(stats.tasks_shed, 0, "spillover leaves no task abandoned");
        assert!(stats.mean_accuracy_penalty_pct > 0.0);
        assert!(
            spilled.tasks.len() > bounded.tasks.len(),
            "spillover recovers goodput: {} vs {}",
            spilled.tasks.len(),
            bounded.tasks.len()
        );
    }

    #[test]
    fn invalid_overload_policy_is_rejected() {
        let cfg = ExperimentConfig::single_app(App::FaceRecognition)
            .plan(RunPlan::new().overload(OverloadPolicy::default().per_app_limit(0)));
        match Experiment::try_new(cfg) {
            Err(ConfigError::InvalidOverloadPolicy(msg)) => {
                assert!(msg.contains("per_app_limit"), "{msg}");
            }
            other => panic!("expected InvalidOverloadPolicy, got {other:?}"),
        }
    }

    #[test]
    fn inert_disconnect_policy_is_byte_identical() {
        let base = Experiment::new(
            ExperimentConfig::single_app(App::FaceRecognition)
                .duration_secs(15.0)
                .seed(7),
        )
        .run();
        let with_default = Experiment::new(
            ExperimentConfig::single_app(App::FaceRecognition)
                .duration_secs(15.0)
                .plan(RunPlan::new().disconnect(DisconnectPolicy::default()))
                .seed(7),
        )
        .run();
        assert_eq!(base.to_json(), with_default.to_json());
        assert!(with_default.reconnect.is_none());
    }

    fn partitioned(policy: DisconnectPolicy) -> Outcome {
        Experiment::new(
            ExperimentConfig::single_app(App::FaceRecognition)
                .platform(Platform::CentralizedFaaS)
                .duration_secs(25.0)
                .plan(
                    RunPlan::new()
                        .faults(FaultPlan::default().partition(5.0, 15.0))
                        .disconnect(policy),
                )
                .seed(9),
        )
        .run()
    }

    #[test]
    fn partition_with_autonomy_degrades_and_replays() {
        let o = partitioned(DisconnectPolicy::default().autonomous());
        let r = o.reconnect.expect("armed plane populates reconnect stats");
        assert_eq!(r.partitions, 1);
        assert!(r.lease_expirations > 0, "leases expire inside the window");
        assert!(r.tasks_degraded > 0, "cut-off uplinks run on-device");
        assert!(r.updates_replayed > 0, "the heal replays the buffer");
        assert_eq!(
            r.updates_buffered,
            r.updates_replayed + r.updates_expired,
            "after the heal every buffered update was replayed or expired"
        );
        assert_eq!(r.duplicates_dropped, 0, "one heal, one session, no dups");
        assert!(r.mean_staleness_secs > 0.0, "replayed updates aged");
        assert!(r.mean_accuracy_penalty_pct > 0.0);
        assert_eq!(o.tasks.len(), 400, "no task is lost to the partition");
        assert!(o.to_json().contains("\"reconnect\":{\"partitions\":"));
    }

    #[test]
    fn lease_longer_than_partition_never_degrades() {
        // The device's lease outlives the whole outage, so it keeps
        // trusting the cloud and every transfer simply holds (the
        // baseline path) — the plane is armed but never fires.
        let o = partitioned(
            DisconnectPolicy::default()
                .autonomous()
                .lease_timeout(SimDuration::from_secs(30)),
        );
        let r = o.reconnect.expect("armed plane populates reconnect stats");
        assert_eq!(r.partitions, 1, "the heal still reconciles");
        assert_eq!(r.tasks_degraded, 0);
        assert_eq!(r.updates_replayed, 0);
        assert_eq!(o.tasks.len(), 400);
    }

    #[test]
    fn invalid_disconnect_policy_is_rejected() {
        let cfg = ExperimentConfig::single_app(App::FaceRecognition)
            .plan(RunPlan::new().disconnect(DisconnectPolicy::default().buffer_cap(0)));
        match Experiment::try_new(cfg) {
            Err(ConfigError::InvalidDisconnectPolicy(msg)) => {
                assert!(msg.contains("buffer_cap"), "{msg}");
            }
            other => panic!("expected InvalidDisconnectPolicy, got {other:?}"),
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_setters_forward_to_the_plan() {
        // External callers still on the pre-RunPlan surface must land on
        // the exact same plan the builder would produce.
        let shimmed = ExperimentConfig::single_app(App::FaceRecognition)
            .fail_device(20.0, 5)
            .faults(FaultPlan::default().packet_loss(0.05))
            .overload(OverloadPolicy::default().per_app_limit(8))
            .trace(true);
        let planned = ExperimentConfig::single_app(App::FaceRecognition).plan(
            RunPlan::new()
                .fail_device(20.0, 5)
                .faults(FaultPlan::default().packet_loss(0.05))
                .overload(OverloadPolicy::default().per_app_limit(8))
                .trace(true),
        );
        assert_eq!(
            format!("{:?}", shimmed.plan),
            format!("{:?}", planned.plan),
            "shims and builder must agree"
        );
        assert!(shimmed.plan.is_active());
        shimmed.validate().expect("shimmed plan validates");
    }

    #[test]
    fn oversharded_plan_is_rejected() {
        let cfg = ExperimentConfig::single_app(App::FaceRecognition)
            .devices(4)
            .plan(RunPlan::new().shards(5));
        match Experiment::try_new(cfg) {
            Err(ConfigError::InvalidShardPlan {
                shards: 5,
                fleet: 4,
            }) => {}
            other => panic!("expected InvalidShardPlan, got {other:?}"),
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Experiment::new(
            ExperimentConfig::single_app(App::SoilAnalytics)
                .duration_secs(10.0)
                .seed(1),
        )
        .run();
        let mut b = Experiment::new(
            ExperimentConfig::single_app(App::SoilAnalytics)
                .duration_secs(10.0)
                .seed(2),
        )
        .run();
        assert_ne!(a.median_task_ms(), b.median_task_ms());
    }
}

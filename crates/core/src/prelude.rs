//! One-stop imports for experiment code.
//!
//! Everything a figure binary, example, or integration test typically
//! needs, re-exported from one place so callers don't spell out deep
//! module paths:
//!
//! ```rust
//! use hivemind_core::prelude::*;
//!
//! let mut outcome = Experiment::new(
//!     ExperimentConfig::single_app(App::WeatherAnalytics)
//!         .platform(Platform::CentralizedFaaS)
//!         .duration(SimDuration::from_secs(10))
//!         .seed(1),
//! )
//! .run();
//! assert!(outcome.median_task_ms() > 0.0);
//! ```
//!
//! The experiment-level `Workload` enum is deliberately *not* exported:
//! the bench crate has its own `Workload` type and a glob import of both
//! would collide. Reach it as `hivemind_core::experiment::Workload`.

pub use crate::experiment::{ConfigError, Experiment, ExperimentConfig, RunPlan};
pub use crate::metrics::{
    BandwidthStats, BatteryStats, BreakdownSummary, MissionOutcome, Outcome, ReconnectStats,
    RecoveryStats, ShedStats,
};
pub use crate::platform::Platform;
pub use crate::runner::{RunSet, Runner};

pub use hivemind_apps::learning::RetrainMode;
pub use hivemind_apps::scenario::Scenario;
pub use hivemind_apps::suite::App;
pub use hivemind_sim::disconnect::DisconnectPolicy;
pub use hivemind_sim::faults::{FaultPlan, FaultPlanError, RetryPolicy};
pub use hivemind_sim::overload::OverloadPolicy;
pub use hivemind_sim::time::{SimDuration, SimTime};
pub use hivemind_sim::trace::Trace;

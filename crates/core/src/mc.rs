//! The coordination protocols lifted into the model checker.
//!
//! `hivemind_sim::mc` provides the engine-agnostic checker; this module
//! provides the three protocol models it exhaustively explores — the
//! paper's riskiest coordination logic, behind the same step functions
//! the DES engine drives:
//!
//! * [`FailoverModel`] — heartbeat-based failure detection and geometric
//!   load repartitioning ([`SwarmController`]/`swarm::failover`),
//!   including primary-controller failover within the 3 s detection
//!   window. Invariants: the declared-failed set matches an independent
//!   specification mirror of the tracker, and live work assignments
//!   always tile the whole mission field (no area silently lost).
//! * [`RetryBreakerModel`] — the retry + circuit-breaker + give-up
//!   interaction (`sim::overload` + the cluster admission path).
//!   Invariants: every breaker decision/transition matches the
//!   [`BreakerMonitor`] specification, the admission queue stays within
//!   its bound, and tasks are conserved
//!   (`submitted = completed + shed + lost + in flight`).
//! * [`ExchangeModel`] — the parent→child data-exchange sessions
//!   ([`ExchangeSession`]) under message duplication, loss, reordering
//!   and store crashes. Invariant: exactly-once child execution.
//! * [`ShardModel`] — the sharded engine's conservative barrier/epoch
//!   exchange, driven through the real `sim::shard` partition, key
//!   order and k-way merge. Invariants: no shard consumes past what
//!   another shard can still send (lookahead safety), and the merged
//!   stream is in `(time, lane, seq)` order — independent of schedule
//!   and shard count.
//! * [`DisconnectModel`] — the disconnected-operation plane's buffer /
//!   replay / reconcile protocol (`swarm::disconnect` + the controller's
//!   reconnect reconciliation) under a partition/duplication adversary.
//!   Invariants: exactly-once replay (every buffered update delivered
//!   once, expired once, or still buffered) and no spurious failure
//!   declaration from partition silence.
//!
//! Each model has a canonical small instance (2 servers / 1 controller /
//! 3 tasks, per the reproduction roadmap) explored to zero violations,
//! plus a planted-bug mutant ([`SkipHalfOpenBreaker`], the no-dedup
//! exchange variant, the legacy orphan-dropping controller, the
//! `(shard, time)`-keyed merge, the eager-horizon shard, and the
//! disconnect plane's duplicate-accepting session and
//! grace-skipping heal) that must
//! yield a counterexample — proving the lane can actually find bugs.
//! Counterexamples replay deterministically through the DES engine via
//! [`replay_schedule`].

use std::hash::{Hash, Hasher};

use hivemind_faas::dataplane::{
    ExchangeEffect, ExchangeInput, ExchangeMsg, ExchangeSession, RetryDecision, RetryPolicy,
};
use hivemind_sim::engine::{Context, Engine, Model as DesModel};
use hivemind_sim::mc::{BreakerMonitor, McModel, Schedule};
use hivemind_sim::overload::{
    BreakerConfig, BreakerDecision, BreakerEvent, BreakerState, CircuitBreaker,
};
use hivemind_sim::shard::{merge_keyed, EffectKey, ShardMap};
use hivemind_sim::time::{SimDuration, SimTime};
use hivemind_swarm::geometry::Rect;

use crate::controller::SwarmController;

fn hash_rect<H: Hasher>(r: &Rect, state: &mut H) {
    r.x0.to_bits().hash(state);
    r.y0.to_bits().hash(state);
    r.x1.to_bits().hash(state);
    r.y1.to_bits().hash(state);
}

// ---------------------------------------------------------------------------
// Protocol 1: controller failover within the 3 s detection window.
// ---------------------------------------------------------------------------

/// One enabled event in the failover protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailoverAction {
    /// Device's heartbeat for this round reaches the controller.
    Beat(u32),
    /// Device's heartbeat for this round is lost in flight.
    Drop(u32),
    /// The device crashes (fault injection point); it stops beating.
    Crash(u32),
    /// End of round: the controller (if up) runs its failure check.
    EndRound,
    /// The primary controller dies just before this round's check; the
    /// warm standby takes over after the 3 s detection window plus a
    /// 500 ms state re-sync.
    FailPrimary,
}

/// The failover protocol over a small device fleet, one heartbeat round
/// per virtual second.
///
/// Each round, every live and still-relevant device either beats or has
/// its beat dropped (message loss), and may crash outright (budgeted);
/// the round ends with the controller's failure check — skipped while a
/// primary failover is in progress, exactly as a dead primary hears
/// nothing. Alongside the real [`SwarmController`] the model advances an
/// independent specification mirror of the heartbeat tracker (reference
/// times, the takeover grace, the `> 3 s` latch) and requires the two to
/// agree at every state.
#[derive(Debug, Clone)]
pub struct FailoverModel {
    ctl: SwarmController,
    devices: u32,
    horizon: u32,
    round: u32,
    cursor: u32,
    crashed: Vec<bool>,
    crash_budget: u32,
    failover_budget: u32,
    /// Service resumes at this instant after a primary failover; checks
    /// before it are skipped and in-flight beats are lost.
    down_until: SimTime,
    /// Spec mirror: each device's tracker reference time (last delivered
    /// beat, the mission start, or the takeover grace).
    refs: Vec<SimTime>,
    /// Spec mirror: devices the specification says must be declared.
    mirror_declared: Vec<bool>,
}

impl FailoverModel {
    /// A fleet of `devices` over the unit field, explored for `horizon`
    /// rounds with the given fault budgets. `redistribute_orphans`
    /// selects the fixed controller (`true`) or the historical one that
    /// drops inherited strips when their holder dies (`false`).
    pub fn new(
        devices: u32,
        horizon: u32,
        crash_budget: u32,
        failover_budget: u32,
        redistribute_orphans: bool,
    ) -> FailoverModel {
        let field = Rect::new(0.0, 0.0, 30.0, 10.0);
        let ctl = SwarmController::new(field, devices);
        let ctl = if redistribute_orphans {
            ctl.with_orphan_redistribution()
        } else {
            ctl
        };
        FailoverModel {
            ctl,
            devices,
            horizon,
            round: 0,
            cursor: 0,
            crashed: vec![false; devices as usize],
            crash_budget,
            failover_budget,
            down_until: SimTime::ZERO,
            refs: vec![SimTime::ZERO; devices as usize],
            mirror_declared: vec![false; devices as usize],
        }
    }

    fn t_beat(&self, round: u32, device: u32) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(round as u64 * 1000 + 10 * (device as u64 + 1))
    }

    fn t_check(&self, round: u32) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(round as u64 * 1000 + 500)
    }

    fn is_down(&self, round: u32) -> bool {
        self.t_check(round) < self.down_until
    }

    /// Skips device slots that cannot act: crashed devices, declared
    /// devices (their beats no longer matter — declaration is latched),
    /// and every device of a round whose controller is down (beats to a
    /// dead primary are lost wholesale).
    fn normalize(&mut self) {
        if self.is_down(self.round) {
            self.cursor = self.devices;
            return;
        }
        while self.cursor < self.devices
            && (self.crashed[self.cursor as usize] || !self.ctl.is_alive(self.cursor))
        {
            self.cursor += 1;
        }
    }
}

impl Hash for FailoverModel {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Constants of the run (devices, horizon, the field) are omitted;
        // everything that can influence future behaviour is included.
        self.round.hash(state);
        self.cursor.hash(state);
        self.crashed.hash(state);
        self.crash_budget.hash(state);
        self.failover_budget.hash(state);
        self.down_until.hash(state);
        self.refs.hash(state);
        self.mirror_declared.hash(state);
        self.ctl.primary().hash(state);
        for d in 0..self.devices {
            self.ctl.is_alive(d).hash(state);
            for r in self.ctl.assignment_of(d) {
                hash_rect(&r, state);
            }
        }
    }
}

impl McModel for FailoverModel {
    type Action = FailoverAction;

    fn enabled(&self, out: &mut Vec<FailoverAction>) {
        if self.round >= self.horizon {
            return;
        }
        if self.cursor < self.devices {
            let d = self.cursor;
            out.push(FailoverAction::Beat(d));
            out.push(FailoverAction::Drop(d));
            if self.crash_budget > 0 {
                out.push(FailoverAction::Crash(d));
            }
        } else {
            out.push(FailoverAction::EndRound);
            if self.failover_budget > 0 && !self.is_down(self.round) {
                out.push(FailoverAction::FailPrimary);
            }
        }
    }

    fn apply(&mut self, action: &FailoverAction) {
        match *action {
            FailoverAction::Beat(d) => {
                let t = self.t_beat(self.round, d);
                let _ = self.ctl.try_heartbeat(d, t);
                self.refs[d as usize] = t;
                self.cursor += 1;
            }
            FailoverAction::Drop(d) => {
                debug_assert!(!self.crashed[d as usize]);
                self.cursor += 1;
            }
            FailoverAction::Crash(d) => {
                self.crashed[d as usize] = true;
                self.crash_budget -= 1;
                self.cursor += 1;
            }
            FailoverAction::EndRound => {
                let t = self.t_check(self.round);
                if t >= self.down_until {
                    // Advance the specification mirror with the same
                    // latch rule the tracker uses, then let the real
                    // controller run its check.
                    for d in 0..self.devices as usize {
                        if t.saturating_since(self.refs[d]) > SimDuration::from_secs(3) {
                            self.mirror_declared[d] = true;
                        }
                    }
                    let _ = self.ctl.check_failures(t);
                }
                self.round += 1;
                self.cursor = 0;
            }
            FailoverAction::FailPrimary => {
                let t = self.t_check(self.round);
                let fo = self.ctl.fail_primary(t, SimDuration::from_millis(500));
                self.down_until = fo.resumed_at;
                self.failover_budget -= 1;
                // Mirror the takeover grace: beats lost during the outage
                // must not count as silence once the standby resumes.
                for d in 0..self.devices {
                    if self.ctl.is_alive(d) && self.refs[d as usize] < fo.resumed_at {
                        self.refs[d as usize] = fo.resumed_at;
                    }
                }
                self.round += 1;
                self.cursor = 0;
            }
        }
        self.normalize();
    }

    fn invariant(&self) -> Result<(), String> {
        // 1. Detection correctness: the controller's declared-failed set
        //    must equal the specification mirror's, in both directions
        //    (no missed detections past the 3 s window, no spurious ones
        //    — e.g. from beats lost during a primary outage).
        for d in 0..self.devices {
            let declared = !self.ctl.is_alive(d);
            let expected = self.mirror_declared[d as usize];
            if declared != expected {
                return Err(format!(
                    "failure detection: device {d} is {} but the 3 s-window \
                     specification says it must be {}",
                    if declared { "declared failed" } else { "alive" },
                    if expected { "declared failed" } else { "alive" },
                ));
            }
        }
        // 2. Work conservation: as long as anyone survives, the live
        //    assignments must tile the whole field — no region silently
        //    dropped across (chained) failovers.
        if self.ctl.alive_count() > 0 {
            let total: f64 = (0..self.devices)
                .filter(|&d| self.ctl.is_alive(d))
                .flat_map(|d| self.ctl.assignment_of(d))
                .map(|r| r.area())
                .sum();
            let field = self.ctl.field().area();
            if (total - field).abs() > 1e-6 {
                return Err(format!(
                    "task conservation: live assignments cover {total:.3} of a \
                     {field:.3} field — area was lost in a failover"
                ));
            }
        }
        Ok(())
    }

    fn now(&self) -> SimTime {
        if self.cursor < self.devices {
            self.t_beat(self.round, self.cursor)
        } else {
            self.t_check(self.round)
        }
    }

    fn describe(&self, action: &FailoverAction) -> String {
        match *action {
            FailoverAction::Beat(d) => format!("beat(device={d})"),
            FailoverAction::Drop(d) => format!("drop_beat(device={d})"),
            FailoverAction::Crash(d) => format!("crash(device={d})"),
            FailoverAction::EndRound => format!("check(round={})", self.round),
            FailoverAction::FailPrimary => format!("fail_primary(round={})", self.round),
        }
    }
}

// ---------------------------------------------------------------------------
// Protocol 2: retry + circuit breaker + give-up.
// ---------------------------------------------------------------------------

/// The breaker implementation under test, abstracted so the checker can
/// run the faithful [`CircuitBreaker`] and planted-bug mutants through
/// the identical admission protocol.
pub trait BreakerDriver: Clone + Hash {
    /// Decide one admission (see [`CircuitBreaker::admit_traced`]).
    fn admit(&mut self, now: SimTime) -> (BreakerDecision, Option<BreakerEvent>);
    /// Report one final attempt outcome.
    fn outcome(&mut self, now: SimTime, success: bool, probe: bool) -> Option<BreakerEvent>;
}

impl BreakerDriver for CircuitBreaker {
    fn admit(&mut self, now: SimTime) -> (BreakerDecision, Option<BreakerEvent>) {
        self.admit_traced(now)
    }

    fn outcome(&mut self, now: SimTime, success: bool, probe: bool) -> Option<BreakerEvent> {
        if success {
            self.record_success(now, probe)
        } else {
            self.record_failure(now, probe)
        }
    }
}

/// Planted-bug breaker: once the cool-down elapses it admits traffic
/// directly instead of going through half-open probing. The checker must
/// catch this as a [`BreakerMonitor`] legality violation — this mutant
/// exists to regression-test the lane's bug-finding power.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SkipHalfOpenBreaker(pub CircuitBreaker);

impl BreakerDriver for SkipHalfOpenBreaker {
    fn admit(&mut self, now: SimTime) -> (BreakerDecision, Option<BreakerEvent>) {
        if self.0.state() == BreakerState::Open && now >= self.0.open_until() {
            // BUG: skips the half-open probe phase entirely.
            return (BreakerDecision::Admit, None);
        }
        self.0.admit_traced(now)
    }

    fn outcome(&mut self, now: SimTime, success: bool, probe: bool) -> Option<BreakerEvent> {
        self.0.outcome(now, success, probe)
    }
}

/// Where one task is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TaskStatus {
    Fresh,
    Queued { probe: bool },
    Running { probe: bool, respawns: u32 },
    Completed,
    Shed,
    Lost,
}

/// One enabled event in the retry/breaker protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryAction {
    /// Virtual time advances by one breaker-cool-down quantum.
    Tick,
    /// Submit the next fresh task through breaker admission.
    Submit(usize),
    /// The running task's current attempt succeeds.
    Succeed(usize),
    /// The running task's current attempt faults (fault injection
    /// point); the retry policy decides what happens.
    Fail(usize),
}

/// Retry + circuit-breaker + give-up over a single-server admission
/// path: one task runs at a time, one may wait in the bounded queue, and
/// every fresh task passes breaker admission first. Only *final*
/// outcomes reach the breaker (a retried fault is invisible to it),
/// matching the cluster's reporting discipline. A [`BreakerMonitor`]
/// checks every decision and transition against the specification.
#[derive(Debug, Clone)]
pub struct RetryBreakerModel<B: BreakerDriver> {
    breaker: B,
    monitor: BreakerMonitor,
    /// First specification divergence, latched (the invariant reports it).
    divergence: Option<String>,
    tasks: Vec<TaskStatus>,
    retry: RetryPolicy,
    tick: u32,
    horizon_ticks: u32,
    queue_bound: usize,
    submitted: u32,
    completed: u32,
    shed: u32,
    lost: u32,
}

impl<B: BreakerDriver> RetryBreakerModel<B> {
    /// `tasks` tasks pushed through `breaker` (mirrored by a monitor
    /// with `cfg`) under `retry`, for `horizon_ticks` half-cool-down
    /// quanta.
    pub fn new(
        breaker: B,
        cfg: BreakerConfig,
        retry: RetryPolicy,
        tasks: usize,
        horizon_ticks: u32,
    ) -> RetryBreakerModel<B> {
        RetryBreakerModel {
            breaker,
            monitor: BreakerMonitor::new(cfg),
            divergence: None,
            tasks: vec![TaskStatus::Fresh; tasks],
            retry,
            tick: 0,
            horizon_ticks,
            queue_bound: 1,
            submitted: 0,
            completed: 0,
            shed: 0,
            lost: 0,
        }
    }

    fn queued(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| matches!(t, TaskStatus::Queued { .. }))
            .count()
    }

    fn running(&self) -> Option<usize> {
        self.tasks
            .iter()
            .position(|t| matches!(t, TaskStatus::Running { .. }))
    }

    fn promote_queued(&mut self) {
        if self.running().is_some() {
            return;
        }
        if let Some(i) = self
            .tasks
            .iter()
            .position(|t| matches!(t, TaskStatus::Queued { .. }))
        {
            if let TaskStatus::Queued { probe } = self.tasks[i] {
                self.tasks[i] = TaskStatus::Running { probe, respawns: 0 };
            }
        }
    }

    fn finish(&mut self, i: usize, success: bool, probe: bool) {
        let now = self.now();
        let event = self.breaker.outcome(now, success, probe);
        if self.divergence.is_none() {
            if let Err(msg) = self.monitor.on_outcome(now, success, probe, event) {
                self.divergence = Some(msg);
            }
        }
        self.tasks[i] = if success {
            self.completed += 1;
            TaskStatus::Completed
        } else {
            self.lost += 1;
            TaskStatus::Lost
        };
        self.promote_queued();
    }
}

impl<B: BreakerDriver> Hash for RetryBreakerModel<B> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // `retry`, `horizon_ticks` and `queue_bound` are run constants.
        self.breaker.hash(state);
        self.monitor.hash(state);
        self.divergence.hash(state);
        self.tasks.hash(state);
        self.tick.hash(state);
        self.submitted.hash(state);
        self.completed.hash(state);
        self.shed.hash(state);
        self.lost.hash(state);
    }
}

impl<B: BreakerDriver> McModel for RetryBreakerModel<B> {
    type Action = RetryAction;

    fn enabled(&self, out: &mut Vec<RetryAction>) {
        if let Some(i) = self.running() {
            out.push(RetryAction::Succeed(i));
            out.push(RetryAction::Fail(i));
        }
        // Symmetry reduction: tasks are interchangeable, so only the
        // lowest fresh one may be submitted next.
        if self.queued() < self.queue_bound {
            if let Some(i) = self.tasks.iter().position(|t| *t == TaskStatus::Fresh) {
                out.push(RetryAction::Submit(i));
            }
        }
        if self.tick < self.horizon_ticks {
            out.push(RetryAction::Tick);
        }
    }

    fn apply(&mut self, action: &RetryAction) {
        match *action {
            RetryAction::Tick => self.tick += 1,
            RetryAction::Submit(i) => {
                let now = self.now();
                self.submitted += 1;
                let (decision, event) = self.breaker.admit(now);
                if self.divergence.is_none() {
                    if let Err(msg) = self.monitor.on_admit(now, decision, event) {
                        self.divergence = Some(msg);
                    }
                }
                match decision {
                    BreakerDecision::Reject => {
                        self.shed += 1;
                        self.tasks[i] = TaskStatus::Shed;
                    }
                    BreakerDecision::Admit | BreakerDecision::Probe => {
                        let probe = decision == BreakerDecision::Probe;
                        self.tasks[i] = if self.running().is_some() {
                            TaskStatus::Queued { probe }
                        } else {
                            TaskStatus::Running { probe, respawns: 0 }
                        };
                    }
                }
            }
            RetryAction::Succeed(i) => {
                if let TaskStatus::Running { probe, .. } = self.tasks[i] {
                    self.finish(i, true, probe);
                }
            }
            RetryAction::Fail(i) => {
                if let TaskStatus::Running { probe, respawns } = self.tasks[i] {
                    match self.retry.on_fault(respawns) {
                        RetryDecision::Retry { .. } => {
                            // Retried in place; the breaker only hears
                            // about final outcomes.
                            self.tasks[i] = TaskStatus::Running {
                                probe,
                                respawns: respawns + 1,
                            };
                        }
                        RetryDecision::GiveUp => self.finish(i, false, probe),
                        RetryDecision::ForceSuccess => self.finish(i, true, probe),
                    }
                }
            }
        }
    }

    fn invariant(&self) -> Result<(), String> {
        if let Some(msg) = &self.divergence {
            return Err(msg.clone());
        }
        if self.queued() > self.queue_bound {
            return Err(format!(
                "admission queue bound: {} tasks queued, bound is {}",
                self.queued(),
                self.queue_bound
            ));
        }
        let in_flight = self
            .tasks
            .iter()
            .filter(|t| matches!(t, TaskStatus::Queued { .. } | TaskStatus::Running { .. }))
            .count() as u32;
        if self.submitted != self.completed + self.shed + self.lost + in_flight {
            return Err(format!(
                "task conservation: submitted {} != completed {} + shed {} + \
                 lost {} + in-flight {in_flight}",
                self.submitted, self.completed, self.shed, self.lost
            ));
        }
        Ok(())
    }

    fn now(&self) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(self.tick as u64 * 500)
    }

    fn describe(&self, action: &RetryAction) -> String {
        match *action {
            RetryAction::Tick => format!("tick(to={})", self.tick + 1),
            RetryAction::Submit(i) => format!("submit(task={i})"),
            RetryAction::Succeed(i) => format!("succeed(task={i})"),
            RetryAction::Fail(i) => format!("fail(task={i})"),
        }
    }
}

// ---------------------------------------------------------------------------
// Protocol 3: the data-exchange paths.
// ---------------------------------------------------------------------------

/// One enabled event in the exchange protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeAction {
    /// Deliver the k-th in-flight message to its session.
    Deliver(usize),
    /// Duplicate the k-th in-flight message (budgeted).
    Duplicate(usize),
    /// Drop the k-th in-flight message (budgeted).
    DropMsg(usize),
    /// The session's parent retransmit timer fires.
    ParentTimer(usize),
    /// The session's child retransmit timer fires.
    ChildTimer(usize),
    /// The storage node on this server crashes (volatile sessions lose
    /// their stored object; budgeted).
    CrashStore(u8),
}

/// Concurrent [`ExchangeSession`]s over an adversarial network: the
/// checker owns delivery order and may duplicate or drop any in-flight
/// message and crash either server's store, within budgets. Invariant:
/// exactly-once child execution per session, whatever the environment
/// does.
#[derive(Debug, Clone)]
pub struct ExchangeModel {
    sessions: Vec<ExchangeSession>,
    /// Which server hosts each session's store.
    server_of: Vec<u8>,
    /// In-flight `(session, message)` pairs, kept sorted so the state
    /// fingerprint sees a canonical multiset — delivery-order
    /// permutations of the same network dedupe to one state.
    net: Vec<(u8, ExchangeMsg)>,
    dup_budget: u8,
    drop_budget: u8,
    crash_budget: u8,
    /// Monotonic step counter, used only for schedule timestamps — it is
    /// deliberately excluded from the hash (two states differing only in
    /// elapsed steps behave identically).
    steps: u32,
}

impl ExchangeModel {
    /// Starts one session per `(server, session)` placement entry; each
    /// emits its opening store + fetch sends into the network.
    pub fn new(
        placements: &[(u8, ExchangeSession)],
        dup_budget: u8,
        drop_budget: u8,
        crash_budget: u8,
    ) -> ExchangeModel {
        let mut model = ExchangeModel {
            sessions: Vec::new(),
            server_of: Vec::new(),
            net: Vec::new(),
            dup_budget,
            drop_budget,
            crash_budget,
            steps: 0,
        };
        let mut effects = Vec::new();
        for (server, session) in placements {
            let sid = model.sessions.len() as u8;
            model.server_of.push(*server);
            let mut session = session.clone();
            effects.clear();
            session.start(&mut effects);
            model.sessions.push(session);
            for e in &effects {
                if let ExchangeEffect::Send(m) = e {
                    model.send(sid, *m);
                }
            }
        }
        model
    }

    fn send(&mut self, sid: u8, msg: ExchangeMsg) {
        let entry = (sid, msg);
        let pos = self.net.partition_point(|m| *m <= entry);
        self.net.insert(pos, entry);
    }

    fn feed(&mut self, sid: usize, input: ExchangeInput) {
        let mut effects = Vec::new();
        self.sessions[sid].step(input, &mut effects);
        for e in effects {
            if let ExchangeEffect::Send(m) = e {
                self.send(sid as u8, m);
            }
        }
    }
}

impl Hash for ExchangeModel {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // `steps` is intentionally excluded (timestamps only).
        self.sessions.hash(state);
        self.server_of.hash(state);
        self.net.hash(state);
        self.dup_budget.hash(state);
        self.drop_budget.hash(state);
        self.crash_budget.hash(state);
    }
}

impl McModel for ExchangeModel {
    type Action = ExchangeAction;

    fn enabled(&self, out: &mut Vec<ExchangeAction>) {
        // Partial-order reduction: sessions share no state — each
        // session's messages, timers and flags are disjoint from every
        // other's — so session-local actions of different sessions
        // commute, and the (per-session) invariant cannot distinguish
        // their interleavings. Local actions are therefore explored only
        // for the lowest session that still has any; adversary actions
        // (duplicate/drop/crash, which consume the shared budgets) stay
        // unrestricted at every state. Every per-session reachable local
        // state is still reached, without the cross-session product.
        let local = |sid: usize, s: &ExchangeSession| {
            let pending = self.net.iter().any(|(m, _)| *m as usize == sid);
            let timers = !s.failed() && (!s.acked() || !s.delivered());
            pending || timers
        };
        if let Some((sid, s)) = self
            .sessions
            .iter()
            .enumerate()
            .find(|(sid, s)| local(*sid, s))
        {
            for (k, (m, _)) in self.net.iter().enumerate() {
                if *m as usize == sid {
                    out.push(ExchangeAction::Deliver(k));
                }
            }
            if !s.failed() && !s.acked() {
                out.push(ExchangeAction::ParentTimer(sid));
            }
            if !s.failed() && !s.delivered() {
                out.push(ExchangeAction::ChildTimer(sid));
            }
        }
        if self.dup_budget > 0 {
            for k in 0..self.net.len() {
                out.push(ExchangeAction::Duplicate(k));
            }
        }
        if self.drop_budget > 0 {
            for k in 0..self.net.len() {
                out.push(ExchangeAction::DropMsg(k));
            }
        }
        if self.crash_budget > 0 {
            let mut servers: Vec<u8> = self.server_of.clone();
            servers.sort_unstable();
            servers.dedup();
            for s in servers {
                out.push(ExchangeAction::CrashStore(s));
            }
        }
    }

    fn apply(&mut self, action: &ExchangeAction) {
        self.steps += 1;
        match *action {
            ExchangeAction::Deliver(k) => {
                let (sid, msg) = self.net.remove(k);
                self.feed(sid as usize, ExchangeInput::Deliver(msg));
            }
            ExchangeAction::Duplicate(k) => {
                self.dup_budget -= 1;
                let (sid, msg) = self.net[k];
                self.send(sid, msg);
            }
            ExchangeAction::DropMsg(k) => {
                self.drop_budget -= 1;
                self.net.remove(k);
            }
            ExchangeAction::ParentTimer(sid) => {
                self.feed(sid, ExchangeInput::ParentTimer);
            }
            ExchangeAction::ChildTimer(sid) => {
                self.feed(sid, ExchangeInput::ChildTimer);
            }
            ExchangeAction::CrashStore(server) => {
                self.crash_budget -= 1;
                for sid in 0..self.sessions.len() {
                    if self.server_of[sid] == server {
                        self.feed(sid, ExchangeInput::StoreCrash);
                    }
                }
            }
        }
    }

    fn invariant(&self) -> Result<(), String> {
        for (sid, s) in self.sessions.iter().enumerate() {
            if s.executed() > 1 {
                return Err(format!(
                    "double execution: session {sid} ran its child {} times",
                    s.executed()
                ));
            }
        }
        Ok(())
    }

    fn now(&self) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(self.steps as u64 * 100)
    }

    fn describe(&self, action: &ExchangeAction) -> String {
        let net = |k: usize| {
            let (sid, msg) = self.net[k];
            format!("session {sid} {msg:?}")
        };
        match *action {
            ExchangeAction::Deliver(k) => format!("deliver({})", net(k)),
            ExchangeAction::Duplicate(k) => format!("duplicate({})", net(k)),
            ExchangeAction::DropMsg(k) => format!("drop({})", net(k)),
            ExchangeAction::ParentTimer(sid) => format!("parent_timer(session={sid})"),
            ExchangeAction::ChildTimer(sid) => format!("child_timer(session={sid})"),
            ExchangeAction::CrashStore(s) => format!("crash_store(server={s})"),
        }
    }
}

// ---------------------------------------------------------------------------
// Protocol 4: the sharded engine's barrier/merge exchange.
// ---------------------------------------------------------------------------

/// How a [`ShardModel`] merges per-shard epoch batches at a barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MergeRule {
    /// The real protocol: the order-stable k-way merge on
    /// `(time, lane, seq)` keys ([`merge_keyed`]).
    ByKey,
    /// Planted bug: concatenate batches in shard order (effectively a
    /// `(shard, time)` key). Each batch is internally time-sorted, so
    /// the bug only shows when two shards interleave in time — exactly
    /// the case the order-stable merge exists for.
    ByShardTime,
}

/// One enabled event in the shard barrier/merge protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardAction {
    /// A shard consumes its earliest pending event inside the epoch
    /// horizon (the checker owns which shard advances next).
    Consume(u32),
    /// No shard has a consumable event left: exchange boundary events
    /// and merge the epoch's batches into the global stream.
    Barrier,
}

/// The sharded DES engine's conservative barrier/merge protocol over a
/// small device fleet, driven through the *real* [`ShardMap`] partition,
/// [`EffectKey`] ordering and [`merge_keyed`] exchange from
/// `hivemind_sim::shard`.
///
/// Each epoch spans one conservative lookahead window `L` (the engine
/// derives it from the slowest cross-shard link — the WiFi hop). Within
/// the epoch the checker interleaves shard progress arbitrarily: any
/// shard with a pending event before the horizon may consume it, and a
/// consumed event with remaining hop budget emits a boundary event into
/// a *different* shard at `t + L` — which, under the conservative rule,
/// can never land inside the epoch that produced it. At the barrier the
/// per-shard batches merge into the global stream.
///
/// Invariants, checked at every reachable state:
///
/// * **lookahead safety** — no shard ever holds a pending event older
///   than its own consumption cursor; i.e. nothing arrives "in the
///   past" of a shard, for every interleaving the budgets allow.
/// * **merge order** — the merged global stream is strictly sorted by
///   `(time, lane, seq)`, which makes it independent of both the
///   schedule and the shard count (the single-shard stream is the same
///   sorted sequence of the same keys).
/// * **conservation** — every consumed event is either in a shard's
///   unmerged batch or in the merged stream; nothing is dropped or
///   duplicated by the exchange.
#[derive(Debug, Clone)]
pub struct ShardModel {
    map: ShardMap,
    /// Per-shard pending events (key, remaining hop budget), sorted.
    pending: Vec<Vec<(EffectKey, u8)>>,
    /// Per-shard current-epoch batch, in consumption order.
    out: Vec<Vec<EffectKey>>,
    /// Per-shard consumption cursor (last consumed key).
    cursor: Vec<Option<EffectKey>>,
    /// The merged global stream.
    merged: Vec<EffectKey>,
    epoch_start: SimTime,
    lookahead: SimDuration,
    /// Extra consumption horizon past the epoch end. `ZERO` is the
    /// conservative protocol; the eager mutant sets it to `L`,
    /// consuming events another shard can still front-run.
    slack: SimDuration,
    merge: MergeRule,
    consumed: u64,
}

impl ShardModel {
    /// A fleet of `devices` split into `shards`, with one initial event
    /// per device at `offsets_ms[d]` carrying `hops` boundary-emission
    /// budget, under a 5 ms lookahead (the testbed WiFi hop).
    pub fn new(
        devices: u32,
        shards: u32,
        offsets_ms: &[u64],
        hops: u8,
        merge: MergeRule,
        eager: bool,
    ) -> ShardModel {
        assert_eq!(offsets_ms.len(), devices as usize);
        let map = ShardMap::new(devices, shards);
        let lookahead = SimDuration::from_millis(5);
        let mut model = ShardModel {
            pending: vec![Vec::new(); map.shards() as usize],
            out: vec![Vec::new(); map.shards() as usize],
            cursor: vec![None; map.shards() as usize],
            merged: Vec::new(),
            epoch_start: SimTime::ZERO,
            lookahead,
            slack: if eager { lookahead } else { SimDuration::ZERO },
            merge,
            consumed: 0,
            map,
        };
        for (d, &ms) in offsets_ms.iter().enumerate() {
            let key = EffectKey::new(SimTime::ZERO + SimDuration::from_millis(ms), d as u32, 0);
            model.insert(key, hops);
        }
        model
    }

    fn insert(&mut self, key: EffectKey, hops: u8) {
        let s = self.map.shard_of(key.lane) as usize;
        let pos = self.pending[s].partition_point(|&(k, _)| k <= key);
        self.pending[s].insert(pos, (key, hops));
    }

    fn epoch_end(&self) -> SimTime {
        self.epoch_start + self.lookahead
    }

    /// The bound below which a shard may consume. Conservative protocol:
    /// the epoch end. Eager mutant: one lookahead past it.
    fn consume_bound(&self) -> SimTime {
        self.epoch_end() + self.slack
    }

    fn consumable(&self, s: usize) -> bool {
        self.pending[s]
            .first()
            .is_some_and(|&(k, _)| k.at < self.consume_bound())
    }

    /// The boundary event a consumed event emits: one lookahead later,
    /// on the device half a fleet ahead (a constant of the universe, so
    /// the key is a pure function of the emitting event — schedule- and
    /// shard-count-independent; for any shard count > 1 the target is a
    /// different shard), with a seq derived injectively from the emitter.
    fn emission(&self, key: EffectKey) -> EffectKey {
        let block = (self.map.devices() / 2).max(1);
        let target = (key.lane + block) % self.map.devices();
        EffectKey::new(
            key.at + self.lookahead,
            target,
            (key.lane as u64 + 1) * 1_000 + key.seq + 1,
        )
    }
}

impl Hash for ShardModel {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The map, lookahead, slack and merge rule are run constants.
        self.pending.hash(state);
        self.out.hash(state);
        self.cursor.hash(state);
        self.merged.hash(state);
        self.epoch_start.hash(state);
        self.consumed.hash(state);
    }
}

impl McModel for ShardModel {
    type Action = ShardAction;

    fn enabled(&self, out: &mut Vec<ShardAction>) {
        let mut any = false;
        for s in 0..self.pending.len() {
            if self.consumable(s) {
                out.push(ShardAction::Consume(s as u32));
                any = true;
            }
        }
        if !any
            && (self.out.iter().any(|o| !o.is_empty())
                || self.pending.iter().any(|p| !p.is_empty()))
        {
            out.push(ShardAction::Barrier);
        }
    }

    fn apply(&mut self, action: &ShardAction) {
        match *action {
            ShardAction::Consume(s) => {
                let s = s as usize;
                if !self.consumable(s) {
                    return;
                }
                let (key, hops) = self.pending[s].remove(0);
                self.out[s].push(key);
                self.cursor[s] = Some(key);
                self.consumed += 1;
                if hops > 0 {
                    let next = self.emission(key);
                    self.insert(next, hops - 1);
                }
            }
            ShardAction::Barrier => {
                let batches: Vec<Vec<(EffectKey, ())>> = self
                    .out
                    .iter_mut()
                    .map(|o| o.drain(..).map(|k| (k, ())).collect())
                    .collect();
                match self.merge {
                    MergeRule::ByKey => {
                        self.merged
                            .extend(merge_keyed(batches).into_iter().map(|(k, ())| k));
                    }
                    MergeRule::ByShardTime => {
                        // BUG: shard index outranks time.
                        for batch in batches {
                            self.merged.extend(batch.into_iter().map(|(k, ())| k));
                        }
                    }
                }
                // Next epoch starts at the earliest pending event (the
                // hub's next_wakeup), never before the current end.
                let next = self
                    .pending
                    .iter()
                    .filter_map(|p| p.first())
                    .map(|&(k, _)| k.at)
                    .min();
                if let Some(t) = next {
                    self.epoch_start = t.max(self.epoch_end());
                }
            }
        }
    }

    fn invariant(&self) -> Result<(), String> {
        // 1. Lookahead safety: nothing pending behind a shard's cursor.
        for (s, pending) in self.pending.iter().enumerate() {
            if let Some(cursor) = self.cursor[s] {
                if let Some(&(k, _)) = pending.iter().find(|&&(k, _)| k < cursor) {
                    return Err(format!(
                        "lookahead horizon: shard {s} holds a pending event at \
                         {:?} behind its cursor {:?} — it consumed past what \
                         another shard could still send",
                        k.at, cursor.at
                    ));
                }
            }
        }
        // 2. Merge order: the global stream is strictly key-sorted, so
        //    it cannot depend on the schedule or the shard count.
        if let Some(w) = self.merged.windows(2).find(|w| w[0] >= w[1]) {
            return Err(format!(
                "merge order: global stream has {:?}/lane {} before \
                 {:?}/lane {} — not the (time, lane, seq) order",
                w[0].at, w[0].lane, w[1].at, w[1].lane
            ));
        }
        // 3. Conservation across the exchange.
        let staged: u64 = self.out.iter().map(|o| o.len() as u64).sum();
        if self.consumed != self.merged.len() as u64 + staged {
            return Err(format!(
                "exchange conservation: consumed {} != merged {} + staged {staged}",
                self.consumed,
                self.merged.len()
            ));
        }
        Ok(())
    }

    fn now(&self) -> SimTime {
        self.epoch_start
    }

    fn describe(&self, action: &ShardAction) -> String {
        match *action {
            ShardAction::Consume(s) => match self.pending[s as usize].first() {
                Some(&(k, _)) => format!("consume(shard={s}, at={:?}, lane={})", k.at, k.lane),
                None => format!("consume(shard={s}, empty)"),
            },
            ShardAction::Barrier => format!("barrier(epoch_end={:?})", self.epoch_end()),
        }
    }
}

// ---------------------------------------------------------------------------
// Protocol 5: disconnected operation — buffer, replay, reconcile.
// ---------------------------------------------------------------------------

/// One enabled event in the disconnect protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisconnectAction {
    /// One virtual second passes: connected, the device's beat reaches
    /// the controller; partitioned, the device buffers an update summary
    /// in its bounded ring instead.
    Tick,
    /// The adversary opens a wireless partition (budgeted).
    Partition,
    /// The partition heals: the controller reconciles (re-arms the stale
    /// heartbeat under the takeover-grace rule) and the device replays
    /// its buffered ring through the reconnect session.
    Heal,
    /// The adversary re-delivers the most recently replayed update
    /// (budgeted) — a network duplicate of a summary that already landed.
    DupReplay,
}

/// The disconnected-operation protocol over one always-live device and
/// its controller, under a partition/duplication adversary.
///
/// Each tick the device either beats the controller (connected) or
/// buffers an update in its bounded [`ReplayRing`]-shaped ring
/// (partitioned; the oldest entry is evicted and counted as expired when
/// the ring is full). A heal reconciles the controller — re-arming the
/// stale heartbeat exactly as [`SwarmController::reconcile_reconnect`]
/// does — and replays the ring through a watermark session that drops
/// duplicates. The device itself never crashes, so the two invariants
/// are sharp:
///
/// 1. **Exactly-once replay**: every update pushed is delivered once,
///    expired once, or still buffered — never double-counted, even when
///    the adversary re-delivers a replayed summary.
/// 2. **No spurious death**: a controller that heard silence only
///    because of a partition must never declare the device failed.
///
/// The `no_dedup` mutant accepts duplicate replays (breaking 1); the
/// `no_grace` mutant skips the heal-time re-arm (breaking 2). Both must
/// yield minimal counterexamples that replay through the DES engine.
///
/// [`ReplayRing`]: hivemind_swarm::disconnect::ReplayRing
#[derive(Debug, Clone)]
pub struct DisconnectModel {
    horizon: u32,
    cap: u32,
    tick: u32,
    /// Non-tick actions taken since the last tick — spreads same-tick
    /// actions over distinct virtual instants for DES replay.
    slot: u32,
    partitioned: bool,
    partition_budget: u32,
    dup_budget: u32,
    /// Device-side ring: pending update seqs, oldest first.
    buffered: Vec<u64>,
    /// Next update seq (== total updates pushed).
    next_seq: u64,
    /// Updates evicted by the ring bound.
    expired: u64,
    /// Updates the reconnect session accepted.
    delivered: u64,
    /// Duplicate replays the session rejected.
    duplicates: u64,
    /// Highest seq the session has accepted.
    watermark: Option<u64>,
    /// Controller view: tick of the device's last recorded beat.
    last_beat_tick: u32,
    /// Controller view: latched failure declaration.
    declared_failed: bool,
    /// Planted bug: the session accepts duplicate replays.
    no_dedup: bool,
    /// Planted bug: the heal skips the takeover-grace re-arm.
    no_grace: bool,
}

impl DisconnectModel {
    /// A single device explored for `horizon` ticks with a ring of
    /// `cap` entries and the given adversary budgets.
    pub fn new(
        horizon: u32,
        cap: u32,
        partition_budget: u32,
        dup_budget: u32,
        no_dedup: bool,
        no_grace: bool,
    ) -> DisconnectModel {
        DisconnectModel {
            horizon,
            cap,
            tick: 0,
            slot: 0,
            partitioned: false,
            partition_budget,
            dup_budget,
            buffered: Vec::new(),
            next_seq: 0,
            expired: 0,
            delivered: 0,
            duplicates: 0,
            watermark: None,
            last_beat_tick: 0,
            declared_failed: false,
            no_dedup,
            no_grace,
        }
    }

    /// Offers one replayed seq to the reconnect session.
    fn offer(&mut self, seq: u64) {
        let fresh = self.watermark.is_none_or(|w| seq > w);
        if fresh || self.no_dedup {
            self.delivered += 1;
            self.watermark = Some(self.watermark.map_or(seq, |w| w.max(seq)));
        } else {
            self.duplicates += 1;
        }
    }

    /// The controller's failure check: silence longer than the paper's
    /// 3 s heartbeat window latches a declaration.
    fn check(&mut self) {
        if self.tick.saturating_sub(self.last_beat_tick) > 3 {
            self.declared_failed = true;
        }
    }
}

impl Hash for DisconnectModel {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Constants of the run (horizon, cap, the mutant flags) are
        // omitted; everything that can influence future behaviour is in.
        self.tick.hash(state);
        self.slot.hash(state);
        self.partitioned.hash(state);
        self.partition_budget.hash(state);
        self.dup_budget.hash(state);
        self.buffered.hash(state);
        self.next_seq.hash(state);
        self.expired.hash(state);
        self.delivered.hash(state);
        self.duplicates.hash(state);
        self.watermark.hash(state);
        self.last_beat_tick.hash(state);
        self.declared_failed.hash(state);
    }
}

impl McModel for DisconnectModel {
    type Action = DisconnectAction;

    fn enabled(&self, out: &mut Vec<DisconnectAction>) {
        if self.tick >= self.horizon {
            return;
        }
        out.push(DisconnectAction::Tick);
        if self.partitioned {
            out.push(DisconnectAction::Heal);
        } else {
            if self.partition_budget > 0 {
                out.push(DisconnectAction::Partition);
            }
            if self.dup_budget > 0 && self.watermark.is_some() {
                out.push(DisconnectAction::DupReplay);
            }
        }
    }

    fn apply(&mut self, action: &DisconnectAction) {
        match *action {
            DisconnectAction::Tick => {
                self.tick += 1;
                self.slot = 0;
                if self.partitioned {
                    // The lease expired; the device buffers a summary.
                    if self.buffered.len() as u32 == self.cap {
                        self.buffered.remove(0);
                        self.expired += 1;
                    }
                    self.buffered.push(self.next_seq);
                    self.next_seq += 1;
                    // The controller hears nothing and cannot reach the
                    // swarm, so its checks have no effect until heal.
                } else {
                    self.last_beat_tick = self.tick;
                    self.check();
                }
            }
            DisconnectAction::Partition => {
                self.partitioned = true;
                self.partition_budget -= 1;
                self.slot += 1;
            }
            DisconnectAction::Heal => {
                self.partitioned = false;
                self.slot += 1;
                // Reconnect reconciliation: re-arm the stale beat from
                // the heal instant (takeover grace) — unless the planted
                // bug skips it.
                if !self.no_grace {
                    self.last_beat_tick = self.last_beat_tick.max(self.tick);
                }
                // First post-heal failure check, before any new beat.
                self.check();
                // Replay the ring through the session, oldest first.
                for seq in std::mem::take(&mut self.buffered) {
                    self.offer(seq);
                }
            }
            DisconnectAction::DupReplay => {
                self.slot += 1;
                self.dup_budget -= 1;
                let seq = self.watermark.expect("enabled only past first replay");
                self.offer(seq);
            }
        }
    }

    fn invariant(&self) -> Result<(), String> {
        // 1. Exactly-once replay: conservation over the buffered stream.
        let accounted = self.delivered + self.expired + self.buffered.len() as u64;
        if self.next_seq != accounted {
            return Err(format!(
                "exactly-once replay: {} updates pushed but {} delivered + \
                 {} expired + {} still buffered",
                self.next_seq,
                self.delivered,
                self.expired,
                self.buffered.len()
            ));
        }
        // 2. No spurious death: the device beat every connected tick, so
        //    any declaration means partition silence was read as death.
        if self.declared_failed {
            return Err("spurious failure declaration: the device is live and only \
                 a partition silenced its beats"
                .to_string());
        }
        Ok(())
    }

    fn now(&self) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(self.tick as u64 * 1000 + self.slot as u64 * 10)
    }

    fn describe(&self, action: &DisconnectAction) -> String {
        match *action {
            DisconnectAction::Tick => format!("tick({})", self.tick + 1),
            DisconnectAction::Partition => format!("partition(tick={})", self.tick),
            DisconnectAction::Heal => format!("heal(tick={})", self.tick),
            DisconnectAction::DupReplay => format!(
                "dup_replay(seq={})",
                self.watermark.expect("enabled only past first replay")
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Counterexample replay through the DES engine.
// ---------------------------------------------------------------------------

struct Replay<M: McModel> {
    model: M,
    violation: Option<(usize, String)>,
}

impl<M: McModel> DesModel for Replay<M> {
    type Event = (usize, M::Action);

    fn handle(&mut self, _ctx: &mut Context<Self::Event>, (index, action): Self::Event) {
        if self.violation.is_some() {
            return;
        }
        self.model.apply(&action);
        if let Err(message) = self.model.invariant() {
            self.violation = Some((index, message));
        }
    }
}

/// Replays a checker-emitted schedule through the DES engine: every step
/// is scheduled at its recorded virtual instant and applied in order by
/// the event loop. Returns the first `(step index, message)` invariant
/// violation, which for a checker counterexample must be the final step
/// with the identical message — byte-for-byte, independent of thread
/// count, because both sides are pure functions of the action sequence.
pub fn replay_schedule<M: McModel>(
    model: M,
    schedule: &Schedule<M::Action>,
) -> Option<(usize, String)> {
    if let Err(message) = model.invariant() {
        return Some((0, message));
    }
    let mut engine = Engine::new(Replay {
        model,
        violation: None,
    });
    for (index, step) in schedule.steps.iter().enumerate() {
        engine.schedule_at(step.at, (index, step.action.clone()));
    }
    engine.run_to_completion();
    engine.into_model().violation
}

// ---------------------------------------------------------------------------
// Canonical instances (2 servers / 1 controller / 3 tasks).
// ---------------------------------------------------------------------------

/// The failover protocol's canonical instance: 3 devices, 5 heartbeat
/// rounds, up to 2 device crashes and 1 primary failover, with orphan
/// redistribution on. Explores to zero violations.
pub fn failover_instance() -> FailoverModel {
    FailoverModel::new(3, 5, 2, 1, true)
}

/// The historical controller on the same instance: inherited strips die
/// with their holder, so chained failovers violate work conservation.
/// Kept as a real-bug demonstration — the checker found this one.
pub fn failover_legacy_instance() -> FailoverModel {
    FailoverModel::new(3, 5, 2, 0, false)
}

fn canonical_breaker_cfg() -> BreakerConfig {
    BreakerConfig {
        open_after: 2,
        half_open_probes: 1,
        cooldown: SimDuration::from_secs(1),
    }
}

/// The retry/breaker protocol's canonical instance: 3 tasks, a breaker
/// tripping after 2 give-ups with a 1 s cool-down, and a bounded
/// 2-attempt retry policy. Explores to zero violations.
pub fn retry_breaker_instance() -> RetryBreakerModel<CircuitBreaker> {
    let cfg = canonical_breaker_cfg();
    RetryBreakerModel::new(
        CircuitBreaker::new(cfg),
        cfg,
        RetryPolicy::bounded(2, SimDuration::ZERO),
        3,
        4,
    )
}

/// The same instance with the planted [`SkipHalfOpenBreaker`] bug; the
/// checker must produce a legality counterexample.
pub fn retry_breaker_mutant() -> RetryBreakerModel<SkipHalfOpenBreaker> {
    let cfg = canonical_breaker_cfg();
    RetryBreakerModel::new(
        SkipHalfOpenBreaker(CircuitBreaker::new(cfg)),
        cfg,
        RetryPolicy::bounded(2, SimDuration::ZERO),
        3,
        4,
    )
}

fn exchange_placements(sessions: usize, dedup: bool) -> Vec<(u8, ExchangeSession)> {
    let retry = RetryPolicy::bounded(2, SimDuration::ZERO);
    let make = |durable: bool| {
        let s = ExchangeSession::new(retry.clone(), durable);
        if dedup {
            s
        } else {
            s.without_dedup()
        }
    };
    // Volatile sessions on server 0, one durable (CouchDB-backed) session
    // on server 1: 2 servers.
    let mut out = vec![(0, make(false)); sessions - 1];
    out.push((1, make(true)));
    out
}

/// The exchange protocol's canonical instance: 3 sessions on 2 servers,
/// one duplication, one drop and one store crash available to the
/// adversary. Explores to zero violations (several million states —
/// meant for release builds; debug-build tests use
/// [`exchange_smoke_instance`]).
pub fn exchange_instance() -> ExchangeModel {
    ExchangeModel::new(&exchange_placements(3, true), 1, 1, 1)
}

/// A smaller exchange instance — one volatile and one durable session,
/// same adversary budgets — cheap enough for debug builds and the smoke
/// bench while still exercising every protocol path.
pub fn exchange_smoke_instance() -> ExchangeModel {
    ExchangeModel::new(&exchange_placements(2, true), 1, 1, 1)
}

/// [`exchange_smoke_instance`] with response deduplication disabled; a
/// duplicated `FetchResp` must yield a double-execution counterexample.
pub fn exchange_mutant() -> ExchangeModel {
    ExchangeModel::new(&exchange_placements(2, false), 1, 1, 1)
}

/// The initial-event offsets of the shard protocol's canonical universe:
/// 6 devices whose events interleave in time *across* the three shard
/// blocks ({0, 4} ms, {2, 6} ms, {1, 5} ms), so a `(shard, time)` merge
/// is actually wrong and every epoch has real cross-shard concurrency.
const SHARD_OFFSETS_MS: [u64; 6] = [0, 4, 2, 6, 1, 5];

/// The shard protocol's canonical instance: 6 devices in 3 shards,
/// time-interleaved initial events, one boundary hop each, under the
/// conservative 5 ms lookahead. Explores to zero violations.
pub fn shard_merge_instance() -> ShardModel {
    ShardModel::new(6, 3, &SHARD_OFFSETS_MS, 1, MergeRule::ByKey, false)
}

/// The same universe on `shards` shards — the merged stream must be the
/// identical key sequence for every count (1 = the unsharded reference).
pub fn shard_merge_instance_on(shards: u32) -> ShardModel {
    ShardModel::new(6, shards, &SHARD_OFFSETS_MS, 1, MergeRule::ByKey, false)
}

/// Planted bug: the barrier concatenates batches in shard order — a
/// `(shard, time)` merge key. The checker must produce a merge-order
/// counterexample.
pub fn shard_merge_mutant() -> ShardModel {
    ShardModel::new(6, 3, &SHARD_OFFSETS_MS, 1, MergeRule::ByShardTime, false)
}

/// Planted bug: a shard that consumes one lookahead *past* the epoch
/// horizon, racing events other shards can still send. The checker must
/// produce a lookahead-safety counterexample.
pub fn shard_eager_mutant() -> ShardModel {
    ShardModel::new(6, 3, &SHARD_OFFSETS_MS, 1, MergeRule::ByKey, true)
}

/// The disconnect protocol's canonical instance: one device over 8
/// ticks with a 2-entry ring, up to 2 partitions and 1 duplicated
/// replay. Small enough to overflow the ring (exercising expiry) and to
/// chain two partition/heal cycles. Explores to zero violations.
pub fn disconnect_instance() -> DisconnectModel {
    DisconnectModel::new(8, 2, 2, 1, false, false)
}

/// Planted bug: the reconnect session accepts duplicate replays. The
/// checker must produce an exactly-once counterexample.
pub fn disconnect_no_dedup_mutant() -> DisconnectModel {
    DisconnectModel::new(8, 2, 2, 1, true, false)
}

/// Planted bug: the heal skips the takeover-grace re-arm, so the first
/// post-heal failure check reads partition silence as device death. The
/// checker must produce a spurious-declaration counterexample.
pub fn disconnect_no_grace_mutant() -> DisconnectModel {
    DisconnectModel::new(8, 2, 2, 1, false, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hivemind_sim::mc::{check, McConfig};

    fn cfg(depth: usize) -> McConfig {
        McConfig {
            max_depth: depth,
            ..McConfig::default()
        }
    }

    #[test]
    fn failover_instance_holds_exhaustively() {
        let report = check(&failover_instance(), &cfg(24));
        assert!(
            report.holds(),
            "unexpected violation: {:?}",
            report
                .violation
                .map(|v| (v.message, v.schedule.to_string()))
        );
        assert!(!report.stats.truncated);
        assert!(report.stats.states > 1_000, "exploration is non-trivial");
    }

    #[test]
    fn legacy_orphan_drop_is_caught_and_replays() {
        let report = check(&failover_legacy_instance(), &cfg(24));
        let v = report.violation.expect("orphaned strips must be caught");
        assert!(v.message.contains("task conservation"), "{}", v.message);
        // The counterexample replays through the DES engine to the same
        // violation at the same (final) step.
        let replayed = replay_schedule(failover_legacy_instance(), &v.schedule);
        let (index, message) = replayed.expect("replay must reproduce the violation");
        assert_eq!(index, v.schedule.len() - 1);
        assert_eq!(message, v.message);
        // The fixed controller survives the exact same schedule. The
        // legacy counterexample's actions are valid on the fixed model
        // (same action vocabulary), so replay must come back clean.
        assert_eq!(replay_schedule(failover_instance(), &v.schedule), None);
    }

    #[test]
    fn retry_breaker_instance_holds_exhaustively() {
        let report = check(&retry_breaker_instance(), &cfg(24));
        assert!(
            report.holds(),
            "unexpected violation: {:?}",
            report
                .violation
                .map(|v| (v.message, v.schedule.to_string()))
        );
        assert!(!report.stats.truncated);
        assert!(report.stats.states > 100, "exploration is non-trivial");
    }

    #[test]
    fn skip_half_open_mutant_is_caught_and_replays() {
        let report = check(&retry_breaker_mutant(), &cfg(24));
        let v = report.violation.expect("skip-half-open must be caught");
        assert!(v.message.contains("breaker legality"), "{}", v.message);
        let (index, message) =
            replay_schedule(retry_breaker_mutant(), &v.schedule).expect("must reproduce");
        assert_eq!(index, v.schedule.len() - 1);
        assert_eq!(message, v.message);
        // The faithful breaker survives the same schedule.
        assert_eq!(replay_schedule(retry_breaker_instance(), &v.schedule), None);
    }

    #[test]
    fn exchange_smoke_instance_holds_exhaustively() {
        let report = check(&exchange_smoke_instance(), &cfg(28));
        assert!(
            report.holds(),
            "unexpected violation: {:?}",
            report
                .violation
                .map(|v| (v.message, v.schedule.to_string()))
        );
        assert!(!report.stats.truncated);
        assert!(report.stats.states > 100_000, "exploration is non-trivial");
    }

    #[test]
    #[ignore = "~10M states, ~30 s in release; mc_sweep explores it on every CI run"]
    fn exchange_instance_holds_exhaustively() {
        let report = check(
            &exchange_instance(),
            &McConfig {
                max_depth: 40,
                max_states: 30_000_000,
            },
        );
        assert!(
            report.holds(),
            "unexpected violation: {:?}",
            report
                .violation
                .map(|v| (v.message, v.schedule.to_string()))
        );
        assert!(!report.stats.truncated);
    }

    #[test]
    fn no_dedup_mutant_is_caught_and_replays() {
        let report = check(&exchange_mutant(), &cfg(14));
        let v = report.violation.expect("double execution must be caught");
        assert!(v.message.contains("double execution"), "{}", v.message);
        let (index, message) =
            replay_schedule(exchange_mutant(), &v.schedule).expect("must reproduce");
        assert_eq!(index, v.schedule.len() - 1);
        assert_eq!(message, v.message);
        assert_eq!(replay_schedule(exchange_instance(), &v.schedule), None);
    }

    #[test]
    fn shard_merge_instance_holds_exhaustively() {
        let report = check(&shard_merge_instance(), &cfg(16));
        assert!(
            report.holds(),
            "unexpected violation: {:?}",
            report
                .violation
                .map(|v| (v.message, v.schedule.to_string()))
        );
        assert!(!report.stats.truncated);
        // The conservative protocol is confluent by design: within a
        // shard the consume order is fixed, so dedup collapses the
        // interleavings to a per-shard progress vector. A few dozen
        // distinct states is the honest size of this space.
        assert!(
            report.stats.states > 30,
            "exploration is non-trivial ({} states)",
            report.stats.states
        );
    }

    #[test]
    fn shard_merged_stream_is_shard_count_invariant() {
        // Run each instance to termination deterministically (always the
        // first enabled action) and compare the merged key streams: the
        // checker proves every schedule yields a sorted stream of the
        // same multiset, so one schedule per count suffices here.
        let run = |mut m: ShardModel| -> Vec<EffectKey> {
            let mut actions = Vec::new();
            loop {
                actions.clear();
                m.enabled(&mut actions);
                match actions.first() {
                    Some(a) => m.apply(&a.clone()),
                    None => break,
                }
                m.invariant().expect("conservative protocol holds");
            }
            m.merged
        };
        let reference = run(shard_merge_instance_on(1));
        assert_eq!(reference.len(), 12, "6 initial events + 6 boundary hops");
        for shards in [2u32, 3, 4] {
            assert_eq!(
                reference,
                run(shard_merge_instance_on(shards)),
                "merged stream diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn shard_time_merge_mutant_is_caught_and_replays() {
        let report = check(&shard_merge_mutant(), &cfg(16));
        let v = report.violation.expect("shard-keyed merge must be caught");
        assert!(v.message.contains("merge order"), "{}", v.message);
        let (index, message) =
            replay_schedule(shard_merge_mutant(), &v.schedule).expect("must reproduce");
        assert_eq!(index, v.schedule.len() - 1);
        assert_eq!(message, v.message);
        // The order-stable merge survives the exact same schedule.
        assert_eq!(replay_schedule(shard_merge_instance(), &v.schedule), None);
    }

    #[test]
    fn shard_eager_horizon_mutant_is_caught_and_replays() {
        let report = check(&shard_eager_mutant(), &cfg(16));
        let v = report.violation.expect("eager horizon must be caught");
        assert!(v.message.contains("lookahead horizon"), "{}", v.message);
        let (index, message) =
            replay_schedule(shard_eager_mutant(), &v.schedule).expect("must reproduce");
        assert_eq!(index, v.schedule.len() - 1);
        assert_eq!(message, v.message);
        // The conservative protocol treats the eager consume as a no-op
        // (the event is simply not consumable yet) and survives.
        assert_eq!(replay_schedule(shard_merge_instance(), &v.schedule), None);
    }

    #[test]
    fn disconnect_instance_holds_exhaustively() {
        let report = check(&disconnect_instance(), &cfg(24));
        assert!(
            report.holds(),
            "unexpected violation: {:?}",
            report
                .violation
                .map(|v| (v.message, v.schedule.to_string()))
        );
        assert!(!report.stats.truncated);
        assert!(
            report.stats.states > 100,
            "exploration is non-trivial ({} states)",
            report.stats.states
        );
    }

    #[test]
    fn disconnect_no_dedup_mutant_is_caught_and_replays() {
        let report = check(&disconnect_no_dedup_mutant(), &cfg(24));
        let v = report.violation.expect("duplicate replay must be caught");
        assert!(v.message.contains("exactly-once replay"), "{}", v.message);
        let (index, message) =
            replay_schedule(disconnect_no_dedup_mutant(), &v.schedule).expect("must reproduce");
        assert_eq!(index, v.schedule.len() - 1);
        assert_eq!(message, v.message);
        // The deduplicating session survives the exact same schedule.
        assert_eq!(replay_schedule(disconnect_instance(), &v.schedule), None);
    }

    #[test]
    fn disconnect_no_grace_mutant_is_caught_and_replays() {
        let report = check(&disconnect_no_grace_mutant(), &cfg(24));
        let v = report.violation.expect("spurious death must be caught");
        assert!(v.message.contains("spurious failure"), "{}", v.message);
        let (index, message) =
            replay_schedule(disconnect_no_grace_mutant(), &v.schedule).expect("must reproduce");
        assert_eq!(index, v.schedule.len() - 1);
        assert_eq!(message, v.message);
        // The graced reconciliation survives the exact same schedule.
        assert_eq!(replay_schedule(disconnect_instance(), &v.schedule), None);
    }

    #[test]
    fn counterexamples_are_minimal() {
        // The mutant breaker needs 2 give-ups (3 actions each: submit,
        // fail→retry, fail→give-up), 2 ticks to clear the cool-down, and
        // the violating submit: depth 9 is the theoretical minimum.
        let v = check(&retry_breaker_mutant(), &cfg(24))
            .violation
            .expect("caught");
        assert_eq!(v.depth, 9, "schedule:\n{}", v.schedule);
        // The duplicated-response bug needs store delivery, fetch
        // delivery, the duplication, and both response deliveries.
        let v = check(&exchange_mutant(), &cfg(14))
            .violation
            .expect("caught");
        assert_eq!(v.depth, 5, "schedule:\n{}", v.schedule);
        // And the legacy orphan drop needs two crashes, the rounds that
        // detect the first one, and the check that detects the second.
        let v = check(&failover_legacy_instance(), &cfg(24))
            .violation
            .expect("caught");
        assert!(v.message.contains("task conservation"), "{}", v.message);
        assert!(v.depth <= 14, "schedule:\n{}", v.schedule);
        // The duplicate-replay bug needs a partition, one buffered tick,
        // the heal that replays it, and the duplicated delivery.
        let v = check(&disconnect_no_dedup_mutant(), &cfg(24))
            .violation
            .expect("caught");
        assert_eq!(v.depth, 4, "schedule:\n{}", v.schedule);
        // The grace-skipping heal needs a partition held past the 3 s
        // window (4 ticks) plus the heal whose check misfires.
        let v = check(&disconnect_no_grace_mutant(), &cfg(24))
            .violation
            .expect("caught");
        assert_eq!(v.depth, 6, "schedule:\n{}", v.schedule);
    }
}

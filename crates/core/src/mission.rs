//! End-to-end mission execution (Scenario A/B and the car missions).
//!
//! A mission drives the full stack: the controller partitions the field,
//! devices fly boustrophedon coverage over their regions, camera batches
//! become per-frame tasks (obstacle avoidance pinned on-board, recognition
//! placed per platform), sightings of ground-truth targets become
//! detections via the real kernels (embeddings + union-find dedup for
//! Scenario B, template OCR for the Treasure Hunt), and the mission ends
//! when the last dependent result lands. Battery is charged for flight,
//! for hovering while waiting on results, for on-board compute, and for
//! radio — which is precisely the accounting that makes distributed
//! execution run out of battery in Scenario B (Sec. 2.3) and makes the
//! slow IaaS backend expensive in Fig. 1.

use std::collections::HashMap;

use hivemind_apps::kernels::dedup::{deduplicate, score, Observation};
use hivemind_apps::kernels::embedding::observe;
use hivemind_apps::kernels::ocr::{parse_instruction, recognize, Instruction, SignImage};
use hivemind_apps::learning::{DetectionQuality, RetrainMode};
use hivemind_apps::scenario::Scenario;
use hivemind_apps::suite::App;
use hivemind_sim::rng::RngForge;
use hivemind_sim::time::{SimDuration, SimTime};
use hivemind_sim::trace::ArgValue;
use hivemind_swarm::field::{Field, FieldParams};
use hivemind_swarm::geometry::Rect;
use hivemind_swarm::maze::{wall_follower, Maze};
use hivemind_swarm::route::{coverage_lanes, path_length};
use rand::Rng;

use crate::controller::SwarmController;
use crate::dsl::PlacementSite;
use crate::engine::{Engine, TaskRecord};
use crate::experiment::{Experiment, ExperimentConfig, MotionPolicy};
use crate::metrics::{MissionOutcome, Outcome};

/// Seconds per coverage lane turn (deceleration, 180° yaw, realign).
const TURN_SECS: f64 = 3.0;
/// Takeoff / deployment overhead before coverage starts.
const TAKEOFF_SECS: f64 = 10.0;
/// Field area assigned per device, m² (16 drones → a 160 m × 100 m
/// sports complex, matching the testbed scale; simulated swarms keep the
/// per-device workload constant, as the paper scales links and fields
/// proportionally in Sec. 5.6).
const AREA_PER_DEVICE_M2: f64 = 1000.0;

/// The mission field for a swarm of `devices`, at a 1.6:1 aspect ratio.
fn mission_field(devices: u32) -> Rect {
    let area = AREA_PER_DEVICE_M2 * devices as f64;
    let width = (area * 1.6).sqrt();
    Rect::new(0.0, 0.0, width, area / width)
}

/// Embedding observation noise per retraining mode: better-trained
/// recognition models produce tighter embeddings.
fn embedding_sigma(mode: RetrainMode) -> f64 {
    // Per-dimension noise; in the 128-d space two observations of the
    // same person sit ≈ σ·√256 apart, so the 0.8 matching threshold is
    // comfortably met only by the swarm-retrained model.
    match mode {
        RetrainMode::None => 0.060,
        RetrainMode::PerDevice => 0.045,
        RetrainMode::SwarmWide => 0.028,
    }
}

/// Per-sighting item-detection probability per retraining mode.
fn detect_prob(mode: RetrainMode) -> f64 {
    match mode {
        RetrainMode::None => 0.80,
        RetrainMode::PerDevice => 0.90,
        RetrainMode::SwarmWide => 0.98,
    }
}

/// Runs a mission and assembles the outcome.
pub fn run_mission(cfg: &ExperimentConfig, scenario: Scenario) -> Outcome {
    match scenario {
        Scenario::StationaryItems | Scenario::MovingPeople => drone_mission(cfg, scenario),
        Scenario::TreasureHunt => treasure_hunt(cfg),
        Scenario::CarMaze => car_maze(cfg),
    }
}

/// One contiguous stretch of coverage flight over a set of rectangles.
struct Segment {
    /// Seconds from mission start at which the segment begins.
    start_secs: f64,
    /// Segment duration, seconds.
    len_secs: f64,
    /// Area covered during the segment.
    rects: Vec<Rect>,
}

impl Segment {
    /// Frame-batch index range `[lo, hi)` of this segment (batch `b`
    /// captures at `TAKEOFF_SECS + b`).
    fn batch_range(&self) -> (usize, usize) {
        let lo = (self.start_secs - TAKEOFF_SECS).max(0.0).floor() as usize;
        let hi = (self.start_secs + self.len_secs - TAKEOFF_SECS)
            .max(0.0)
            .floor() as usize;
        (lo, hi.max(lo))
    }
}

/// Boustrophedon coverage time over a set of rectangles.
fn coverage_secs(rects: &[Rect], footprint_w: f64, speed: f64) -> f64 {
    rects
        .iter()
        .map(|r| {
            let lanes = coverage_lanes(r, footprint_w);
            let turns = (lanes.len() / 2).saturating_sub(1) as f64;
            path_length(&lanes) / speed + turns * TURN_SECS
        })
        .sum()
}

/// A device's flight plan: `passes` sweeps of its own region, then one
/// extra sweep over any area inherited from failed neighbours (Fig. 10).
fn device_segments(
    own: Rect,
    inherited: &[Rect],
    passes: u32,
    footprint_w: f64,
    speed: f64,
) -> Vec<Segment> {
    let own_len = coverage_secs(&[own], footprint_w, speed);
    let mut segments = Vec::new();
    let mut t = TAKEOFF_SECS;
    for _ in 0..passes {
        segments.push(Segment {
            start_secs: t,
            len_secs: own_len,
            rects: vec![own],
        });
        t += own_len;
    }
    if !inherited.is_empty() {
        let len = coverage_secs(inherited, footprint_w, speed);
        segments.push(Segment {
            start_secs: t,
            len_secs: len,
            rects: inherited.to_vec(),
        });
    }
    segments
}

/// Mission frame batches carry the full camera stream: 8 fps x 2 MB
/// frames = 16 MB per one-second batch, 8x the single-app benchmarks'
/// modest-load operating point (Sec. 2.2 runs those "not at max load").
/// This is what congests the centralized platforms' uplinks and data
/// plane during missions (Fig. 1) while HiveMind's on-device filtering
/// keeps its share under capacity.
const CAMERA_STREAM_SCALE: f64 = 8.0;

fn drone_mission(cfg: &ExperimentConfig, scenario: Scenario) -> Outcome {
    let forge = RngForge::new(cfg.seed).child("mission");
    let mut rng = forge.stream("sightings");
    let mut engine_cfg = cfg.engine_config();
    // rate_scale models higher frame rates (16/32 fps in Fig. 17a): more
    // bytes per one-second batch.
    engine_cfg.input_scale *= CAMERA_STREAM_SCALE * cfg.rate_scale;
    let mut engine = Engine::new(engine_cfg);
    // The user's DSL task graph goes through the Fig. 8 synthesis pass and
    // the resulting placement is pinned on the engine (for non-hybrid
    // platforms this degenerates to the platform's forced placement, with
    // `Place` directives honored).
    for (app, site) in crate::programs::synthesized_placements(scenario, cfg.platform) {
        engine.pin_placement(app, site);
    }
    // Obstacle avoidance always runs on-board, on every platform
    // (Sec. 2.1: catastrophic failure avoidance).
    engine.pin_placement(App::ObstacleAvoidance, PlacementSite::Edge);
    if !cfg.platform.is_distributed() {
        // Deduplication aggregates the whole swarm's output at the
        // backend.
        engine.pin_placement(App::PeopleDedup, PlacementSite::Cloud);
    }

    let recognition_app = match scenario {
        Scenario::StationaryItems => App::TreeRecognition,
        _ => App::FaceRecognition,
    };
    let passes: u32 = match scenario {
        // People move, so the swarm sweeps the field repeatedly.
        Scenario::MovingPeople => 3,
        _ => 1,
    };
    let bounds = mission_field(cfg.devices);
    let field_params = match scenario {
        Scenario::StationaryItems => FieldParams {
            bounds,
            ..FieldParams::scenario_a()
        },
        _ => FieldParams {
            bounds,
            ..FieldParams::scenario_b()
        },
    };
    let mut field = Field::generate(field_params, forge.child("world"));
    let mut controller = SwarmController::new(bounds, cfg.devices);
    // The controller's monitoring plane reasons in the same spatial
    // blocks the engine shards the device plane into.
    controller
        .align_device_shards(*engine.shard_map())
        .expect("engine and controller agree on the fleet size");
    let profile = cfg.device_profile();

    // --- Device failures (Sec. 4.6 / Fig. 10): the controller declares a
    // device dead 3 s after its heartbeats stop and repartitions its area
    // among live neighbours, who fly an extra sweep over the inherited
    // strips after finishing their own.
    let mut fail_secs: Vec<Option<f64>> = vec![None; cfg.devices as usize];
    let mut heir_strips: Vec<(u32, Rect)> = Vec::new();
    let mut failures = cfg.plan.device_failures.clone();
    // Stochastic MTBF failures ride alongside the scripted ones. The
    // draws come from the dedicated fault lane of the seed chain (one
    // indexed stream per device), so enabling them never reshuffles the
    // mission's sighting/world randomness.
    if let Some(mtbf) = cfg.plan.faults.devices.mtbf_secs {
        let fault_forge = RngForge::new(cfg.seed).child("faults");
        let horizon = scenario.mission_timeout().as_secs_f64();
        for dev in 0..cfg.devices {
            let mut frng = fault_forge.indexed_stream("device-mtbf", dev as u64);
            let u: f64 = frng.gen();
            let fail_at = -mtbf * (1.0 - u).ln();
            if fail_at < horizon {
                failures.push((fail_at, dev));
            }
        }
    }
    failures.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    // (failed device, failure instant, heirs inheriting its area).
    let mut fail_records: Vec<(u32, f64, Vec<u32>)> = Vec::new();
    for (at, dev) in failures {
        if dev < cfg.devices && fail_secs[dev as usize].is_none() && controller.alive_count() > 1 {
            let before = heir_strips.len();
            // A fault storm can leave no survivors mid-loop; degrade
            // gracefully instead of aborting the run.
            let Ok(extra) = controller.try_force_fail(dev) else {
                continue;
            };
            fail_secs[dev as usize] = Some(at.max(0.0));
            heir_strips.extend(extra);
            let heirs = heir_strips[before..].iter().map(|&(h, _)| h).collect();
            fail_records.push((dev, at.max(0.0), heirs));
        }
    }

    // --- Phase 0: route creation (one planning task per device). ---
    for dev in 0..cfg.devices {
        engine.submit_task(SimTime::ZERO, dev, App::Maze, 0);
    }

    // --- Flight + per-frame tasks. ---
    // recognition task id → (device, capture time); sighting bookkeeping.
    let mut batch_tasks: HashMap<u32, (u32, SimTime)> = HashMap::new();
    let mut item_sightings: Vec<(u32, u32)> = Vec::new(); // (task, item)
    let mut people_sightings: Vec<(u32, u32, u32)> = Vec::new(); // (task, person, device)
    let mut flight_ends: Vec<SimTime> = Vec::new();

    let mut plans: Vec<Vec<Segment>> = Vec::new();
    for dev in 0..cfg.devices {
        let assignment = controller.assignment_of(dev);
        let (own, inherited) = assignment.split_first().expect("assignment non-empty");
        let segments = device_segments(
            *own,
            inherited,
            passes,
            profile.camera.footprint_w,
            profile.speed,
        );
        let planned_end = segments
            .last()
            .map(|s| s.start_secs + s.len_secs)
            .unwrap_or(TAKEOFF_SECS);
        let end = fail_secs[dev as usize]
            .unwrap_or(planned_end)
            .min(planned_end);
        flight_ends.push(SimTime::ZERO + SimDuration::from_secs_f64(end));
        plans.push(segments);
    }

    // Recovery bookkeeping: each failure is detected after the 3 s
    // heartbeat window and counts as recovered once every heir finishes
    // the extra sweep that re-covers the dead device's area.
    let detection = hivemind_sim::faults::DETECTION_WINDOW;
    for (dev, at, heirs) in &fail_records {
        let recovered_secs = heirs
            .iter()
            .filter_map(|&h| plans[h as usize].last().map(|s| s.start_secs + s.len_secs))
            .fold(at + detection.as_secs_f64(), f64::max);
        engine.note_device_failure(detection, SimDuration::from_secs_f64(recovered_secs - at));
        if engine.tracer().is_enabled() {
            let kind = ("kind", ArgValue::Str("device_failed".into()));
            for (name, t) in [
                (hivemind_sim::faults::EV_INJECTED, *at),
                (
                    hivemind_sim::faults::EV_DETECTED,
                    at + detection.as_secs_f64(),
                ),
                (hivemind_sim::faults::EV_RECOVERED, recovered_secs),
            ] {
                engine.tracer().instant(
                    hivemind_sim::faults::TRACE_CAT,
                    name,
                    *dev,
                    SimTime::ZERO + SimDuration::from_secs_f64(t),
                    vec![kind.clone()],
                );
            }
        }
    }
    // Controller failover: the swarm controller's backup takes over after
    // the detection window (the cluster-side admission stall and ledger
    // entry are wired by the engine from the same plan).
    if let Some(at) = cfg.plan.faults.devices.controller_failover_at_secs {
        let _ = controller.fail_primary(
            SimTime::ZERO + SimDuration::from_secs_f64(at),
            SimDuration::from_secs_f64(cfg.plan.faults.devices.controller_takeover_secs),
        );
    }
    // Disconnected operation: with the disconnect plane armed, devices
    // beat once per second and the controller runs its failure detector
    // on the beat stream. Beats raised inside a partition window never
    // reach the controller (the device buffers a summary instead — the
    // engine side of this plane), so at every heal the reconnect
    // reconciliation re-arms live devices' leases before the next check;
    // without it the detector would read partition silence as fleet-wide
    // death and double-assign every strip. The whole loop is a pure
    // function of the fault plan — no RNG — and is skipped entirely when
    // the plane is inert.
    if engine.disconnect_armed() {
        let net = &cfg.plan.faults.net;
        let mut heals: Vec<f64> = net
            .partitions
            .iter()
            .filter_map(|p| net.partition_until(p.from_secs))
            .collect();
        heals.sort_by(|a, b| a.total_cmp(b));
        heals.dedup();
        let mut next_heal = 0;
        let horizon = scenario.mission_timeout().as_secs_f64() as u64;
        for sec in 0..=horizon {
            let t_secs = sec as f64;
            while next_heal < heals.len() && heals[next_heal] <= t_secs {
                let heal = SimTime::ZERO + SimDuration::from_secs_f64(heals[next_heal]);
                let rearmed = controller.reconcile_reconnect(heal);
                engine.note_reconnect_rearm(rearmed);
                next_heal += 1;
            }
            if net.partition_until(t_secs).is_some() {
                continue;
            }
            let now = SimTime::ZERO + SimDuration::from_secs_f64(t_secs);
            for dev in 0..cfg.devices {
                if fail_secs[dev as usize].is_none_or(|f| t_secs < f) {
                    let _ = controller.try_heartbeat(dev, now);
                }
            }
            let _ = controller.check_failures(now);
        }
    }

    // One frame batch per second of flight; a failed device stops
    // producing batches at its failure instant (`None` entries keep the
    // batch indexing aligned with the untruncated plan).
    let mut batch_lists: Vec<Vec<Option<u32>>> = Vec::with_capacity(cfg.devices as usize);
    for dev in 0..cfg.devices {
        let planned_end = plans[dev as usize]
            .last()
            .map(|s| s.start_secs + s.len_secs)
            .unwrap_or(TAKEOFF_SECS);
        let cutoff = fail_secs[dev as usize].unwrap_or(f64::INFINITY);
        let batches = (planned_end - TAKEOFF_SECS).max(1.0).floor() as u64;
        let mut batch_of_task: Vec<Option<u32>> = Vec::with_capacity(batches as usize);
        for b in 0..batches {
            let t_secs = TAKEOFF_SECS + b as f64;
            if t_secs >= cutoff {
                batch_of_task.push(None);
                continue;
            }
            let t = SimTime::ZERO + SimDuration::from_secs_f64(t_secs);
            engine.submit_task(t, dev, App::ObstacleAvoidance, 1);
            let task = engine.submit_task(t, dev, recognition_app, 2);
            batch_of_task.push(Some(task));
            batch_tasks.insert(task, (dev, t));
        }
        batch_lists.push(batch_of_task);
    }

    // Draws a batch task uniformly within a segment, if any was produced.
    let draw_in =
        |rng: &mut rand::rngs::SmallRng, list: &[Option<u32>], seg: &Segment| -> Option<u32> {
            let (lo, hi) = seg.batch_range();
            let hi = hi.min(list.len());
            if lo >= hi {
                return None;
            }
            list[rng.gen_range(lo..hi)]
        };

    match scenario {
        Scenario::StationaryItems => {
            for dev in 0..cfg.devices {
                let own = controller.region_of(dev);
                let Some(first) = plans[dev as usize].first() else {
                    continue;
                };
                for item in field.items_in(&own) {
                    match draw_in(&mut rng, &batch_lists[dev as usize], first) {
                        Some(task) => item_sightings.push((task, item.id)),
                        None => {
                            // The owner died before photographing this
                            // item; the heir covering its strip picks it
                            // up during the inherited sweep.
                            if let Some(&(heir, _)) = heir_strips
                                .iter()
                                .find(|(_, strip)| strip.contains(item.pos))
                            {
                                if let Some(extra) = plans[heir as usize].last() {
                                    if let Some(task) =
                                        draw_in(&mut rng, &batch_lists[heir as usize], extra)
                                    {
                                        item_sightings.push((task, item.id));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        _ => {
            // People: each sweep photographs whoever is inside the swept
            // area at the sweep midpoint. The world advances strictly
            // chronologically, so sampling events are sorted globally.
            let mut samplings: Vec<(SimTime, u32, usize)> = Vec::new(); // (mid, dev, seg)
            for dev in 0..cfg.devices {
                let cutoff = fail_secs[dev as usize].unwrap_or(f64::INFINITY);
                for (i, seg) in plans[dev as usize].iter().enumerate() {
                    let mid = seg.start_secs + seg.len_secs / 2.0;
                    if mid < cutoff {
                        samplings.push((SimTime::ZERO + SimDuration::from_secs_f64(mid), dev, i));
                    }
                }
            }
            samplings.sort_by_key(|&(t, dev, i)| (t, dev, i));
            for (mid, dev, i) in samplings {
                field.advance_people(mid);
                let seg = &plans[dev as usize][i];
                for rect in &seg.rects {
                    for person in field.people_in(rect) {
                        if let Some(task) = draw_in(&mut rng, &batch_lists[dev as usize], seg) {
                            people_sightings.push((task, person, dev));
                        }
                    }
                }
            }
        }
    }

    // --- Run the per-frame pipeline to completion. ---
    let records = engine.run_to_completion();
    let rec_done: HashMap<u32, SimTime> = records
        .iter()
        .filter(|r| batch_tasks.contains_key(&r.task))
        .map(|r| (r.task, r.done))
        .collect();

    // --- Scenario-specific aggregation. ---
    let targets_found;
    let detection;
    let mut all_records = records;
    let mut mission_end = all_records
        .iter()
        .map(|r| r.done)
        .max()
        .unwrap_or(SimTime::ZERO);

    match scenario {
        Scenario::StationaryItems => {
            let mut found: Vec<u32> = Vec::new();
            for &(task, item) in &item_sightings {
                if rec_done.contains_key(&task)
                    && rng.gen::<f64>() < detect_prob(cfg.retrain)
                    && !found.contains(&item)
                {
                    found.push(item);
                }
            }
            targets_found = found.len() as u32;
            let total = scenario.target_count() as f64;
            detection = Some(DetectionQuality {
                correct_pct: 100.0 * targets_found as f64 / total,
                false_negative_pct: 100.0 * (total - targets_found as f64) / total,
                false_positive_pct: 0.0,
            });
        }
        _ => {
            // Synchronization barrier, then deduplication at the backend.
            let sigma = embedding_sigma(cfg.retrain);
            let observations: Vec<Observation> = people_sightings
                .iter()
                .filter(|(task, _, _)| rec_done.contains_key(task))
                .map(|&(_, person, device)| Observation {
                    device,
                    embedding: observe(person, sigma, &mut rng),
                    truth: person,
                })
                .collect();
            let barrier = mission_end;
            let dedup_task = engine.submit_task(barrier, 0, App::PeopleDedup, 3);
            let dedup_records = engine.run_to_completion();
            if let Some(r) = dedup_records.iter().find(|r| r.task == dedup_task) {
                mission_end = mission_end.max(r.done);
            }
            all_records.extend(dedup_records);
            let result = deduplicate(&observations, 0.8);
            targets_found = result.unique_count as u32;
            let (correct, under, over) = score(&observations, &result);
            let denom = (correct + under + over).max(1) as f64;
            detection = Some(DetectionQuality {
                correct_pct: 100.0 * correct as f64 / denom,
                false_negative_pct: 100.0 * under as f64 / denom,
                false_positive_pct: 100.0 * over as f64 / denom,
            });
        }
    }

    // --- Battery: flight, then hover until own results land. ---
    let mut per_device_done: Vec<SimTime> = flight_ends.clone();
    for r in &all_records {
        let d = &mut per_device_done[r.device as usize];
        *d = (*d).max(r.done);
    }
    // Scenario B keeps everyone airborne until the barrier clears.
    if scenario == Scenario::MovingPeople {
        for d in per_device_done.iter_mut() {
            *d = (*d).max(mission_end);
        }
    }
    // A crashed device draws nothing after its failure instant.
    for dev in 0..cfg.devices {
        if let Some(f) = fail_secs[dev as usize] {
            per_device_done[dev as usize] = SimTime::ZERO + SimDuration::from_secs_f64(f);
        }
    }
    for dev in 0..cfg.devices {
        engine
            .battery_mut(dev)
            .draw_motion(per_device_done[dev as usize].saturating_since(SimTime::ZERO));
    }

    let timeout = scenario.mission_timeout();
    let duration = mission_end.saturating_since(SimTime::ZERO);
    let mission = MissionOutcome {
        completed: duration <= timeout,
        duration_secs: duration.as_secs_f64(),
        targets_found,
        targets_total: scenario.target_count(),
        detection,
    };
    let mut outcome = Experiment::new(cfg.clone()).assemble(
        engine,
        all_records,
        MotionPolicy::PreCharged,
        mission,
    );
    // Battery death voids completion (the paper's distributed Scenario B).
    if outcome.battery.depleted > 0 {
        outcome.mission.completed = false;
    }
    outcome
}

/// Ground truth instruction chain for a car's treasure hunt.
fn hunt_instructions(rng: &mut impl Rng, panels: u32) -> Vec<String> {
    let dirs = ['N', 'E', 'S', 'W'];
    let mut out: Vec<String> = (0..panels - 1)
        .map(|_| {
            let d = dirs[rng.gen_range(0..4)];
            let steps = rng.gen_range(1..9);
            format!("{d}{steps}")
        })
        .collect();
    out.push("G".to_string());
    out
}

fn treasure_hunt(cfg: &ExperimentConfig) -> Outcome {
    const PANELS: u32 = 8;
    const PANEL_DISTANCE_M: f64 = 25.0;
    const MAX_ATTEMPTS: u32 = 3;

    let forge = RngForge::new(cfg.seed).child("hunt");
    let mut engine = Engine::new(cfg.engine_config());
    let profile = cfg.device_profile();
    let travel = SimDuration::from_secs_f64(PANEL_DISTANCE_M / profile.speed);

    struct CarState {
        panel: u32,
        attempts: u32,
        done: Option<SimTime>,
        instructions: Vec<String>,
        rng: rand::rngs::SmallRng,
        travel_time: SimDuration,
        wait_time: SimDuration,
    }
    let mut cars: Vec<CarState> = (0..cfg.devices)
        .map(|d| {
            let mut rng = forge.indexed_stream("car", d as u64);
            let instructions = hunt_instructions(&mut rng, PANELS);
            CarState {
                panel: 0,
                attempts: 0,
                done: None,
                instructions,
                rng,
                travel_time: SimDuration::ZERO,
                wait_time: SimDuration::ZERO,
            }
        })
        .collect();

    // task id → car.
    let mut task_car: HashMap<u32, u32> = HashMap::new();
    let mut all_records: Vec<TaskRecord> = Vec::new();

    // Every car drives to its first panel, then photographs it.
    for (d, car) in cars.iter_mut().enumerate() {
        car.travel_time += travel;
        let t = SimTime::ZERO + travel;
        let task = engine.submit_task(t, d as u32, App::TextRecognition, 0);
        task_car.insert(task, d as u32);
    }

    loop {
        let records = engine.run_until_record();
        if records.is_empty() {
            break;
        }
        for r in records {
            let Some(&car_id) = task_car.get(&r.task) else {
                all_records.push(r);
                continue;
            };
            let car = &mut cars[car_id as usize];
            car.wait_time += r.latency();
            // Semantic OCR: photograph the panel, recognize, parse.
            let truth = car.instructions[car.panel as usize].clone();
            let img = SignImage::render(&truth).with_noise(0.06, &mut car.rng);
            let read = recognize(&img);
            let parsed = parse_instruction(&read);
            let correct = parsed.is_some() && read == truth;
            let now = r.done;
            all_records.push(r);
            if correct {
                car.attempts = 0;
                match parsed.expect("checked above") {
                    Instruction::Goal => {
                        car.done = Some(now);
                        continue;
                    }
                    Instruction::Move { .. } => {
                        car.panel += 1;
                        car.travel_time += travel;
                        let t = now + travel;
                        let task = engine.submit_task(t, car_id, App::TextRecognition, 0);
                        task_car.insert(task, car_id);
                    }
                }
            } else {
                car.attempts += 1;
                if car.attempts >= MAX_ATTEMPTS {
                    // Give up on reading; proceed using dead reckoning.
                    car.attempts = 0;
                    car.panel += 1;
                    if car.panel >= PANELS {
                        car.done = Some(now);
                        continue;
                    }
                    car.travel_time += travel;
                    let task = engine.submit_task(now + travel, car_id, App::TextRecognition, 0);
                    task_car.insert(task, car_id);
                } else {
                    // Re-photograph after a short repositioning.
                    let task = engine.submit_task(
                        now + SimDuration::from_secs(2),
                        car_id,
                        App::TextRecognition,
                        0,
                    );
                    task_car.insert(task, car_id);
                }
            }
        }
    }

    let mut mission_end = SimTime::ZERO;
    let mut reached = 0;
    for (d, car) in cars.iter().enumerate() {
        let end = car.done.unwrap_or(mission_end);
        mission_end = mission_end.max(end);
        if car.done.is_some() {
            reached += 1;
        }
        let b = engine.battery_mut(d as u32);
        b.draw_motion(car.travel_time);
        b.draw_idle(car.wait_time);
    }
    let mission = MissionOutcome {
        completed: reached == cfg.devices,
        duration_secs: mission_end.saturating_since(SimTime::ZERO).as_secs_f64(),
        targets_found: reached,
        targets_total: cfg.devices,
        detection: None,
    };
    Experiment::new(cfg.clone()).assemble(engine, all_records, MotionPolicy::PreCharged, mission)
}

fn car_maze(cfg: &ExperimentConfig) -> Outcome {
    const MAZE_W: u32 = 12;
    const MAZE_H: u32 = 12;
    const CELL_M: f64 = 2.0;

    let forge = RngForge::new(cfg.seed).child("car-maze");
    let mut engine = Engine::new(cfg.engine_config());
    engine.pin_placement(App::ObstacleAvoidance, PlacementSite::Edge);
    let profile = cfg.device_profile();
    let step_travel = SimDuration::from_secs_f64(CELL_M / profile.speed);

    // Each car solves its own (independent, seeded) maze; its physical
    // path is the wall-follower traversal, and every step is gated on a
    // navigation-decision task.
    struct CarState {
        steps_left: usize,
        done: Option<SimTime>,
        travel_time: SimDuration,
        wait_time: SimDuration,
    }
    let mut cars: Vec<CarState> = (0..cfg.devices)
        .map(|d| {
            let maze = Maze::generate(MAZE_W, MAZE_H, forge.child(&format!("maze{d}")));
            let t = wall_follower(&maze);
            assert!(t.reached, "wall follower must solve a perfect maze");
            CarState {
                steps_left: t.steps(),
                done: None,
                travel_time: SimDuration::ZERO,
                wait_time: SimDuration::ZERO,
            }
        })
        .collect();

    let mut task_car: HashMap<u32, u32> = HashMap::new();
    let mut all_records: Vec<TaskRecord> = Vec::new();
    for d in 0..cfg.devices {
        let task = engine.submit_task(SimTime::ZERO, d, App::Maze, 0);
        task_car.insert(task, d);
    }
    loop {
        let records = engine.run_until_record();
        if records.is_empty() {
            break;
        }
        for r in records {
            let Some(&car_id) = task_car.get(&r.task) else {
                all_records.push(r);
                continue;
            };
            let car = &mut cars[car_id as usize];
            car.wait_time += r.latency();
            let now = r.done;
            all_records.push(r);
            if car.steps_left == 0 {
                car.done = Some(now);
                continue;
            }
            car.steps_left -= 1;
            car.travel_time += step_travel;
            // Every few steps the camera also checks for obstacles.
            if car.steps_left.is_multiple_of(5) {
                engine.submit_task(now + step_travel, car_id, App::ObstacleAvoidance, 1);
            }
            let task = engine.submit_task(now + step_travel, car_id, App::Maze, 0);
            task_car.insert(task, car_id);
        }
    }

    let mut mission_end = SimTime::ZERO;
    let mut solved = 0;
    for (d, car) in cars.iter().enumerate() {
        if let Some(end) = car.done {
            mission_end = mission_end.max(end);
            solved += 1;
        }
        let b = engine.battery_mut(d as u32);
        b.draw_motion(car.travel_time);
        b.draw_idle(car.wait_time);
    }
    let mission = MissionOutcome {
        completed: solved == cfg.devices,
        duration_secs: mission_end.saturating_since(SimTime::ZERO).as_secs_f64(),
        targets_found: solved,
        targets_total: cfg.devices,
        detection: None,
    };
    Experiment::new(cfg.clone()).assemble(engine, all_records, MotionPolicy::PreCharged, mission)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::RunPlan;
    use crate::platform::Platform;

    fn mission(scenario: Scenario, platform: Platform) -> Outcome {
        Experiment::new(
            ExperimentConfig::scenario(scenario)
                .platform(platform)
                .seed(11),
        )
        .run()
    }

    #[test]
    fn scenario_a_finds_most_items_on_hivemind() {
        let o = mission(Scenario::StationaryItems, Platform::HiveMind);
        assert!(o.mission.completed);
        assert!(
            o.mission.targets_found >= 13,
            "found {}/15",
            o.mission.targets_found
        );
        assert!(o.mission.duration_secs > 30.0 && o.mission.duration_secs < 600.0);
        assert!(o.battery.mean_pct > 5.0);
    }

    #[test]
    fn scenario_b_distributed_depletes_batteries() {
        let o = mission(Scenario::MovingPeople, Platform::DistributedEdge);
        assert!(
            !o.mission.completed,
            "on-board recognition must kill the batteries (Sec. 2.3)"
        );
        assert!(o.battery.depleted > 0);
    }

    #[test]
    fn scenario_b_hivemind_completes_and_counts_people() {
        let o = mission(Scenario::MovingPeople, Platform::HiveMind);
        assert!(o.mission.completed);
        let found = o.mission.targets_found;
        assert!(
            (20..=30).contains(&found),
            "dedup count should be near 25, got {found}"
        );
        let q = o.mission.detection.expect("scenario B scores detection");
        assert!(q.correct_pct > 70.0, "quality {q:?}");
    }

    #[test]
    fn hivemind_beats_centralized_iaas_end_to_end() {
        let hm = mission(Scenario::StationaryItems, Platform::HiveMind);
        let iaas = mission(Scenario::StationaryItems, Platform::CentralizedIaaS);
        assert!(
            hm.mission.duration_secs < iaas.mission.duration_secs,
            "HiveMind {} vs IaaS {}",
            hm.mission.duration_secs,
            iaas.mission.duration_secs
        );
        assert!(
            hm.battery.mean_pct < iaas.battery.mean_pct,
            "HiveMind battery {} vs IaaS {}",
            hm.battery.mean_pct,
            iaas.battery.mean_pct
        );
    }

    #[test]
    fn treasure_hunt_cars_reach_goal() {
        let o = mission(Scenario::TreasureHunt, Platform::HiveMind);
        assert!(o.mission.completed);
        assert_eq!(o.mission.targets_found, 14);
        assert!(o.mission.duration_secs > 100.0, "driving takes minutes");
    }

    #[test]
    fn car_maze_solves_all() {
        let o = mission(Scenario::CarMaze, Platform::HiveMind);
        assert!(o.mission.completed);
        assert_eq!(o.mission.targets_found, 14);
    }

    #[test]
    fn car_missions_prefer_hivemind_over_distributed() {
        let hm = mission(Scenario::TreasureHunt, Platform::HiveMind);
        let dist = mission(Scenario::TreasureHunt, Platform::DistributedEdge);
        assert!(
            hm.mission.duration_secs < dist.mission.duration_secs,
            "OCR offload must pay off: {} vs {}",
            hm.mission.duration_secs,
            dist.mission.duration_secs
        );
    }

    #[test]
    fn retraining_improves_item_detection() {
        let none = Experiment::new(
            ExperimentConfig::scenario(Scenario::StationaryItems)
                .platform(Platform::HiveMind)
                .retrain(RetrainMode::None)
                .seed(4),
        )
        .run();
        let swarm = Experiment::new(
            ExperimentConfig::scenario(Scenario::StationaryItems)
                .platform(Platform::HiveMind)
                .retrain(RetrainMode::SwarmWide)
                .seed(4),
        )
        .run();
        assert!(swarm.mission.targets_found >= none.mission.targets_found);
    }

    #[test]
    fn drone_failure_is_absorbed_by_neighbors() {
        let healthy = Experiment::new(
            ExperimentConfig::scenario(Scenario::StationaryItems)
                .platform(Platform::HiveMind)
                .seed(11),
        )
        .run();
        let failed = Experiment::new(
            ExperimentConfig::scenario(Scenario::StationaryItems)
                .platform(Platform::HiveMind)
                .plan(RunPlan::new().fail_device(20.0, 5))
                .seed(11),
        )
        .run();
        assert!(failed.mission.completed, "the swarm absorbs one failure");
        assert!(
            failed.mission.targets_found >= healthy.mission.targets_found.saturating_sub(2),
            "inherited sweeps recover the dead drone's items: {} vs {}",
            failed.mission.targets_found,
            healthy.mission.targets_found
        );
        assert!(
            failed.mission.duration_secs > healthy.mission.duration_secs,
            "the extra sweep extends the mission: {} vs {}",
            failed.mission.duration_secs,
            healthy.mission.duration_secs
        );
    }

    #[test]
    fn failed_device_stops_consuming_battery() {
        let o = Experiment::new(
            ExperimentConfig::scenario(Scenario::StationaryItems)
                .platform(Platform::HiveMind)
                .plan(RunPlan::new().fail_device(5.0, 0))
                .seed(2),
        )
        .run();
        // Device 0 crashed at t = 5 s: ~450 J of flight = ~1% of its pack,
        // far below every survivor (who flies the whole mission).
        assert!(o.mission.completed);
        assert!(o.battery.max_pct > 10.0, "survivors fly the mission");
    }

    #[test]
    fn scenario_b_survives_a_failure_too() {
        let o = Experiment::new(
            ExperimentConfig::scenario(Scenario::MovingPeople)
                .platform(Platform::HiveMind)
                .plan(RunPlan::new().fail_device(30.0, 7))
                .seed(11),
        )
        .run();
        assert!(o.mission.completed);
        let found = o.mission.targets_found;
        assert!((18..=30).contains(&found), "count {found} near 25");
    }

    #[test]
    fn mission_determinism() {
        let a = mission(Scenario::StationaryItems, Platform::CentralizedFaaS);
        let b = mission(Scenario::StationaryItems, Platform::CentralizedFaaS);
        assert_eq!(a.mission.duration_secs, b.mission.duration_secs);
        assert_eq!(a.mission.targets_found, b.mission.targets_found);
    }
}

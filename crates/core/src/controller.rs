//! The centralized HiveMind controller (Secs. 4.2, 4.3, 4.6).
//!
//! "The controller consists of a load balancer, which partitions the
//! available work across all devices, an interface to the scheduler …, an
//! interface to communicate to the edge devices, and a monitoring system."
//! This module implements the swarm-facing half: work partitioning,
//! heartbeat-based failure detection with geometric load repartitioning
//! (Fig. 10), and the shared-state scheduler sharding that keeps the
//! centralized design scalable (Sec. 4.3's multi-scheduler escape hatch).

use hivemind_sim::faults;
use hivemind_sim::shard::ShardMap;
use hivemind_sim::time::{SimDuration, SimTime};
use hivemind_swarm::failover::{try_assign_rect, try_repartition, FailoverError, HeartbeatTracker};
use hivemind_swarm::geometry::{partition_field, Rect};

/// Timeline of one primary-controller failover (Sec. 4.6: the controller
/// itself heartbeats a warm standby; on 3 s of silence the backup takes
/// over with the replicated swarm state).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerFailover {
    /// When the primary died.
    pub failed_at: SimTime,
    /// When the backup declared it dead (after the 3 s detection window).
    pub detected_at: SimTime,
    /// When the backup finished taking over and service resumed.
    pub resumed_at: SimTime,
    /// Index of the controller instance now acting as primary.
    pub new_primary: u32,
}

/// Controller-side view of the swarm's work assignment.
#[derive(Debug, Clone)]
pub struct SwarmController {
    field: Rect,
    regions: Vec<Rect>,
    /// Extra sub-regions inherited from failed devices.
    extra: Vec<Vec<Rect>>,
    alive: Vec<bool>,
    heartbeats: HeartbeatTracker,
    /// Scheduler shards (1 = single centralized scheduler).
    shards: u32,
    /// The engine's spatial device→shard partition (identity — one
    /// shard — until aligned via [`SwarmController::align_device_shards`]).
    device_shards: ShardMap,
    /// Which controller instance is currently primary (0 at start; each
    /// failover promotes the next warm standby).
    primary: u32,
    /// Completed failovers, oldest first.
    failovers: Vec<ControllerFailover>,
    /// When a device dies, also re-home the strips it had *inherited*
    /// from earlier failovers (off by default: the historical behaviour
    /// silently drops them, and existing experiment goldens pin it).
    redistribute_orphans: bool,
}

impl SwarmController {
    /// Partitions `field` among `devices` and starts heartbeat tracking.
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0`.
    pub fn new(field: Rect, devices: u32) -> SwarmController {
        assert!(devices > 0, "need at least one device");
        SwarmController::try_new(field, devices).expect("validated above")
    }

    /// Fallible [`SwarmController::new`]: rejects an empty fleet as a
    /// value so fault-injected and model-checked configurations can
    /// treat it as an explorable outcome.
    pub fn try_new(field: Rect, devices: u32) -> Result<SwarmController, FailoverError> {
        if devices == 0 {
            return Err(FailoverError::EmptyFleet);
        }
        Ok(SwarmController {
            regions: partition_field(&field, devices),
            extra: vec![Vec::new(); devices as usize],
            alive: vec![true; devices as usize],
            heartbeats: HeartbeatTracker::new(devices),
            field,
            shards: 1,
            device_shards: ShardMap::new(devices, 1),
            primary: 0,
            failovers: Vec::new(),
            redistribute_orphans: false,
        })
    }

    /// Also re-home inherited strips when their holder dies, so no area
    /// is silently lost across chained failovers. The model-checking
    /// lane proved the default drops them (task-conservation
    /// counterexample); the fix is opt-in because existing experiment
    /// goldens pin the historical assignments.
    pub fn with_orphan_redistribution(mut self) -> SwarmController {
        self.redistribute_orphans = true;
        self
    }

    /// The mission field.
    pub fn field(&self) -> Rect {
        self.field
    }

    /// The initial region assigned to `device`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn region_of(&self, device: u32) -> Rect {
        self.regions[device as usize]
    }

    /// Fallible [`SwarmController::region_of`].
    pub fn try_region_of(&self, device: u32) -> Result<Rect, FailoverError> {
        self.regions
            .get(device as usize)
            .copied()
            .ok_or(FailoverError::DeviceOutOfRange {
                device,
                fleet: self.regions.len() as u32,
            })
    }

    /// All regions currently assigned to `device` (initial + inherited).
    pub fn assignment_of(&self, device: u32) -> Vec<Rect> {
        let mut out = vec![self.regions[device as usize]];
        out.extend(self.extra[device as usize].iter().copied());
        out
    }

    /// Whether a device is still alive.
    pub fn is_alive(&self, device: u32) -> bool {
        self.alive[device as usize]
    }

    /// Number of live devices.
    pub fn alive_count(&self) -> u32 {
        self.alive.iter().filter(|&&a| a).count() as u32
    }

    /// Records a heartbeat.
    pub fn heartbeat(&mut self, device: u32, now: SimTime) {
        self.heartbeats.beat(device, now);
    }

    /// Records a heartbeat, rejecting unknown ids instead of panicking.
    pub fn try_heartbeat(&mut self, device: u32, now: SimTime) -> Result<(), FailoverError> {
        self.heartbeats.try_beat(device, now)
    }

    /// Checks for newly failed devices at `now`; for each, repartitions
    /// its area among live neighbours and returns `(failed_device,
    /// inherited_assignments)` pairs.
    pub fn check_failures(&mut self, now: SimTime) -> Vec<(u32, Vec<(u32, Rect)>)> {
        let failed_now: Vec<u32> = self
            .heartbeats
            .failed_at(now)
            .into_iter()
            .filter(|&d| self.alive[d as usize])
            .collect();
        let mut out = Vec::new();
        for dev in failed_now {
            self.alive[dev as usize] = false;
            if self.alive_count() == 0 {
                out.push((dev, Vec::new()));
                continue;
            }
            // A fault storm can leave no survivor to absorb the area; the
            // mission simply loses it (graceful degradation, not a panic).
            let extra = self.inherit_from(dev as usize).unwrap_or_default();
            out.push((dev, extra));
        }
        out
    }

    /// Shared tail of both failure paths: hands the dead device's
    /// initial region to live neighbours and — when orphan
    /// redistribution is on — re-homes every strip the device had
    /// inherited from earlier failovers instead of dropping it.
    fn inherit_from(&mut self, dev: usize) -> Result<Vec<(u32, Rect)>, FailoverError> {
        let mut extra = try_repartition(&self.regions, &self.alive, dev)?;
        if self.redistribute_orphans {
            for orphan in std::mem::take(&mut self.extra[dev]) {
                extra.extend(try_assign_rect(&orphan, &self.regions, &self.alive, dev)?);
            }
        }
        for &(heir, rect) in &extra {
            self.extra[heir].push(rect);
        }
        Ok(extra.into_iter().map(|(d, r)| (d as u32, r)).collect())
    }

    /// Declares `device` failed immediately (the same path
    /// [`SwarmController::check_failures`] takes after a 3 s heartbeat
    /// silence — used when the failure instant is known, e.g. injected
    /// faults in experiments) and repartitions its area among live
    /// neighbours. Returns the `(heir, strip)` assignments.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range or it is the last live device;
    /// use [`SwarmController::try_force_fail`] when fault injection may
    /// produce either.
    pub fn force_fail(&mut self, device: u32) -> Vec<(u32, Rect)> {
        assert!((device as usize) < self.alive.len(), "device out of range");
        assert!(
            !self.alive[device as usize] || self.alive_count() > 1,
            "cannot fail the last device"
        );
        self.try_force_fail(device).expect("validated above")
    }

    /// Fallible [`SwarmController::force_fail`]: rejects unknown ids and
    /// killing the last survivor instead of panicking, so injected fault
    /// storms degrade gracefully.
    pub fn try_force_fail(&mut self, device: u32) -> Result<Vec<(u32, Rect)>, FailoverError> {
        if (device as usize) >= self.alive.len() {
            return Err(FailoverError::DeviceOutOfRange {
                device,
                fleet: self.alive.len() as u32,
            });
        }
        if !self.alive[device as usize] {
            return Ok(Vec::new());
        }
        if self.alive_count() == 1 {
            return Err(FailoverError::NoSurvivors);
        }
        self.alive[device as usize] = false;
        self.inherit_from(device as usize)
    }

    /// The controller instance currently acting as primary.
    pub fn primary(&self) -> u32 {
        self.primary
    }

    /// Completed primary failovers, oldest first.
    pub fn failovers(&self) -> &[ControllerFailover] {
        &self.failovers
    }

    /// Kills the primary controller at `at`. The warm standby detects the
    /// silence after the paper's 3 s heartbeat window
    /// ([`faults::DETECTION_WINDOW`]) and resumes service `takeover`
    /// later (state re-sync + scheduler restart). Returns the failover
    /// timeline; swarm state survives because the standby replicates it.
    pub fn fail_primary(&mut self, at: SimTime, takeover: SimDuration) -> ControllerFailover {
        let detected_at = at + faults::DETECTION_WINDOW;
        let fo = ControllerFailover {
            failed_at: at,
            detected_at,
            resumed_at: detected_at + takeover,
            new_primary: self.primary + 1,
        };
        self.primary += 1;
        self.failovers.push(fo);
        // Takeover grace: heartbeats sent during the outage were lost
        // with the dead primary, so without re-arming the tracker every
        // device would look silent for longer than the 3 s window the
        // moment the standby resumes, and the whole fleet would be
        // spuriously declared failed (found by the model-checking lane).
        for d in 0..self.alive.len() as u32 {
            let stale = self
                .heartbeats
                .last_beat(d)
                .is_none_or(|t| t < fo.resumed_at);
            if self.alive[d as usize] && stale {
                let _ = self.heartbeats.try_beat(d, fo.resumed_at);
            }
        }
        fo
    }

    /// Reconnect reconciliation at a partition heal: every live device's
    /// stale heartbeat is re-armed from `heal`, exactly as
    /// [`SwarmController::fail_primary`] re-arms after a takeover.
    /// Beats sent during the partition never reached the controller, so
    /// without this grace the first failure check after heal would read
    /// the partition's silence as fleet-wide device death and double-
    /// assign every strip to heirs while the original owners are still
    /// flying. A device that is genuinely dead stays silent *after* the
    /// heal too, so it is still detected — one window later, never
    /// spuriously. Returns how many devices were re-armed.
    pub fn reconcile_reconnect(&mut self, heal: SimTime) -> u32 {
        let mut rearmed = 0;
        for d in 0..self.alive.len() as u32 {
            let stale = self.heartbeats.last_beat(d).is_none_or(|t| t < heal);
            if self.alive[d as usize] && stale {
                let _ = self.heartbeats.try_beat(d, heal);
                rearmed += 1;
            }
        }
        rearmed
    }

    /// Configures scheduler sharding: with `n` shards each scheduler owns
    /// `1/n` of the task stream but keeps global visibility (Omega-style
    /// shared state).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn set_scheduler_shards(&mut self, n: u32) {
        assert!(n > 0, "need at least one scheduler shard");
        self.shards = n;
    }

    /// The shard responsible for a task id.
    pub fn shard_of(&self, task: u64) -> u32 {
        (task % self.shards as u64) as u32
    }

    /// Adopts the engine's spatial device→shard partition so the
    /// controller's monitoring plane can reason per engine shard. A map
    /// for a different fleet size is rejected (the partition would not
    /// cover this controller's devices).
    pub fn align_device_shards(&mut self, map: ShardMap) -> Result<(), FailoverError> {
        if map.devices() != self.alive.len() as u32 {
            return Err(FailoverError::DeviceOutOfRange {
                device: map.devices(),
                fleet: self.alive.len() as u32,
            });
        }
        self.device_shards = map;
        Ok(())
    }

    /// The engine shard that owns `device` (0 until aligned).
    pub fn device_shard_of(&self, device: u32) -> u32 {
        self.device_shards.shard_of(device)
    }

    /// The initial regions owned by one engine shard's device block.
    /// Devices are partitioned into contiguous id blocks, and the initial
    /// field partition follows device order, so a shard's view is a
    /// contiguous band of the field.
    pub fn shard_regions(&self, shard: u32) -> Vec<Rect> {
        self.device_shards
            .range(shard)
            .map(|d| self.regions[d as usize])
            .collect()
    }

    /// Live devices inside one engine shard — the monitoring fan-in the
    /// hub aggregates per shard instead of per device.
    pub fn shard_alive_count(&self, shard: u32) -> u32 {
        self.device_shards
            .range(shard)
            .filter(|&d| self.alive[d as usize])
            .count() as u32
    }

    /// Scheduler decision throughput model: a single shard sustains
    /// `base_rate` decisions/s; shards scale near-linearly with a small
    /// shared-state conflict penalty (Sec. 4.3 cites Omega/Tarcil-style
    /// designs).
    pub fn scheduler_capacity(&self, base_rate: f64) -> f64 {
        let n = self.shards as f64;
        base_rate * n * (1.0 - 0.03 * (n - 1.0)).max(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hivemind_sim::time::SimDuration;

    fn controller() -> SwarmController {
        SwarmController::new(Rect::new(0.0, 0.0, 120.0, 80.0), 16)
    }

    #[test]
    fn partitions_cover_field() {
        let c = controller();
        let total: f64 = (0..16).map(|d| c.region_of(d).area()).sum();
        assert!((total - c.field().area()).abs() < 1e-6);
    }

    #[test]
    fn failure_reassigns_area_to_neighbors() {
        let mut c = controller();
        // Everyone beats except device 5.
        for t in 0..10 {
            for d in 0..16 {
                if d != 5 {
                    c.heartbeat(d, SimTime::from_secs(t));
                }
            }
        }
        let events = c.check_failures(SimTime::from_secs(10));
        assert_eq!(events.len(), 1);
        let (dev, extra) = &events[0];
        assert_eq!(*dev, 5);
        assert!(!c.is_alive(5));
        assert_eq!(c.alive_count(), 15);
        let inherited: f64 = extra.iter().map(|(_, r)| r.area()).sum();
        assert!((inherited - c.region_of(5).area()).abs() < 1e-6);
        // Heirs actually track the extra area.
        for (heir, rect) in extra {
            assert!(c.assignment_of(*heir).contains(rect));
        }
    }

    #[test]
    fn failure_is_reported_once() {
        let mut c = controller();
        for t in 1..=4 {
            for d in 1..16 {
                c.heartbeat(d, SimTime::from_secs(t));
            }
        }
        let first = c.check_failures(SimTime::from_secs(5));
        assert_eq!(first.len(), 1, "only device 0 went silent");
        // Device 0 is not re-reported, and fresh beats keep others alive.
        for d in 1..16 {
            c.heartbeat(d, SimTime::from_secs(6));
        }
        let second = c.check_failures(SimTime::from_secs(6));
        assert!(second.is_empty(), "already handled");
    }

    #[test]
    fn no_failures_before_timeout() {
        let mut c = controller();
        for d in 0..16 {
            c.heartbeat(d, SimTime::from_secs(1));
        }
        assert!(c
            .check_failures(SimTime::from_secs(1) + SimDuration::from_secs(3))
            .is_empty());
    }

    #[test]
    fn force_fail_matches_heartbeat_path() {
        let mut c = controller();
        let extra = c.force_fail(5);
        assert!(!c.is_alive(5));
        assert_eq!(c.alive_count(), 15);
        let inherited: f64 = extra.iter().map(|(_, r)| r.area()).sum();
        assert!((inherited - c.region_of(5).area()).abs() < 1e-6);
        // Idempotent.
        assert!(c.force_fail(5).is_empty());
    }

    #[test]
    fn try_force_fail_degrades_gracefully() {
        let mut c = SwarmController::new(Rect::new(0.0, 0.0, 10.0, 10.0), 2);
        assert!(matches!(
            c.try_force_fail(9),
            Err(FailoverError::DeviceOutOfRange {
                device: 9,
                fleet: 2
            })
        ));
        assert!(c.try_force_fail(0).is_ok());
        // Killing the last survivor is refused, not a panic.
        assert_eq!(c.try_force_fail(1), Err(FailoverError::NoSurvivors));
        assert!(c.is_alive(1));
        // Already-dead devices stay a graceful no-op.
        assert_eq!(c.try_force_fail(0), Ok(Vec::new()));
    }

    #[test]
    fn primary_failover_follows_detection_window() {
        let mut c = controller();
        assert_eq!(c.primary(), 0);
        let fo = c.fail_primary(SimTime::from_secs(20), SimDuration::from_millis(500));
        assert_eq!(fo.detected_at, SimTime::from_secs(23));
        assert_eq!(
            fo.resumed_at,
            SimTime::from_secs(23) + SimDuration::from_millis(500)
        );
        assert_eq!(fo.new_primary, 1);
        assert_eq!(c.primary(), 1);
        assert_eq!(c.failovers().len(), 1);
        // Swarm state survives the failover (warm standby replication).
        assert_eq!(c.alive_count(), 16);
    }

    #[test]
    fn orphan_redistribution_conserves_area_across_chained_failovers() {
        let field = Rect::new(0.0, 0.0, 40.0, 10.0);
        let live_area = |c: &SwarmController| -> f64 {
            (0..4)
                .filter(|&d| c.is_alive(d))
                .flat_map(|d| c.assignment_of(d))
                .map(|r| r.area())
                .sum()
        };

        // Historical default: device 1 inherits part of 0's region, then
        // dies itself; its inherited strip vanishes with it.
        let mut legacy = SwarmController::new(field, 4);
        legacy.force_fail(0);
        let inherited: f64 = legacy.extra[1].iter().map(|r| r.area()).sum();
        assert!(inherited > 0.0, "device 1 neighbours device 0");
        legacy.force_fail(1);
        assert!(
            (field.area() - live_area(&legacy) - inherited).abs() < 1e-9,
            "legacy drops exactly the inherited strip"
        );

        // With redistribution on, the second failover re-homes the strip
        // and the live assignment always tiles the whole field.
        let mut fixed = SwarmController::new(field, 4).with_orphan_redistribution();
        fixed.force_fail(0);
        fixed.force_fail(1);
        assert!((live_area(&fixed) - field.area()).abs() < 1e-9);
        assert!(fixed.extra[1].is_empty(), "nothing left on the dead device");
    }

    #[test]
    fn takeover_grace_prevents_spurious_fleet_death() {
        let mut c = controller();
        for d in 0..16 {
            c.heartbeat(d, SimTime::from_secs(1));
        }
        // Primary dies at t = 2 s; detection (3 s) + takeover (0.5 s)
        // resumes service at t = 5.5 s. Beats sent meanwhile were lost
        // with the dead primary.
        let fo = c.fail_primary(SimTime::from_secs(2), SimDuration::from_millis(500));
        // First check after resumption: more than 3 s since anyone's
        // last *recorded* beat, but nobody actually crashed.
        let first_check = fo.resumed_at + SimDuration::from_secs(1);
        assert!(
            c.check_failures(first_check).is_empty(),
            "outage silence must not read as device failures"
        );
        assert_eq!(c.alive_count(), 16);
        // The window re-arms from the takeover: a device silent for
        // > 3 s after resumption is still detected.
        let late = fo.resumed_at + SimDuration::from_secs(4);
        for d in 1..16 {
            c.heartbeat(d, late);
        }
        let failed = c.check_failures(late);
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].0, 0);
    }

    #[test]
    fn reconnect_reconciliation_prevents_double_assignment() {
        let mut c = controller();
        for d in 0..16 {
            c.heartbeat(d, SimTime::from_secs(1));
        }
        // A 30 s partition: no beat reaches the controller. A naive
        // failure check at heal would declare all 16 devices dead and
        // hand every strip to (equally dead) heirs.
        let heal = SimTime::from_secs(31);
        let rearmed = c.reconcile_reconnect(heal);
        assert_eq!(rearmed, 16, "every live device re-arms at heal");
        assert!(
            c.check_failures(heal).is_empty(),
            "partition silence must not read as device death"
        );
        assert_eq!(c.alive_count(), 16);
        // The window re-arms from the heal: a device that stays silent
        // afterwards is still detected, one window later.
        let late = heal + SimDuration::from_secs(4);
        for d in 1..16 {
            c.heartbeat(d, late);
        }
        let failed = c.check_failures(late);
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].0, 0);
        // Already-failed devices are not resurrected by reconciliation.
        assert_eq!(c.reconcile_reconnect(late + SimDuration::from_secs(1)), 15);
        assert!(!c.is_alive(0));
    }

    #[test]
    fn fallible_constructors_reject_bad_input() {
        assert!(matches!(
            SwarmController::try_new(Rect::new(0.0, 0.0, 1.0, 1.0), 0),
            Err(FailoverError::EmptyFleet)
        ));
        let mut c = SwarmController::new(Rect::new(0.0, 0.0, 1.0, 1.0), 2);
        assert!(c.try_heartbeat(0, SimTime::ZERO).is_ok());
        assert!(matches!(
            c.try_heartbeat(7, SimTime::ZERO),
            Err(FailoverError::DeviceOutOfRange {
                device: 7,
                fleet: 2
            })
        ));
        assert!(c.try_region_of(1).is_ok());
        assert!(c.try_region_of(2).is_err());
    }

    #[test]
    fn device_shards_align_with_the_engine_partition() {
        let mut c = controller();
        // Unaligned: everything is shard 0.
        assert_eq!(c.device_shard_of(15), 0);
        assert_eq!(c.shard_alive_count(0), 16);

        // A map for the wrong fleet size is rejected.
        assert!(c.align_device_shards(ShardMap::new(8, 4)).is_err());
        c.align_device_shards(ShardMap::new(16, 4))
            .expect("aligned");

        // Contiguous blocks of 4, and every region lands in exactly one
        // shard's view.
        assert_eq!(c.device_shard_of(0), 0);
        assert_eq!(c.device_shard_of(7), 1);
        assert_eq!(c.device_shard_of(15), 3);
        let total: f64 = (0..4)
            .flat_map(|s| c.shard_regions(s))
            .map(|r| r.area())
            .sum();
        assert!((total - c.field().area()).abs() < 1e-6);

        // Per-shard liveness tracks failures.
        c.force_fail(5);
        assert_eq!(c.shard_alive_count(1), 3);
        assert_eq!(c.shard_alive_count(0), 4);
    }

    #[test]
    fn sharding_scales_decision_rate() {
        let mut c = controller();
        let single = c.scheduler_capacity(1000.0);
        c.set_scheduler_shards(4);
        let sharded = c.scheduler_capacity(1000.0);
        assert!(sharded > 3.0 * single, "near-linear scaling");
        assert!(sharded < 4.0 * single, "with a conflict penalty");
        // Shard assignment is stable and in range.
        for task in 0..100u64 {
            assert!(c.shard_of(task) < 4);
        }
    }
}

//! Regression tests for the model-checking lane's replay contract:
//! a checker-emitted counterexample schedule, replayed through the DES
//! engine, reproduces the same violation — same step, same message,
//! byte-for-byte — at any worker count. The checker and replay are pure
//! functions of the action sequence, so `HIVEMIND_THREADS` (which fans
//! the protocol checks across workers here, exactly as a CI sweep
//! would) must change wall-clock time and nothing else.

use hivemind_core::mc::{
    exchange_mutant, failover_legacy_instance, replay_schedule, retry_breaker_mutant,
};
use hivemind_core::runner::Runner;
use hivemind_sim::mc::{check, McConfig, McModel};

fn cfg(max_depth: usize) -> McConfig {
    McConfig {
        max_depth,
        ..McConfig::default()
    }
}

/// Checks one buggy protocol instance, replays its counterexample, and
/// renders everything observable about the result into one string.
fn hunt<M: McModel>(name: &str, make: impl Fn() -> M, depth: usize) -> String {
    let report = check(&make(), &cfg(depth));
    let v = report
        .violation
        .unwrap_or_else(|| panic!("{name}: the planted bug must be caught"));
    let replayed = replay_schedule(make(), &v.schedule)
        .unwrap_or_else(|| panic!("{name}: replay must reproduce the violation"));
    assert_eq!(
        replayed,
        (v.schedule.len() - 1, v.message.clone()),
        "{name}: replay must fail at the final step with the same message"
    );
    format!(
        "{name}: {} at depth {}\n{}replayed at step {} with: {}\n",
        v.message, v.depth, v.schedule, replayed.0, replayed.1
    )
}

/// One renderable unit of work per buggy protocol instance.
fn hunt_protocol(which: usize) -> String {
    match which {
        0 => hunt("failover/orphan-drop", failover_legacy_instance, 24),
        1 => hunt("breaker/skip-half-open", retry_breaker_mutant, 24),
        _ => hunt("exchange/no-dedup", exchange_mutant, 14),
    }
}

#[test]
fn counterexamples_replay_identically_across_thread_counts() {
    let jobs = [0usize, 1, 2];
    let sequential = Runner::with_threads(1).map(&jobs, |_, &j| hunt_protocol(j));
    let parallel = Runner::with_threads(8).map(&jobs, |_, &j| hunt_protocol(j));
    assert_eq!(
        sequential, parallel,
        "checker + replay output must be byte-identical at any worker count"
    );

    // The env-var path (what CI sets) must behave exactly like the
    // explicit worker counts. Process-global state: both settings are
    // exercised inside this single test, then cleaned up.
    std::env::set_var("HIVEMIND_THREADS", "1");
    let env_one = Runner::from_env().map(&jobs, |_, &j| hunt_protocol(j));
    std::env::set_var("HIVEMIND_THREADS", "8");
    let env_eight = Runner::from_env().map(&jobs, |_, &j| hunt_protocol(j));
    std::env::remove_var("HIVEMIND_THREADS");
    assert_eq!(sequential, env_one);
    assert_eq!(sequential, env_eight);

    // And the schedules are genuinely non-trivial.
    for rendered in &sequential {
        assert!(rendered.contains("replayed at step"));
    }
}

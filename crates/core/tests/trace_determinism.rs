//! Observability-layer guarantees:
//!
//! 1. traces are byte-deterministic — the same experiment produces the
//!    same JSONL/Chrome output no matter how many runner threads execute
//!    the replicate fan-out;
//! 2. enabling tracing never perturbs the simulation (identical metrics
//!    with tracing on and off);
//! 3. a short S1 run emits the expected event families (cold starts,
//!    placement decisions, queue-depth samples);
//! 4. the per-task phase spans sum to the breakdown the metrics layer
//!    reports for the same run.

use hivemind_core::prelude::*;
use hivemind_sim::stats::Summary;

fn base() -> ExperimentConfig {
    ExperimentConfig::single_app(App::FaceRecognition)
        .platform(Platform::CentralizedFaaS)
        .duration(SimDuration::from_secs(10))
        .seed(11)
        .plan(RunPlan::new().trace(true))
}

#[test]
fn traces_identical_across_thread_counts() {
    let seq = Runner::with_threads(1).run_replicates(&base(), 3);
    let par = Runner::with_threads(4).run_replicates(&base(), 3);
    let seq_traces: Vec<(u64, String, String)> = seq
        .traces()
        .map(|(s, t)| (s, t.to_jsonl(), t.to_chrome_trace()))
        .collect();
    let par_traces: Vec<(u64, String, String)> = par
        .traces()
        .map(|(s, t)| (s, t.to_jsonl(), t.to_chrome_trace()))
        .collect();
    assert_eq!(seq_traces.len(), 3, "every replicate carries a trace");
    assert_eq!(seq_traces, par_traces, "traces must not depend on threads");
    // Replicates are genuinely distinct runs, not copies of one trace.
    assert_ne!(seq_traces[0].1, seq_traces[1].1);
}

#[test]
fn tracing_never_changes_the_metrics() {
    let traced = Experiment::new(base()).run();
    let plain = Experiment::new(base().plan(RunPlan::new())).run();
    assert!(traced.trace.is_some());
    assert!(plain.trace.is_none());
    assert_eq!(traced.to_json(), plain.to_json());
}

#[test]
fn short_serverless_run_emits_the_expected_event_families() {
    let outcome = Experiment::new(base()).run();
    let trace = outcome.trace.as_ref().expect("tracing enabled");
    assert!(!trace.is_empty());
    assert!(trace.count("container", "cold_start") > 0, "cold starts");
    assert!(trace.count("sched", "placement") > 0, "placement decisions");
    assert!(trace.count("faas", "queued") > 0, "cluster queue depth");
    assert!(trace.count("net", "link.load") > 0, "link utilization");
    assert!(trace.count("net", "send") > 0, "fabric transfers");
    assert!(trace.count("task", "submit") > 0, "task lifecycle");
    // Every completed task gets exactly one overall span.
    assert_eq!(trace.count("task", "task"), outcome.tasks.len());
    // Events come out in timestamp order.
    let mut last = SimTime::ZERO;
    for ev in trace.events() {
        assert!(ev.ts >= last, "events sorted by timestamp");
        last = ev.ts;
    }
}

#[test]
fn hybrid_run_samples_edge_queues() {
    // Edge queue depth only exists where devices run work locally —
    // HiveMind's synthesized filter tier does.
    let outcome = Experiment::new(base().platform(Platform::HiveMind)).run();
    let trace = outcome.trace.as_ref().expect("tracing enabled");
    assert!(trace.count("edge", "queue") > 0, "edge queue depth");
}

#[test]
fn phase_spans_sum_to_the_breakdown_totals() {
    // On the hybrid platform end-to-end latency also contains on-device
    // filter time that belongs to no breakdown phase, so the per-phase
    // match must hold there as much as on the all-cloud platform.
    for platform in [Platform::CentralizedFaaS, Platform::HiveMind] {
        let outcome = Experiment::new(base().platform(platform)).run();
        let trace = outcome.trace.as_ref().expect("tracing enabled");
        let sample_sum = |s: &Summary| s.mean() * s.len() as f64;
        let tasks = &outcome.tasks;
        // The metrics layer folds instantiation into its management
        // summary (the paper's Fig. 3 convention); the trace keeps the
        // phases separate, so compare against the raw per-phase sums.
        let expected = [
            ("network", sample_sum(&tasks.network)),
            (
                "management",
                sample_sum(&tasks.management) - sample_sum(&tasks.instantiation),
            ),
            ("instantiation", sample_sum(&tasks.instantiation)),
            ("data_io", sample_sum(&tasks.data_io)),
            ("exec", sample_sum(&tasks.exec)),
        ];
        let mut any_nonzero = false;
        for (name, secs) in expected {
            let traced = trace.span_total("task", name).as_secs_f64();
            assert!(
                (traced - secs).abs() < 1e-6,
                "{platform:?}/{name}: trace {traced} s vs breakdown {secs} s"
            );
            any_nonzero |= secs > 0.0;
        }
        assert!(any_nonzero, "the run exercised at least one phase");
        // And the overall task spans sum to the total latency.
        let total = trace.span_total("task", "task").as_secs_f64();
        assert!((total - sample_sum(&tasks.total)).abs() < 1e-6);
    }
}

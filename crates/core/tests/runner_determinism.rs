//! Regression tests for the determinism contract of the replicate
//! runner: the same root seed must produce byte-identical serialized
//! outcomes at *any* worker count. Worker count only changes wall-clock
//! time, never results — replicate seeds are derived from the root
//! before fan-out, and outcomes are reassembled in replicate order.

use hivemind_apps::scenario::Scenario;
use hivemind_apps::suite::App;
use hivemind_core::experiment::ExperimentConfig;
use hivemind_core::runner::Runner;
use hivemind_core::Platform;

/// App benchmark: one root seed, six replicates, sequential vs eight
/// workers, byte-for-byte identical JSON.
#[test]
fn app_outcomes_identical_across_thread_counts() {
    let base = ExperimentConfig::single_app(App::FaceRecognition)
        .platform(Platform::HiveMind)
        .duration_secs(10.0)
        .seed(42);
    let sequential = Runner::with_threads(1).run_replicates(&base, 6);
    let parallel = Runner::with_threads(8).run_replicates(&base, 6);

    assert_eq!(sequential.seeds(), parallel.seeds());
    for (i, (a, b)) in sequential
        .outcomes()
        .iter()
        .zip(parallel.outcomes())
        .enumerate()
    {
        assert_eq!(a.to_json(), b.to_json(), "replicate {i} diverged");
    }
    assert_eq!(sequential.to_json(), parallel.to_json());
}

/// Mission scenario: the fuller code path (mission logic, batteries,
/// detection scoring) stays deterministic under parallel fan-out too.
#[test]
fn mission_outcomes_identical_across_thread_counts() {
    let base = ExperimentConfig::scenario(Scenario::StationaryItems)
        .platform(Platform::HiveMind)
        .seed(7);
    let sequential = Runner::with_threads(1).run_replicates(&base, 4);
    let parallel = Runner::with_threads(8).run_replicates(&base, 4);
    assert_eq!(sequential.to_json(), parallel.to_json());
}

/// Config sweeps (the fig binaries' shape) come back in sweep order
/// regardless of which worker finished first.
#[test]
fn config_sweep_order_is_input_order() {
    let configs: Vec<ExperimentConfig> = [
        Platform::CentralizedFaaS,
        Platform::DistributedEdge,
        Platform::HiveMind,
    ]
    .map(|p| {
        ExperimentConfig::single_app(App::ObstacleAvoidance)
            .platform(p)
            .duration_secs(10.0)
            .seed(3)
    })
    .to_vec();
    let sequential = Runner::with_threads(1).run_configs(&configs);
    let parallel = Runner::with_threads(8).run_configs(&configs);
    assert_eq!(sequential.len(), parallel.len());
    for (a, b) in sequential.iter().zip(&parallel) {
        assert_eq!(a.to_json(), b.to_json());
    }
}

/// `HIVEMIND_THREADS` is honored end to end (isolated in its own test
/// binary section; no other test here reads the environment).
#[test]
fn env_var_controls_worker_count() {
    std::env::set_var("HIVEMIND_THREADS", "8");
    assert_eq!(Runner::from_env().threads(), 8);
    std::env::set_var("HIVEMIND_THREADS", "1");
    assert_eq!(Runner::from_env().threads(), 1);
    std::env::remove_var("HIVEMIND_THREADS");
    assert!(Runner::from_env().threads() >= 1);
}

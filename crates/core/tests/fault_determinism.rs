//! Fault-plane guarantees:
//!
//! 1. an all-defaults [`FaultPlan`] is inert — byte-identical metrics to
//!    a config that never mentions faults at all;
//! 2. fault and recovery trace events are byte-deterministic for a fixed
//!    seed regardless of runner thread count;
//! 3. the retry policy masks moderate chaos (>= 95% completion at 10%
//!    function faults + 5% packet loss under a bounded give-up policy);
//! 4. invalid configurations surface as [`ConfigError`]s from
//!    `Experiment::try_new` instead of panics deep inside the run;
//! 5. a mid-mission controller failover still finds every target.

use hivemind_core::prelude::*;
use hivemind_sim::faults as fl;

fn faulty() -> ExperimentConfig {
    ExperimentConfig::single_app(App::FaceRecognition)
        .platform(Platform::CentralizedFaaS)
        .duration(SimDuration::from_secs(15))
        .seed(11)
        .plan(
            RunPlan::new()
                .faults(
                    FaultPlan::default()
                        .packet_loss(0.05)
                        .function_fault_rate(0.10)
                        .server_crash(1, 5.0, 5.0)
                        .slo(SimDuration::from_secs(5)),
                )
                .trace(true),
        )
}

#[test]
fn default_plan_is_inert() {
    let cfg = ExperimentConfig::single_app(App::FaceRecognition)
        .platform(Platform::CentralizedFaaS)
        .duration(SimDuration::from_secs(10))
        .seed(3);
    let plain = Experiment::new(cfg.clone()).run();
    let planned = Experiment::new(cfg.plan(RunPlan::new().faults(FaultPlan::default()))).run();
    assert!(planned.recovery.is_none(), "inert plan reports no recovery");
    assert_eq!(plain.to_json(), planned.to_json());
}

#[test]
fn fault_traces_identical_across_thread_counts() {
    let seq = Runner::with_threads(1).run_replicates(&faulty(), 3);
    let par = Runner::with_threads(4).run_replicates(&faulty(), 3);
    let dump = |set: &RunSet| -> Vec<(u64, String, String)> {
        set.traces()
            .map(|(s, t)| (s, t.to_jsonl(), t.to_chrome_trace()))
            .collect()
    };
    assert_eq!(
        dump(&seq),
        dump(&par),
        "fault events must not depend on threads"
    );
    let outcomes: Vec<String> = seq.outcomes().iter().map(|o| o.to_json()).collect();
    let par_outcomes: Vec<String> = par.outcomes().iter().map(|o| o.to_json()).collect();
    assert_eq!(
        outcomes, par_outcomes,
        "recovery metrics must not depend on threads"
    );
}

#[test]
fn fault_events_appear_in_the_trace() {
    let outcome = Experiment::new(faulty()).run();
    let trace = outcome.trace.as_ref().expect("tracing enabled");
    let injected = trace.count(fl::TRACE_CAT, fl::EV_INJECTED);
    let recovered = trace.count(fl::TRACE_CAT, fl::EV_RECOVERED);
    assert!(injected > 0, "faults were injected");
    assert!(recovered > 0, "faults were recovered from");
    let r = outcome.recovery.expect("active plan yields recovery stats");
    assert_eq!(r.server_crashes, 1);
    assert!(r.tasks_retried > 0, "the fault rate forced retries");
}

#[test]
fn bounded_retry_masks_moderate_chaos() {
    let outcome = Experiment::new(
        ExperimentConfig::single_app(App::FaceRecognition)
            .platform(Platform::CentralizedFaaS)
            .duration(SimDuration::from_secs(30))
            .seed(7)
            .plan(
                RunPlan::new().faults(
                    FaultPlan::default()
                        .function_fault_rate(0.10)
                        .packet_loss(0.05)
                        .retry(RetryPolicy::bounded(4, SimDuration::from_millis(50))),
                ),
            ),
    )
    .run();
    let r = outcome.recovery.expect("active plan yields recovery stats");
    let completed = outcome.tasks.len() as u64;
    let issued = completed + r.tasks_lost;
    assert!(
        completed as f64 >= 0.95 * issued as f64,
        "retry must carry >= 95% of tasks: {completed}/{issued}"
    );
    assert!(r.tasks_retried > 0, "completion was achieved via retries");
}

#[test]
fn controller_failover_still_finds_every_target() {
    let base = ExperimentConfig::scenario(Scenario::StationaryItems)
        .platform(Platform::HiveMind)
        .seed(11);
    let healthy = Experiment::new(base.clone()).run();
    let failover = Experiment::new(
        base.plan(RunPlan::new().faults(FaultPlan::default().controller_failover(60.0))),
    )
    .run();
    assert!(failover.mission.completed);
    assert_eq!(
        failover.mission.targets_found,
        healthy.mission.targets_found
    );
    let r = failover
        .recovery
        .expect("active plan yields recovery stats");
    assert_eq!(r.controller_failovers, 1);
    assert!(
        r.mean_detection_secs >= fl::DETECTION_WINDOW.as_secs_f64(),
        "failover cannot be detected faster than the heartbeat window"
    );
}

#[test]
fn bad_device_failure_configs_are_rejected() {
    // Device id beyond the fleet.
    let err = Experiment::try_new(
        ExperimentConfig::scenario(Scenario::StationaryItems)
            .platform(Platform::HiveMind)
            .plan(RunPlan::new().fail_device(10.0, 99)),
    )
    .expect_err("device 99 of 16 must be rejected");
    assert!(matches!(
        err,
        ConfigError::FailedDeviceOutOfRange { device: 99, .. }
    ));

    // Failure scheduled past the mission horizon.
    let err = Experiment::try_new(
        ExperimentConfig::scenario(Scenario::StationaryItems)
            .platform(Platform::HiveMind)
            .plan(RunPlan::new().fail_device(1.0e9, 0)),
    )
    .expect_err("failure beyond the mission timeout must be rejected");
    assert!(matches!(err, ConfigError::FailureOutsideMission { .. }));

    // Malformed fault plans are caught at the same gate.
    let err = Experiment::try_new(
        ExperimentConfig::single_app(App::FaceRecognition)
            .platform(Platform::CentralizedFaaS)
            .plan(RunPlan::new().faults(FaultPlan::default().packet_loss(1.5))),
    )
    .expect_err("loss probability over 1 must be rejected");
    assert!(matches!(err, ConfigError::InvalidFaultPlan(_)));
}

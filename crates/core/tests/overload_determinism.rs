//! Overload-plane guarantees:
//!
//! 1. an all-defaults [`OverloadPolicy`] is inert — byte-identical
//!    metrics to a config that never mentions overload at all;
//! 2. shed, spillover, and breaker trace events appear in the JSONL
//!    trace and are byte-deterministic for a fixed seed regardless of
//!    runner thread count;
//! 3. invalid policies surface as [`ConfigError`]s from
//!    `Experiment::try_new` instead of panics deep inside the run.

use hivemind_core::prelude::*;
use hivemind_sim::overload as ov;

/// A one-server cluster at 4x load: the admission queue saturates and
/// the policy below sheds, spills, and (under the storm) breaks.
fn overloaded() -> ExperimentConfig {
    ExperimentConfig::single_app(App::Slam)
        .platform(Platform::CentralizedFaaS)
        .servers(1)
        .duration_secs(8.0)
        .rate_scale(4.0)
        .seed(13)
        .plan(
            RunPlan::new()
                .overload(
                    OverloadPolicy::default()
                        .queue_bound(8)
                        .queue_deadline(SimDuration::from_secs(2))
                        .spillover(),
                )
                .trace(true),
        )
}

#[test]
fn default_policy_is_inert() {
    let cfg = ExperimentConfig::single_app(App::FaceRecognition)
        .platform(Platform::CentralizedFaaS)
        .duration(SimDuration::from_secs(10))
        .seed(3);
    let plain = Experiment::new(cfg.clone()).run();
    let gated = Experiment::new(cfg.plan(RunPlan::new().overload(OverloadPolicy::default()))).run();
    assert!(gated.shed.is_none(), "inert policy reports no shed stats");
    assert_eq!(plain.to_json(), gated.to_json());
}

#[test]
fn shed_and_spillover_events_appear_in_the_trace() {
    let outcome = Experiment::new(overloaded()).run();
    let trace = outcome.trace.as_ref().expect("tracing enabled");
    let shed = trace.count("sched", ov::EV_SHED);
    let spilled = trace.count("task", "spillover");
    assert!(
        shed > 0,
        "the saturated queue must emit sched/shed instants"
    );
    assert!(spilled > 0, "spillover must emit task/spillover instants");
    let jsonl = trace.to_jsonl();
    assert!(
        jsonl.contains("\"shed\""),
        "shed events reach the JSONL export"
    );
    assert!(jsonl.contains("\"spillover\""));
    let s = outcome.shed.expect("active policy yields shed stats");
    assert_eq!(s.invocations_shed, shed as u64);
    assert_eq!(s.tasks_spilled, spilled as u64);
}

#[test]
fn breaker_events_appear_in_the_trace() {
    // A 90% fault storm under a give-up retry policy trips the breaker;
    // the cooldown then elapses within the run, so the half-open probe
    // and close transitions appear too.
    let outcome = Experiment::new(
        ExperimentConfig::single_app(App::FaceRecognition)
            .platform(Platform::CentralizedFaaS)
            .duration_secs(20.0)
            .seed(9)
            .plan(
                RunPlan::new()
                    .faults(
                        FaultPlan::default()
                            .function_fault_rate(0.9)
                            .retry(RetryPolicy::bounded(2, SimDuration::from_millis(20))),
                    )
                    .overload(OverloadPolicy::default().breaker(3, SimDuration::from_secs(2)))
                    .trace(true),
            ),
    )
    .run();
    let trace = outcome.trace.as_ref().expect("tracing enabled");
    let opens = trace.count(ov::BREAKER_TRACE_CAT, ov::EV_BREAKER_OPEN);
    let half = trace.count(ov::BREAKER_TRACE_CAT, ov::EV_BREAKER_HALF_OPEN);
    assert!(opens > 0, "the storm must trip the breaker");
    assert!(half > 0, "the cooldown must elapse into a half-open probe");
    let s = outcome.shed.expect("active policy yields shed stats");
    assert_eq!(s.breaker_opens as usize, opens);
    assert!(s.shed_breaker > 0, "an open breaker fails fast");
}

#[test]
fn overload_traces_identical_across_thread_counts() {
    let seq = Runner::with_threads(1).run_replicates(&overloaded(), 3);
    let par = Runner::with_threads(4).run_replicates(&overloaded(), 3);
    let dump = |set: &RunSet| -> Vec<(u64, String, String)> {
        set.traces()
            .map(|(s, t)| (s, t.to_jsonl(), t.to_chrome_trace()))
            .collect()
    };
    assert_eq!(
        dump(&seq),
        dump(&par),
        "shed/breaker events must not depend on threads"
    );
    let outcomes: Vec<String> = seq.outcomes().iter().map(|o| o.to_json()).collect();
    let par_outcomes: Vec<String> = par.outcomes().iter().map(|o| o.to_json()).collect();
    assert_eq!(
        outcomes, par_outcomes,
        "shed stats must not depend on threads"
    );
}

#[test]
fn bad_overload_policies_are_rejected() {
    let err = Experiment::try_new(
        ExperimentConfig::single_app(App::FaceRecognition)
            .platform(Platform::CentralizedFaaS)
            .plan(RunPlan::new().overload(OverloadPolicy::default().per_app_limit(0))),
    )
    .expect_err("a zero concurrency cap must be rejected");
    assert!(matches!(err, ConfigError::InvalidOverloadPolicy(_)));
    assert!(err.to_string().contains("per_app_limit"));
}

//! Tier-2 allocation regression test (slow path setup; excluded from the
//! default suite). Run with:
//!
//! ```text
//! cargo test --release -p hivemind-core --test alloc_steady_state -- --ignored
//! ```
//!
//! The engine's hot loop is designed to be allocation-free in steady
//! state: calendar buckets, the pending-effect run and its merge
//! scratch, per-epoch delivery/completion buffers, and the FIFO
//! completion scratch all hold their high-water capacity. This test pins
//! that property with a counting global allocator: after a warm-up
//! phase, one full barrier epoch of a mission-scale workload must
//! perform **zero** heap allocations.
//!
//! Must run in release: debug builds shadow every calendar queue with a
//! reference `BinaryHeap`, which allocates by design.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hivemind_apps::suite::App;
use hivemind_core::engine::{Engine, EngineConfig};
use hivemind_core::platform::Platform;
use hivemind_sim::time::{SimDuration, SimTime};

/// Counts allocations (and growth reallocations) without changing
/// behavior; frees are not counted — returning memory is always fine.
/// Only the thread that opted in via [`MEASURE`] is counted: the libtest
/// harness runs its own bookkeeping on other threads concurrently, and a
/// stray allocation there is not the engine's problem.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    // `const`-initialized so reading it from inside the allocator is a
    // plain TLS load that can never itself allocate or recurse.
    static MEASURE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

#[inline]
fn counted() -> bool {
    // try_with: TLS may already be torn down during thread exit.
    MEASURE.try_with(std::cell::Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counted() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counted() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
#[ignore = "tier-2 allocation regression: release-only (debug builds shadow the calendar queues)"]
fn steady_state_epoch_allocates_nothing() {
    if cfg!(debug_assertions) {
        eprintln!("skipping: debug builds shadow the calendar queues with a heap");
        return;
    }
    MEASURE.with(|m| m.set(true));
    let mut cfg = EngineConfig::testbed(Platform::HiveMind);
    cfg.devices = 256;
    cfg.servers = 192;
    cfg.shards = 1;
    let mut engine = Engine::new(cfg);
    // The fig17-style mission slice: every device captures once per
    // second for 40 s, half edge-placed, half cloud-placed.
    for i in 0..40u64 {
        for dev in 0..256 {
            let app = if dev % 2 == 0 {
                App::FaceRecognition
            } else {
                App::DroneDetection
            };
            engine.submit_task(SimTime::from_secs(i), dev, app, dev);
        }
    }
    // Warm-up: run most of the mission so every hot buffer has reached
    // its high-water capacity. History accumulators (invocation table,
    // time series, meters) legitimately double at geometrically spaced
    // instants, so the measured window below is placed where none of
    // those boundaries fall for this deterministic workload.
    let mut records = Vec::with_capacity(32_768);
    engine.run_until_into(SimTime::from_secs(26), &mut records);
    assert!(
        !records.is_empty(),
        "warm-up must complete tasks, or the measurement below is vacuous"
    );

    // Measure: three full capture waves (thousands of events through
    // every engine layer) of the steady mid-mission phase. The run is
    // deterministic, so a capacity boundary landing inside the window
    // would fail on every machine identically — that is the regression
    // signal, not flakiness. If a workload or scheduling change moves an
    // amortized growth boundary into this window, the count will be a
    // handful and the window should be re-tuned; a hot-path buffer
    // losing its capacity shows up as thousands.
    let before = ALLOCS.load(Ordering::Relaxed);
    engine.run_until_into(
        SimTime::from_secs(26) + SimDuration::from_secs(3),
        &mut records,
    );
    let during = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        during, 0,
        "steady-state epochs allocated {during} times; a hot-path buffer lost its capacity"
    );

    // Sanity: the engine still finishes the mission correctly afterwards.
    let rest = engine.run_to_completion();
    assert!(records.len() + rest.len() >= 40 * 256 / 2);
}

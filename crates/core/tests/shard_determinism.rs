//! Regression tests for the sharded engine's determinism contract: the
//! shard count partitions the event loop spatially but must never change
//! an output byte. Every replicate derives its RNG lanes per device and
//! merges boundary events through the `(time, lane, seq)`-keyed barrier,
//! so `RunPlan::shards` (or `HIVEMIND_SHARDS`) is purely a parallelism
//! knob — like `HIVEMIND_THREADS`, which it composes with (shards split
//! one replicate, threads fan replicates out).

use hivemind_apps::scenario::Scenario;
use hivemind_apps::suite::App;
use hivemind_core::experiment::{Experiment, ExperimentConfig, RunPlan};
use hivemind_core::runner::Runner;
use hivemind_core::Platform;
use hivemind_sim::faults::FaultPlan;
use hivemind_sim::overload::OverloadPolicy;

fn sharded(cfg: &ExperimentConfig, shards: u32) -> String {
    Experiment::new(cfg.clone().plan(cfg.plan.clone().shards(shards)))
        .run()
        .to_json()
}

/// Mission scenario (the fullest code path: controller, batteries,
/// detection scoring): byte-identical Outcome JSON at 1, 2, and 8
/// shards.
#[test]
fn mission_outcome_identical_across_shard_counts() {
    let base = ExperimentConfig::scenario(Scenario::StationaryItems)
        .platform(Platform::HiveMind)
        .seed(11);
    let reference = sharded(&base, 1);
    for shards in [2u32, 8] {
        assert_eq!(
            reference,
            sharded(&base, shards),
            "{shards} shards diverged"
        );
    }
}

/// The shard × thread grid from the acceptance criteria: every
/// combination of `shards ∈ {1, 2, 8}` and `threads ∈ {1, 4}` yields the
/// same serialized RunSet.
#[test]
fn shard_thread_grid_yields_one_byte_stream() {
    let base = ExperimentConfig::single_app(App::FaceRecognition)
        .platform(Platform::HiveMind)
        .duration_secs(10.0)
        .seed(42);
    let reference = Runner::with_threads(1)
        .run_replicates(&base.clone().plan(RunPlan::new().shards(1)), 3)
        .to_json();
    for shards in [1u32, 2, 8] {
        for threads in [1usize, 4] {
            let cfg = base.clone().plan(RunPlan::new().shards(shards));
            let got = Runner::with_threads(threads)
                .run_replicates(&cfg, 3)
                .to_json();
            assert_eq!(
                reference, got,
                "diverged at {shards} shards x {threads} threads"
            );
        }
    }
}

/// Faults cross shard boundaries (packet loss re-rolls, device crashes,
/// a controller failover mid-mission) — all drawn from per-device lanes,
/// so the schedule is still shard-invariant.
#[test]
fn faulted_mission_is_shard_invariant() {
    let base = ExperimentConfig::scenario(Scenario::MovingPeople)
        .platform(Platform::HiveMind)
        .seed(5)
        .plan(
            RunPlan::new().faults(
                FaultPlan::default()
                    .packet_loss(0.05)
                    .device_mtbf(1200.0)
                    .controller_failover(60.0),
            ),
        );
    let reference = sharded(&base, 1);
    for shards in [2u32, 8] {
        assert_eq!(
            reference,
            sharded(&base, shards),
            "{shards} shards diverged"
        );
    }
}

/// Overload control active (bounded queues, breaker, spillover): the
/// admission decisions observe the same event order at any shard count.
#[test]
fn overloaded_run_is_shard_invariant() {
    let base = ExperimentConfig::single_app(App::DroneDetection)
        .platform(Platform::HiveMind)
        .duration_secs(20.0)
        .rate_scale(4.0)
        .seed(9)
        .plan(
            RunPlan::new().overload(
                OverloadPolicy::default()
                    .per_app_limit(4)
                    .queue_bound(16)
                    .spillover(),
            ),
        );
    let reference = sharded(&base, 1);
    for shards in [2u32, 8] {
        assert_eq!(
            reference,
            sharded(&base, shards),
            "{shards} shards diverged"
        );
    }
}

/// A shard count above the fleet size clamps to one device per shard
/// rather than erroring when it comes from the environment-style `0`
/// path; the pinned path validates instead (covered in the experiment
/// unit tests). Here: devices == shards is legal and byte-identical.
#[test]
fn one_device_per_shard_is_legal_and_identical() {
    let base = ExperimentConfig::scenario(Scenario::StationaryItems)
        .platform(Platform::HiveMind)
        .devices(8)
        .seed(3);
    assert_eq!(sharded(&base, 1), sharded(&base, 8));
}

/// `HIVEMIND_SHARDS` is honored when the plan leaves shards at 0
/// (isolated: no other test in this binary reads the environment —
/// they all pin the count through the plan).
#[test]
fn env_var_controls_shard_count() {
    let base = ExperimentConfig::scenario(Scenario::StationaryItems)
        .platform(Platform::HiveMind)
        .seed(13);
    let pinned = sharded(&base, 2);
    std::env::set_var("HIVEMIND_SHARDS", "2");
    let from_env = Experiment::new(base.clone()).run().to_json();
    std::env::remove_var("HIVEMIND_SHARDS");
    let unset = Experiment::new(base).run().to_json();
    assert_eq!(pinned, from_env);
    assert_eq!(pinned, unset);
}

//! Disconnect-plane guarantees:
//!
//! 1. an all-defaults [`DisconnectPolicy`] is inert — byte-identical
//!    metrics to a config that never mentions the plane at all;
//! 2. a partitioned run with autonomy armed is byte-identical across
//!    `shards ∈ {1, 2, 8}` × `threads ∈ {1, 4}` — lease expiry, degraded
//!    execution, buffering and replay are all pure functions of the
//!    fault plan and the event stream;
//! 3. a mission under repeated partitions still completes with the
//!    plane armed, the controller re-arms every live device at each
//!    heal, and no buffered update is lost or double-delivered;
//! 4. the plane only ever *adds* the `reconnect` block to the Outcome
//!    JSON — every other byte matches the hold-only baseline when no
//!    lease expires.

use hivemind_core::prelude::*;
use hivemind_core::runner::RunSet;

fn partitioned(policy: DisconnectPolicy) -> ExperimentConfig {
    ExperimentConfig::single_app(App::FaceRecognition)
        .platform(Platform::CentralizedFaaS)
        .duration(SimDuration::from_secs(25))
        .seed(17)
        .plan(
            RunPlan::new()
                .faults(FaultPlan::default().partition(5.0, 15.0))
                .disconnect(policy),
        )
}

#[test]
fn default_disconnect_policy_is_inert() {
    let cfg = ExperimentConfig::scenario(Scenario::StationaryItems)
        .platform(Platform::HiveMind)
        .seed(11);
    let plain = Experiment::new(cfg.clone()).run();
    let planned =
        Experiment::new(cfg.plan(RunPlan::new().disconnect(DisconnectPolicy::default()))).run();
    assert!(planned.reconnect.is_none(), "inert plane reports nothing");
    assert_eq!(plain.to_json(), planned.to_json());
}

#[test]
fn partitioned_reconnect_is_identical_across_shards_and_threads() {
    let base = partitioned(DisconnectPolicy::default().autonomous());
    let dump =
        |set: &RunSet| -> Vec<String> { set.outcomes().iter().map(|o| o.to_json()).collect() };
    let reference = {
        let set = Runner::with_threads(1)
            .run_replicates(&base.clone().plan(base.plan.clone().shards(1)), 3);
        dump(&set)
    };
    // The reference run actually exercised the plane.
    let probe = Experiment::new(base.clone()).run();
    let r = probe.reconnect.expect("armed plane populates stats");
    assert!(r.tasks_degraded > 0 && r.updates_replayed > 0);
    for shards in [1u32, 2, 8] {
        for threads in [1usize, 4] {
            let cfg = base.clone().plan(base.plan.clone().shards(shards));
            let got = dump(&Runner::with_threads(threads).run_replicates(&cfg, 3));
            assert_eq!(
                reference, got,
                "diverged at {shards} shards x {threads} threads"
            );
        }
    }
}

#[test]
fn mission_survives_repeated_partitions() {
    let base = ExperimentConfig::scenario(Scenario::StationaryItems)
        .platform(Platform::HiveMind)
        .seed(11)
        .plan(
            RunPlan::new()
                .faults(
                    FaultPlan::default()
                        .partition(30.0, 60.0)
                        .partition(120.0, 150.0),
                )
                .disconnect(DisconnectPolicy::default().autonomous()),
        );
    let o = Experiment::new(base.clone()).run();
    assert!(o.mission.completed, "autonomy carries the mission");
    let r = o.reconnect.expect("armed plane populates stats");
    assert_eq!(r.partitions, 2, "one reconciliation per heal");
    assert!(
        r.devices_rearmed >= 32,
        "every live device re-arms at each heal, got {}",
        r.devices_rearmed
    );
    assert_eq!(
        r.updates_buffered,
        r.updates_replayed + r.updates_expired,
        "exactly-once: nothing still buffered after the final heal"
    );
    assert_eq!(r.duplicates_dropped, 0);
    // The same mission is shard-invariant with the plane armed.
    let reference = o.to_json();
    for shards in [2u32, 8] {
        let sharded = Experiment::new(base.clone().plan(base.plan.clone().shards(shards)))
            .run()
            .to_json();
        assert_eq!(reference, sharded, "{shards} shards diverged");
    }
}

#[test]
fn unexpired_lease_changes_only_the_reconnect_block() {
    // With the lease outliving the outage the device never degrades, so
    // the armed run must behave byte-for-byte like the hold-only
    // baseline except for reporting the (empty) reconnect session.
    let hold_only = Experiment::new(partitioned(DisconnectPolicy::default())).run();
    let armed = Experiment::new(partitioned(
        DisconnectPolicy::default()
            .autonomous()
            .lease_timeout(SimDuration::from_secs(60)),
    ))
    .run();
    assert!(hold_only.reconnect.is_none());
    let r = armed.reconnect.expect("armed plane populates stats");
    assert_eq!(r.tasks_degraded, 0);
    assert_eq!(r.updates_replayed, 0);
    let strip = |json: &str| -> String {
        let start = json
            .find(",\"reconnect\":{")
            .expect("reconnect block present");
        let rest = &json[start + 1..];
        let depth_end = rest.find('}').expect("block closes") + 1;
        format!("{}{}", &json[..start], &rest[depth_end..])
    };
    assert_eq!(hold_only.to_json(), strip(&armed.to_json()));
}

//! Composable simulation components.
//!
//! HiveMind's simulation spans several independently developed substrates —
//! the network fabric, the serverless cluster, the swarm itself. Rather
//! than forcing them all into a single event enum, each substrate is a
//! [`Component`]: a state machine that accepts *commands*, announces when it
//! next needs the clock ([`Component::next_wakeup`]), and emits *outputs*
//! when advanced to a given instant.
//!
//! The orchestrator (in `hivemind-core`) repeatedly picks the earliest
//! wake-up across all components, advances that component, and routes its
//! outputs as commands into the others. This keeps every substrate
//! independently unit-testable while preserving exact event interleaving.

use crate::time::SimTime;

/// A time-driven state machine that can be composed with others.
///
/// # Contract
///
/// * `handle(now, cmd)` may update internal state and change the value
///   returned by `next_wakeup`.
/// * `next_wakeup()` returns the earliest instant at which the component has
///   internal work to do, or `None` if it is quiescent until the next
///   command.
/// * `advance(now, out)` is called with `now >= next_wakeup()`; the
///   component performs all work due at or before `now` and pushes any
///   externally visible results into `out`.
///
/// Implementations must be monotone: neither `handle` nor `advance` is ever
/// called with a `now` earlier than a previously observed one.
pub trait Component {
    /// Inputs routed into this component.
    type Command;
    /// Outputs produced by this component for the orchestrator to route.
    type Output;

    /// Applies an external command at virtual time `now`.
    fn handle(&mut self, now: SimTime, cmd: Self::Command);

    /// The earliest instant at which this component needs to run, if any.
    fn next_wakeup(&self) -> Option<SimTime>;

    /// Performs all internal work due at or before `now`, appending any
    /// outputs to `out`.
    fn advance(&mut self, now: SimTime, out: &mut Vec<Self::Output>);
}

/// Returns the earliest wake-up among a set of candidates.
///
/// `None` entries mean "quiescent" and are skipped.
///
/// # Examples
///
/// ```rust
/// use hivemind_sim::component::earliest;
/// use hivemind_sim::time::SimTime;
///
/// let next = earliest([
///     None,
///     Some(SimTime::from_secs(5)),
///     Some(SimTime::from_secs(2)),
/// ]);
/// assert_eq!(next, Some(SimTime::from_secs(2)));
/// ```
pub fn earliest<I>(candidates: I) -> Option<SimTime>
where
    I: IntoIterator<Item = Option<SimTime>>,
{
    candidates.into_iter().flatten().min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// A toy component: echoes each command back after a fixed delay.
    ///
    /// The in-flight set is a time-ordered min-heap, so `advance` pops
    /// exactly the due entries in `(time, value)` order instead of
    /// filter + retain + sort over the whole backlog — the same shape the
    /// real delay queues (`net::fabric`, `faas` pipelines) use.
    struct DelayLine {
        delay: SimDuration,
        inflight: BinaryHeap<Reverse<(SimTime, u32)>>,
    }

    impl Component for DelayLine {
        type Command = u32;
        type Output = u32;

        fn handle(&mut self, now: SimTime, cmd: u32) {
            self.inflight.push(Reverse((now + self.delay, cmd)));
        }

        fn next_wakeup(&self) -> Option<SimTime> {
            self.inflight.peek().map(|&Reverse((t, _))| t)
        }

        fn advance(&mut self, now: SimTime, out: &mut Vec<u32>) {
            while let Some(&Reverse((t, v))) = self.inflight.peek() {
                if t > now {
                    break;
                }
                self.inflight.pop();
                out.push(v);
            }
        }
    }

    #[test]
    fn delay_line_roundtrip() {
        let mut d = DelayLine {
            delay: SimDuration::from_millis(10),
            inflight: BinaryHeap::new(),
        };
        assert_eq!(d.next_wakeup(), None);
        d.handle(SimTime::ZERO, 7);
        let wake = d.next_wakeup().unwrap();
        assert_eq!(wake, SimTime::ZERO + SimDuration::from_millis(10));
        let mut out = vec![];
        d.advance(wake, &mut out);
        assert_eq!(out, vec![7]);
        assert_eq!(d.next_wakeup(), None);
    }

    #[test]
    fn delay_line_drains_in_time_order() {
        let mut d = DelayLine {
            delay: SimDuration::from_millis(10),
            inflight: BinaryHeap::new(),
        };
        // Staggered sends come back in send order; same-instant sends
        // come back in value order (matching the old sort semantics).
        d.handle(SimTime::from_secs(1), 3);
        d.handle(SimTime::ZERO, 9);
        d.handle(SimTime::ZERO, 2);
        let mut out = vec![];
        d.advance(SimTime::from_secs(5), &mut out);
        assert_eq!(out, vec![2, 9, 3]);
        assert_eq!(d.next_wakeup(), None);
    }

    #[test]
    fn earliest_skips_quiescent() {
        assert_eq!(earliest([None, None]), None);
        assert_eq!(
            earliest([
                Some(SimTime::from_secs(3)),
                None,
                Some(SimTime::from_secs(1))
            ]),
            Some(SimTime::from_secs(1))
        );
    }
}

//! Disconnected-operation policy: lease-based autonomy during wireless
//! partitions, bounded update buffering, and exactly-once replay at heal.
//!
//! The fault plane's partitions (`sim::faults`) simply *hold* every
//! wireless transfer until the window closes — a partitioned fleet
//! silently stalls. A [`DisconnectPolicy`] arms the alternative the
//! paper's precursor UAV platform flags as the hard requirement for edge
//! swarms: devices detect cloud loss when the lease piggybacked on their
//! heartbeat acks expires, flip to autonomous degraded on-device
//! execution (the brownout spillover path from `sim::overload`), and
//! buffer beats/results/sensor summaries in a bounded ring. When the
//! partition heals, a reconnect session replays the buffer through the
//! engine's `(time, lane, seq)` effect order with session-scoped dedup,
//! so every buffered update lands exactly once, and the controller
//! re-arms stale heartbeats under the takeover-grace rules instead of
//! declaring the whole (merely silent) fleet dead.
//!
//! ## Determinism contract
//!
//! Like the overload plane, the disconnect plane draws **no randomness of
//! its own**: whether a device is autonomous is a pure function of the
//! fault plan's partition windows and the lease timeout; buffer contents
//! and replay order are pure functions of the event stream. The degraded
//! execution it triggers samples service times from the *same* hub lane
//! the spillover path uses. The inert default ([`DisconnectPolicy::default`])
//! is bit-for-bit invisible: no state is allocated, no epoch boundary
//! moves, no stream is perturbed.

use crate::faults::DETECTION_WINDOW;
use crate::time::SimDuration;

/// Trace category used by every disconnect-plane event.
pub const TRACE_CAT: &str = "disconnect";
/// Trace event name emitted when a device's lease expires and it flips
/// to autonomous operation.
pub const EV_AUTONOMOUS: &str = "autonomous";
/// Trace event name emitted when an update is buffered for replay.
pub const EV_BUFFERED: &str = "buffered";
/// Trace event name emitted at a heal instant when a reconnect
/// reconciliation session starts.
pub const EV_RECONNECT: &str = "reconnect";
/// Trace event name emitted per buffered update replayed at heal.
pub const EV_REPLAYED: &str = "replayed";

/// Disconnected-operation policy attached to a run.
///
/// The default policy is **inert**: [`DisconnectPolicy::is_active`]
/// returns `false` and every consumer skips the plane entirely, leaving
/// the simulation byte-identical to one that never heard of it. Arming
/// autonomy only changes behaviour while a partition from the run's
/// [`FaultPlan`](crate::faults::FaultPlan) covers the wireless segment.
///
/// # Examples
///
/// ```rust
/// use hivemind_sim::disconnect::DisconnectPolicy;
/// use hivemind_sim::time::SimDuration;
///
/// let policy = DisconnectPolicy::default()
///     .autonomous()
///     .lease_timeout(SimDuration::from_secs(2))
///     .buffer_cap(32);
/// assert!(policy.is_active());
/// assert!(policy.validate().is_ok());
/// assert!(!DisconnectPolicy::default().is_active());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisconnectPolicy {
    /// Master switch: when `true`, devices cut off by a partition execute
    /// their tasks on-device with the degraded model instead of stalling
    /// behind held transfers, and buffer result summaries for replay.
    pub autonomy: bool,
    /// How long a device trusts its last lease grant (the ack of its
    /// latest heartbeat) before assuming the cloud is unreachable.
    /// Default: the paper's 3 s heartbeat detection window.
    pub lease_timeout: SimDuration,
    /// Capacity of each device's buffered-update ring. When full, the
    /// oldest update is evicted and counted as explicitly expired —
    /// bounded memory, no silent growth.
    pub buffer_cap: u32,
    /// Speedup of the degraded on-device model relative to the full edge
    /// model (same semantics as the overload plane's spillover knob).
    pub degraded_speedup: f64,
    /// Accuracy points lost per task executed on the degraded model.
    pub accuracy_penalty_pct: f64,
    /// Size of one replayed update summary on the wire at heal time
    /// (compressed result metadata, not the raw sensor payload).
    pub summary_bytes: u64,
}

impl Default for DisconnectPolicy {
    fn default() -> Self {
        DisconnectPolicy {
            autonomy: false,
            lease_timeout: DETECTION_WINDOW,
            buffer_cap: 64,
            degraded_speedup: 4.0,
            accuracy_penalty_pct: 15.0,
            summary_bytes: 4096,
        }
    }
}

impl DisconnectPolicy {
    /// `true` if the plane is armed. The tuning knobs only matter once
    /// autonomy is enabled; a default-valued policy is inert.
    pub fn is_active(&self) -> bool {
        self.autonomy
    }

    /// Arms lease-based autonomous operation during partitions.
    pub fn autonomous(mut self) -> Self {
        self.autonomy = true;
        self
    }

    /// Sets the lease timeout (device-side cloud-loss detection window).
    pub fn lease_timeout(mut self, timeout: SimDuration) -> Self {
        self.lease_timeout = timeout;
        self
    }

    /// Sets the per-device buffered-update ring capacity.
    pub fn buffer_cap(mut self, cap: u32) -> Self {
        self.buffer_cap = cap;
        self
    }

    /// Sets the degraded-model speedup and accuracy penalty applied to
    /// tasks executed autonomously.
    pub fn degraded(mut self, speedup: f64, accuracy_penalty_pct: f64) -> Self {
        self.degraded_speedup = speedup;
        self.accuracy_penalty_pct = accuracy_penalty_pct;
        self
    }

    /// Sets the wire size of one replayed update summary.
    pub fn summary_bytes(mut self, bytes: u64) -> Self {
        self.summary_bytes = bytes;
        self
    }

    /// Checks every knob. Returns a human-readable description of the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.lease_timeout <= SimDuration::ZERO {
            return Err(format!(
                "disconnect.lease_timeout must be positive, got {}",
                self.lease_timeout
            ));
        }
        if self.buffer_cap == 0 {
            return Err("disconnect.buffer_cap must be at least 1".into());
        }
        if !(self.degraded_speedup.is_finite() && self.degraded_speedup >= 1.0) {
            return Err(format!(
                "disconnect.degraded_speedup must be >= 1, got {}",
                self.degraded_speedup
            ));
        }
        if !(0.0..=100.0).contains(&self.accuracy_penalty_pct) {
            return Err(format!(
                "disconnect.accuracy_penalty_pct must be in [0, 100], got {}",
                self.accuracy_penalty_pct
            ));
        }
        if self.summary_bytes == 0 {
            return Err("disconnect.summary_bytes must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_inert_and_valid() {
        let p = DisconnectPolicy::default();
        assert!(!p.is_active());
        assert!(p.validate().is_ok());
        assert_eq!(p.lease_timeout, DETECTION_WINDOW);
    }

    #[test]
    fn builders_chain_and_activate() {
        let p = DisconnectPolicy::default()
            .autonomous()
            .lease_timeout(SimDuration::from_secs(5))
            .buffer_cap(8)
            .degraded(2.0, 30.0)
            .summary_bytes(1024);
        assert!(p.is_active());
        assert_eq!(p.lease_timeout, SimDuration::from_secs(5));
        assert_eq!(p.buffer_cap, 8);
        assert_eq!(p.degraded_speedup, 2.0);
        assert_eq!(p.accuracy_penalty_pct, 30.0);
        assert_eq!(p.summary_bytes, 1024);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn tuning_knobs_alone_stay_inert() {
        // Only the autonomy switch arms the plane; pre-tuning knobs on an
        // unarmed policy must not flip consumers into the active path.
        assert!(!DisconnectPolicy::default().buffer_cap(4).is_active());
        assert!(!DisconnectPolicy::default()
            .lease_timeout(SimDuration::from_secs(1))
            .is_active());
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        assert!(DisconnectPolicy::default()
            .lease_timeout(SimDuration::ZERO)
            .validate()
            .is_err());
        assert!(DisconnectPolicy::default()
            .buffer_cap(0)
            .validate()
            .is_err());
        assert!(DisconnectPolicy::default()
            .degraded(0.5, 10.0)
            .validate()
            .is_err());
        assert!(DisconnectPolicy::default()
            .degraded(f64::NAN, 10.0)
            .validate()
            .is_err());
        assert!(DisconnectPolicy::default()
            .degraded(4.0, 150.0)
            .validate()
            .is_err());
        assert!(DisconnectPolicy::default()
            .summary_bytes(0)
            .validate()
            .is_err());
    }
}

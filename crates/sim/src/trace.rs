//! Structured simulation tracing.
//!
//! Every experiment-facing question about *where time goes* — the
//! four-way latency breakdown, queueing effects, cold-start storms —
//! needs event-level visibility that end-of-run summaries cannot give.
//! This module provides it:
//!
//! * [`TraceEvent`] — one structured span / instant / counter sample,
//!   stamped with virtual time and a resource track.
//! * [`Tracer`] — the sink abstraction. [`NullTracer`] discards,
//!   [`TraceBuffer`] collects.
//! * [`TraceHandle`] — a cheaply clonable handle shared by every
//!   component of one simulation. When disabled it holds no buffer and
//!   every emission is a single predictable branch — **zero-cost when
//!   disabled**: no allocation, no formatting, no locking.
//! * [`Trace`] — the finished, time-sorted event list with two
//!   exporters: line-delimited JSON ([`Trace::to_jsonl`]) and the Chrome
//!   `trace_event` format ([`Trace::to_chrome_trace`]), loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! Tracing never draws from any random stream and never influences
//! simulation state, so enabling it cannot change a single metric; and
//! because events are emitted in deterministic engine order, two runs of
//! the same seed produce byte-identical exports regardless of host
//! thread count.
//!
//! # Examples
//!
//! ```rust
//! use hivemind_sim::time::{SimDuration, SimTime};
//! use hivemind_sim::trace::{ArgValue, TraceHandle};
//!
//! let tracer = TraceHandle::enabled();
//! tracer.instant("sched", "placement", 3, SimTime::ZERO, vec![("server", ArgValue::U64(3))]);
//! tracer.span(
//!     "task",
//!     "exec",
//!     0,
//!     SimTime::ZERO,
//!     SimDuration::from_millis(250),
//!     vec![],
//! );
//! let trace = tracer.finish().expect("enabled handle yields a trace");
//! assert_eq!(trace.len(), 2);
//! assert!(trace.to_chrome_trace().contains("\"ph\":\"X\""));
//!
//! // A disabled handle costs one branch and produces nothing.
//! let off = TraceHandle::disabled();
//! off.counter("net", "link.load", 0, SimTime::ZERO, 1.0);
//! assert!(off.finish().is_none());
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use crate::time::{SimDuration, SimTime};

/// A typed argument value attached to a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (serialized with shortest round-trip formatting).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Free-form text (JSON-escaped on export).
    Str(String),
}

impl ArgValue {
    fn write_json(&self, out: &mut String) {
        match self {
            ArgValue::U64(v) => out.push_str(&v.to_string()),
            ArgValue::I64(v) => out.push_str(&v.to_string()),
            ArgValue::F64(v) => out.push_str(&format!("{v:?}")),
            ArgValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            ArgValue::Str(s) => write_json_string(out, s),
        }
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// Escapes `s` as a JSON string literal (with surrounding quotes).
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// What kind of record a [`TraceEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A complete span: something with a start time and a duration
    /// (Chrome phase `X`).
    Span,
    /// A point-in-time marker (Chrome phase `i`).
    Instant,
    /// A sampled counter value; the timeline of samples for one
    /// `(name, track)` pair forms a step function (Chrome phase `C`).
    Counter,
}

impl EventKind {
    fn label(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Instant => "instant",
            EventKind::Counter => "counter",
        }
    }
}

/// One structured trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual start time.
    pub ts: SimTime,
    /// Span duration (zero for instants and counters).
    pub dur: SimDuration,
    /// Record kind.
    pub kind: EventKind,
    /// Category (subsystem): `"task"`, `"sched"`, `"container"`,
    /// `"net"`, `"faas"`, `"edge"`, …
    pub cat: &'static str,
    /// Event name within the category.
    pub name: &'static str,
    /// Resource lane the event belongs to (device id, server id, link
    /// index…). Rendered as the Chrome `tid` so each resource gets its
    /// own row in the viewer.
    pub track: u32,
    /// Typed key/value details.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// A sink for [`TraceEvent`]s.
///
/// The two stock implementations are [`NullTracer`] (discards, reports
/// disabled) and [`TraceBuffer`] (collects). Components hold a
/// [`TraceHandle`], which implements this trait by delegating to a
/// shared buffer when enabled.
pub trait Tracer {
    /// Whether events will be kept. Emission sites must check this
    /// before doing any per-event work (formatting, allocation) so a
    /// disabled tracer costs a single branch.
    fn enabled(&self) -> bool;
    /// Records one event. May be a no-op when disabled.
    fn record(&mut self, ev: TraceEvent);
}

/// A [`Tracer`] that drops everything; [`Tracer::enabled`] is `false`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&mut self, _ev: TraceEvent) {}
}

/// An in-memory [`Tracer`] collecting events in emission order.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
}

impl TraceBuffer {
    /// An empty buffer.
    pub fn new() -> TraceBuffer {
        TraceBuffer::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Removes and returns all buffered events.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

impl Tracer for TraceBuffer {
    fn enabled(&self) -> bool {
        true
    }
    fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
}

/// A cheaply clonable tracing handle shared across one simulation's
/// components.
///
/// Disabled handles (the default) carry no buffer: every emission
/// helper checks [`TraceHandle::is_enabled`] first and returns
/// immediately, so the cost of compiled-in tracing is one branch per
/// potential event. Enabled handles append to a shared [`TraceBuffer`]
/// through interior mutability, which is sound because each simulation
/// replicate runs on exactly one thread.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle {
    buf: Option<Rc<RefCell<TraceBuffer>>>,
}

impl TraceHandle {
    /// A handle that discards everything (the default).
    pub fn disabled() -> TraceHandle {
        TraceHandle { buf: None }
    }

    /// A handle that collects into a fresh shared buffer.
    pub fn enabled() -> TraceHandle {
        TraceHandle {
            buf: Some(Rc::new(RefCell::new(TraceBuffer::new()))),
        }
    }

    /// Whether this handle keeps events.
    pub fn is_enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Records a pre-built event (no-op when disabled).
    pub fn emit(&self, ev: TraceEvent) {
        if let Some(buf) = &self.buf {
            buf.borrow_mut().record(ev);
        }
    }

    /// Emits a complete span.
    pub fn span(
        &self,
        cat: &'static str,
        name: &'static str,
        track: u32,
        ts: SimTime,
        dur: SimDuration,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.emit(TraceEvent {
            ts,
            dur,
            kind: EventKind::Span,
            cat,
            name,
            track,
            args,
        });
    }

    /// Emits an instant marker.
    pub fn instant(
        &self,
        cat: &'static str,
        name: &'static str,
        track: u32,
        ts: SimTime,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.emit(TraceEvent {
            ts,
            dur: SimDuration::ZERO,
            kind: EventKind::Instant,
            cat,
            name,
            track,
            args,
        });
    }

    /// Emits a counter sample.
    pub fn counter(
        &self,
        cat: &'static str,
        name: &'static str,
        track: u32,
        ts: SimTime,
        value: f64,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.emit(TraceEvent {
            ts,
            dur: SimDuration::ZERO,
            kind: EventKind::Counter,
            cat,
            name,
            track,
            args: vec![("value", ArgValue::F64(value))],
        });
    }

    /// Drains the shared buffer into a finished [`Trace`], or `None`
    /// when the handle is disabled. Other clones of the handle remain
    /// valid (and start filling a now-empty buffer).
    pub fn finish(&self) -> Option<Trace> {
        self.buf
            .as_ref()
            .map(|buf| Trace::new(buf.borrow_mut().take()))
    }
}

impl Tracer for TraceHandle {
    fn enabled(&self) -> bool {
        self.is_enabled()
    }
    fn record(&mut self, ev: TraceEvent) {
        self.emit(ev);
    }
}

/// A finished, time-ordered trace.
///
/// Construction stably sorts events by start time, so records emitted
/// by different components during the same engine tick keep their
/// deterministic emission order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Builds a trace from raw events (stable-sorted by start time).
    pub fn new(mut events: Vec<TraceEvent>) -> Trace {
        events.sort_by_key(|e| e.ts);
        Trace { events }
    }

    /// The events, in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sum of span durations for one `(cat, name)` pair — the bridge
    /// between a trace and the run's summary statistics.
    pub fn span_total(&self, cat: &str, name: &str) -> SimDuration {
        self.events
            .iter()
            .filter(|e| e.kind == EventKind::Span && e.cat == cat && e.name == name)
            .map(|e| e.dur)
            .sum()
    }

    /// Number of events matching `(cat, name)` of any kind.
    pub fn count(&self, cat: &str, name: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.cat == cat && e.name == name)
            .count()
    }

    /// Serializes to line-delimited JSON: one event object per line,
    /// timestamps and durations in integer nanoseconds. Byte-
    /// deterministic for a given event sequence.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96);
        for e in &self.events {
            out.push_str(&format!(
                "{{\"ts\":{},\"dur\":{},\"kind\":\"{}\",\"cat\":\"{}\",\"name\":\"{}\",\"track\":{},\"args\":{{",
                e.ts.as_nanos(),
                e.dur.as_nanos(),
                e.kind.label(),
                e.cat,
                e.name,
                e.track,
            ));
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{k}\":"));
                v.write_json(&mut out);
            }
            out.push_str("}}\n");
        }
        out
    }

    /// Serializes to the Chrome `trace_event` JSON format (an object
    /// with a `traceEvents` array), loadable in `chrome://tracing` and
    /// Perfetto. Timestamps are microseconds as required by the format;
    /// all events share `pid` 0 and use [`TraceEvent::track`] as `tid`.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 128 + 64);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ts_us = e.ts.as_nanos() as f64 / 1e3;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{:?},",
                e.name,
                e.cat,
                match e.kind {
                    EventKind::Span => "X",
                    EventKind::Instant => "i",
                    EventKind::Counter => "C",
                },
                ts_us,
            ));
            if e.kind == EventKind::Span {
                out.push_str(&format!("\"dur\":{:?},", e.dur.as_nanos() as f64 / 1e3));
            }
            if e.kind == EventKind::Instant {
                out.push_str("\"s\":\"t\",");
            }
            out.push_str(&format!("\"pid\":0,\"tid\":{},\"args\":{{", e.track));
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{k}\":"));
                v.write_json(&mut out);
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let h = TraceHandle::disabled();
        assert!(!h.is_enabled());
        h.span("task", "exec", 0, t(0), SimDuration::from_secs(1), vec![]);
        h.instant("sched", "placement", 0, t(0), vec![]);
        h.counter("net", "load", 0, t(0), 3.0);
        assert!(h.finish().is_none());
    }

    #[test]
    fn clones_share_one_buffer() {
        let a = TraceHandle::enabled();
        let b = a.clone();
        a.counter("x", "c", 0, t(1), 1.0);
        b.counter("x", "c", 0, t(2), 2.0);
        let trace = a.finish().unwrap();
        assert_eq!(trace.len(), 2);
        // finish() drained the shared buffer.
        assert_eq!(b.finish().unwrap().len(), 0);
    }

    #[test]
    fn trace_sorts_stably_by_time() {
        let h = TraceHandle::enabled();
        h.instant("a", "late", 0, t(5), vec![]);
        h.instant("a", "early", 0, t(1), vec![]);
        h.instant("b", "tied-first", 0, t(1), vec![]);
        let trace = h.finish().unwrap();
        let names: Vec<&str> = trace.events().iter().map(|e| e.name).collect();
        // Stable: "early" (emitted before "tied-first" at the same ts)
        // keeps emission order.
        assert_eq!(names, vec!["early", "tied-first", "late"]);
    }

    #[test]
    fn span_totals_and_counts() {
        let h = TraceHandle::enabled();
        h.span(
            "task",
            "exec",
            0,
            t(0),
            SimDuration::from_millis(100),
            vec![],
        );
        h.span(
            "task",
            "exec",
            1,
            t(1),
            SimDuration::from_millis(250),
            vec![],
        );
        h.span(
            "task",
            "network",
            0,
            t(2),
            SimDuration::from_millis(40),
            vec![],
        );
        let trace = h.finish().unwrap();
        assert_eq!(
            trace.span_total("task", "exec"),
            SimDuration::from_millis(350)
        );
        assert_eq!(trace.count("task", "exec"), 2);
        assert_eq!(trace.count("task", "nope"), 0);
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let h = TraceHandle::enabled();
        h.instant(
            "sched",
            "placement",
            7,
            t(1),
            vec![("server", ArgValue::U64(7))],
        );
        h.counter("net", "link.load", 2, t(2), 1.5);
        let jsonl = h.finish().unwrap().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"ts\":1000000000,\"dur\":0,\"kind\":\"instant\",\"cat\":\"sched\",\"name\":\"placement\",\"track\":7,\"args\":{\"server\":7}}"
        );
        assert!(lines[1].contains("\"value\":1.5"));
    }

    #[test]
    fn chrome_trace_has_required_fields() {
        let h = TraceHandle::enabled();
        h.span(
            "task",
            "exec",
            3,
            t(1),
            SimDuration::from_millis(250),
            vec![("task", ArgValue::U64(9))],
        );
        h.instant("container", "cold_start", 1, t(1), vec![]);
        h.counter("faas", "running", 0, t(2), 12.0);
        let chrome = h.finish().unwrap().to_chrome_trace();
        assert!(chrome.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(chrome.ends_with("]}"));
        assert!(chrome.contains("\"ph\":\"X\",\"ts\":1000000.0,\"dur\":250000.0"));
        assert!(chrome.contains("\"ph\":\"i\""));
        assert!(chrome.contains("\"ph\":\"C\""));
        assert!(chrome.contains("\"tid\":3"));
    }

    #[test]
    fn strings_are_json_escaped() {
        let mut out = String::new();
        ArgValue::Str("a\"b\\c\nd\u{1}".to_string()).write_json(&mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn null_tracer_is_disabled() {
        let mut n = NullTracer;
        assert!(!Tracer::enabled(&n));
        n.record(TraceEvent {
            ts: t(0),
            dur: SimDuration::ZERO,
            kind: EventKind::Instant,
            cat: "x",
            name: "y",
            track: 0,
            args: vec![],
        });
    }
}

//! Deterministic, forkable randomness.
//!
//! Every random draw in a HiveMind simulation descends from a single seed
//! through [`RngForge`], which derives independent named streams. Because
//! each subsystem owns its own stream, adding a draw in (say) the network
//! model cannot shift the values observed by the scheduler — runs stay
//! comparable across code changes, which is essential when calibrating
//! figures.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A factory for independent, reproducible random streams.
///
/// # Examples
///
/// ```rust
/// use hivemind_sim::rng::RngForge;
/// use rand::Rng;
///
/// let forge = RngForge::new(42);
/// let mut a = forge.stream("network");
/// let mut b = forge.stream("network");
/// // Streams with the same name are identical...
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// // ...and different names give different streams.
/// let mut c = forge.stream("scheduler");
/// let _ = c.gen::<u64>();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngForge {
    seed: u64,
}

impl RngForge {
    /// Creates a forge rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        RngForge { seed }
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives the named random stream.
    ///
    /// The same `(seed, name)` pair always yields the same stream.
    pub fn stream(&self, name: &str) -> SmallRng {
        SmallRng::seed_from_u64(self.seed ^ fnv1a(name.as_bytes()))
    }

    /// Derives a stream parameterized by a name and an index, for per-entity
    /// streams such as "one per drone".
    pub fn indexed_stream(&self, name: &str, index: u64) -> SmallRng {
        let mixed = fnv1a(name.as_bytes()) ^ splitmix(index);
        SmallRng::seed_from_u64(self.seed ^ mixed)
    }

    /// Derives a child forge, for subsystems that themselves spawn streams.
    pub fn child(&self, name: &str) -> RngForge {
        RngForge {
            seed: splitmix(self.seed ^ fnv1a(name.as_bytes())),
        }
    }

    /// Derives the forge for replicate `index` of a multi-replicate run.
    ///
    /// See [`replicate_seed`] for the derivation and its guarantees.
    pub fn replicate(&self, index: u64) -> RngForge {
        RngForge {
            seed: replicate_seed(self.seed, index),
        }
    }
}

/// Derives the root seed for replicate `index` of a multi-replicate run.
///
/// The derivation composes two SplitMix64 finalizer passes: the index is
/// first diffused on its own, mixed into the root, then diffused again.
/// Each pass is a bijection on `u64`, so for a fixed root the map
/// `index → seed` is injective — replicate seeds can never collide, for
/// any replicate count. Replicate 0 deliberately does *not* map to the
/// root seed itself, so "1 replicate" and "a bare run" stay distinct
/// sample points.
pub fn replicate_seed(root: u64, index: u64) -> u64 {
    splitmix(root ^ splitmix(index))
}

/// FNV-1a hash of a byte string; stable across platforms and Rust versions
/// (unlike `DefaultHasher`), which keeps seeds reproducible forever.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer; decorrelates sequential indices.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Convenience: draws a value in `[0, 1)` from any RNG.
pub fn unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    rng.gen::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_reproducible() {
        let f1 = RngForge::new(1);
        let f2 = RngForge::new(1);
        let v1: Vec<u64> = (0..8).map(|_| f1.stream("x").gen()).collect();
        let v2: Vec<u64> = (0..8).map(|_| f2.stream("x").gen()).collect();
        assert_eq!(v1, v2);
    }

    #[test]
    fn different_names_decorrelate() {
        let f = RngForge::new(1);
        let a: u64 = f.stream("a").gen();
        let b: u64 = f.stream("b").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a: u64 = RngForge::new(1).stream("x").gen();
        let b: u64 = RngForge::new(2).stream("x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_decorrelate() {
        let f = RngForge::new(9);
        let a: u64 = f.indexed_stream("drone", 0).gen();
        let b: u64 = f.indexed_stream("drone", 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn child_forges_are_independent() {
        let f = RngForge::new(3);
        let c1 = f.child("faas");
        let c2 = f.child("net");
        assert_ne!(c1.seed(), c2.seed());
        let a: u64 = c1.stream("s").gen();
        let b: u64 = c2.stream("s").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn replicate_seeds_are_unique_and_reproducible() {
        let f = RngForge::new(17);
        let mut seen = std::collections::HashSet::new();
        for i in 0..1024u64 {
            let s = f.replicate(i).seed();
            assert_eq!(s, replicate_seed(17, i));
            assert!(seen.insert(s), "replicate {i} collided");
        }
        assert!(!seen.contains(&17), "replicate 0 must differ from the root");
    }

    #[test]
    fn unit_in_range() {
        let f = RngForge::new(5);
        let mut r = f.stream("u");
        for _ in 0..1000 {
            let v = unit(&mut r);
            assert!((0.0..1.0).contains(&v));
        }
    }
}

//! Virtual time for the discrete-event simulator.
//!
//! All simulation time is integer nanoseconds, so event ordering is exact
//! and runs are bit-for-bit reproducible — no floating-point accumulation
//! error, no platform-dependent rounding.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, measured in nanoseconds since the start of
/// the simulation.
///
/// # Examples
///
/// ```rust
/// use hivemind_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_secs_f64(1.5);
/// assert_eq!(t.as_nanos(), 1_500_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, measured in nanoseconds.
///
/// # Examples
///
/// ```rust
/// use hivemind_sim::time::SimDuration;
///
/// let d = SimDuration::from_millis(3) + SimDuration::from_micros(500);
/// assert_eq!(d.as_secs_f64(), 0.0035);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" sentinel
    /// when merging wake-up times across components.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant a whole number of seconds after the origin.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds since the origin.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition that saturates at [`SimTime::MAX`] instead of
    /// wrapping; used when scheduling "never" wake-ups.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// Negative and non-finite inputs clamp to zero; values beyond the
    /// representable range clamp to [`SimDuration::MAX`]. This makes the
    /// constructor total, which matters because service times are routinely
    /// produced by sampled distributions.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos.round() as u64)
        }
    }

    /// Creates a duration from fractional milliseconds (clamping like
    /// [`SimDuration::from_secs_f64`]).
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// Creates a duration from fractional microseconds (clamping like
    /// [`SimDuration::from_secs_f64`]).
    pub fn from_micros_f64(micros: f64) -> Self {
        Self::from_secs_f64(micros / 1e6)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Multiplies the duration by a non-negative factor, clamping on
    /// overflow.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `factor` is negative.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "duration factor must be non-negative");
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Subtraction saturating at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics on underflow; use [`SimDuration::saturating_sub`] otherwise.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.0;
        if n >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if n >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if n >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{n}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(2) + SimDuration::from_millis(250);
        assert_eq!(t.as_nanos(), 2_250_000_000);
        assert_eq!(t - SimTime::from_secs(2), SimDuration::from_millis(250));
    }

    #[test]
    fn from_secs_f64_clamps_pathological_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn duration_display_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn mul_div_and_sum() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        let total: SimDuration = (0..4).map(|_| d).sum();
        assert_eq!(total, SimDuration::from_millis(40));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn fractional_constructors() {
        assert_eq!(SimDuration::from_millis_f64(1.5).as_nanos(), 1_500_000);
        assert_eq!(SimDuration::from_micros_f64(2.5).as_nanos(), 2_500);
        assert_eq!(SimDuration::from_millis(3).as_millis_f64(), 3.0);
        assert_eq!(SimDuration::from_micros(7).as_micros_f64(), 7.0);
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}

//! Service-time and workload distributions.
//!
//! The queueing models throughout the stack draw latencies, service times,
//! and inter-arrival gaps from [`Dist`]. All variants are parameterized in
//! *seconds* and sampled into [`SimDuration`]s; negative or non-finite
//! samples clamp to zero (see [`SimDuration::from_secs_f64`]).

use rand::Rng;

use crate::time::SimDuration;

/// A distribution over non-negative durations.
///
/// # Examples
///
/// ```rust
/// use hivemind_sim::dist::Dist;
/// use hivemind_sim::rng::RngForge;
///
/// let d = Dist::lognormal_median_sigma(0.250, 0.4); // median 250 ms
/// let mut rng = RngForge::new(1).stream("svc");
/// let sample = d.sample(&mut rng);
/// assert!(sample.as_secs_f64() > 0.0);
/// assert!((d.mean_secs() - 0.25 * (0.4f64 * 0.4 / 2.0).exp()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Always the same value.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound (seconds).
        lo: f64,
        /// Exclusive upper bound (seconds).
        hi: f64,
    },
    /// Exponential with the given mean (seconds).
    Exponential {
        /// Mean (seconds).
        mean: f64,
    },
    /// Log-normal given the underlying normal's `mu`/`sigma`.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Bounded Pareto on `[lo, hi]` with shape `alpha`; heavy-tailed service
    /// times for straggler modeling.
    BoundedPareto {
        /// Inclusive lower bound (seconds).
        lo: f64,
        /// Inclusive upper bound (seconds).
        hi: f64,
        /// Tail index (> 0); smaller is heavier.
        alpha: f64,
    },
    /// Samples uniformly from a fixed set of observed values.
    Empirical(Vec<f64>),
    /// A base distribution shifted right by a constant (seconds).
    Shifted {
        /// Constant offset added to every sample (seconds).
        offset: f64,
        /// The distribution being shifted.
        base: Box<Dist>,
    },
}

impl Dist {
    /// A constant distribution, in seconds.
    pub fn constant(secs: f64) -> Dist {
        assert!(
            secs >= 0.0 && secs.is_finite(),
            "constant must be finite and >= 0"
        );
        Dist::Constant(secs)
    }

    /// A constant distribution, in milliseconds.
    pub fn constant_ms(ms: f64) -> Dist {
        Dist::constant(ms / 1e3)
    }

    /// Uniform on `[lo, hi)` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is negative/non-finite.
    pub fn uniform(lo: f64, hi: f64) -> Dist {
        assert!(lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi);
        Dist::Uniform { lo, hi }
    }

    /// Exponential with mean `mean` seconds.
    pub fn exponential(mean: f64) -> Dist {
        assert!(mean > 0.0 && mean.is_finite());
        Dist::Exponential { mean }
    }

    /// Log-normal parameterized by its *median* (seconds) and the shape
    /// `sigma` — the natural parameterization for latency data, where the
    /// median is what gets reported and `sigma` controls tail heaviness.
    pub fn lognormal_median_sigma(median: f64, sigma: f64) -> Dist {
        assert!(median > 0.0 && median.is_finite());
        assert!(sigma >= 0.0 && sigma.is_finite());
        Dist::LogNormal {
            mu: median.ln(),
            sigma,
        }
    }

    /// Bounded Pareto on `[lo, hi]` seconds with tail index `alpha`.
    pub fn bounded_pareto(lo: f64, hi: f64, alpha: f64) -> Dist {
        assert!(0.0 < lo && lo < hi && hi.is_finite());
        assert!(alpha > 0.0 && alpha.is_finite());
        Dist::BoundedPareto { lo, hi, alpha }
    }

    /// Empirical distribution over observed samples (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn empirical(samples: Vec<f64>) -> Dist {
        assert!(!samples.is_empty(), "empirical distribution needs samples");
        assert!(samples.iter().all(|s| s.is_finite() && *s >= 0.0));
        Dist::Empirical(samples)
    }

    /// Shifts this distribution right by `offset` seconds.
    pub fn shifted(self, offset: f64) -> Dist {
        assert!(offset >= 0.0 && offset.is_finite());
        Dist::Shifted {
            offset,
            base: Box::new(self),
        }
    }

    /// Scales this distribution by a positive factor, preserving its shape.
    ///
    /// Used to derive edge-device service times from cloud service times
    /// (the paper's drones are ~an order of magnitude slower than a server
    /// core for heavy vision workloads).
    pub fn scaled(&self, factor: f64) -> Dist {
        assert!(factor > 0.0 && factor.is_finite());
        match self {
            Dist::Constant(c) => Dist::Constant(c * factor),
            Dist::Uniform { lo, hi } => Dist::Uniform {
                lo: lo * factor,
                hi: hi * factor,
            },
            Dist::Exponential { mean } => Dist::Exponential {
                mean: mean * factor,
            },
            Dist::LogNormal { mu, sigma } => Dist::LogNormal {
                mu: mu + factor.ln(),
                sigma: *sigma,
            },
            Dist::BoundedPareto { lo, hi, alpha } => Dist::BoundedPareto {
                lo: lo * factor,
                hi: hi * factor,
                alpha: *alpha,
            },
            Dist::Empirical(samples) => {
                Dist::Empirical(samples.iter().map(|s| s * factor).collect())
            }
            Dist::Shifted { offset, base } => Dist::Shifted {
                offset: offset * factor,
                base: Box::new(base.scaled(factor)),
            },
        }
    }

    /// Draws one sample in seconds.
    pub fn sample_secs<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            Dist::Constant(c) => *c,
            Dist::Uniform { lo, hi } => {
                if lo == hi {
                    *lo
                } else {
                    rng.gen_range(*lo..*hi)
                }
            }
            Dist::Exponential { mean } => {
                // Inverse-CDF; guard against ln(0).
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -mean * u.ln()
            }
            Dist::LogNormal { mu, sigma } => {
                let z = standard_normal(rng);
                (mu + sigma * z).exp()
            }
            Dist::BoundedPareto { lo, hi, alpha } => {
                let u: f64 = rng.gen_range(0.0..1.0);
                let la = lo.powf(*alpha);
                let ha = hi.powf(*alpha);
                // Inverse CDF of the bounded Pareto.
                (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
            }
            Dist::Empirical(samples) => samples[rng.gen_range(0..samples.len())],
            Dist::Shifted { offset, base } => offset + base.sample_secs(rng),
        }
    }

    /// Draws one sample as a [`SimDuration`].
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        SimDuration::from_secs_f64(self.sample_secs(rng))
    }

    /// The analytic mean of the distribution, in seconds.
    ///
    /// Used by the analytical queueing cross-model (Fig. 18 validation).
    pub fn mean_secs(&self) -> f64 {
        match self {
            Dist::Constant(c) => *c,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Exponential { mean } => *mean,
            Dist::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Dist::BoundedPareto { lo, hi, alpha } => {
                if (alpha - 1.0).abs() < 1e-12 {
                    let la = lo.powf(*alpha);
                    let ha = hi.powf(*alpha);
                    la / (1.0 - la / ha) * (hi / lo).ln()
                } else {
                    let la = lo.powf(*alpha);
                    let ha = hi.powf(*alpha);
                    (la / (1.0 - la / ha))
                        * (alpha / (alpha - 1.0))
                        * (1.0 / lo.powf(alpha - 1.0) - 1.0 / hi.powf(alpha - 1.0))
                }
            }
            Dist::Empirical(samples) => samples.iter().sum::<f64>() / samples.len() as f64,
            Dist::Shifted { offset, base } => offset + base.mean_secs(),
        }
    }

    /// The squared coefficient of variation (variance / mean²), where it has
    /// a closed form; `None` otherwise. Feeds the analytical G/G/c model.
    pub fn scv(&self) -> Option<f64> {
        match self {
            Dist::Constant(_) => Some(0.0),
            Dist::Uniform { lo, hi } => {
                let mean = (lo + hi) / 2.0;
                if mean == 0.0 {
                    return Some(0.0);
                }
                let var = (hi - lo).powi(2) / 12.0;
                Some(var / (mean * mean))
            }
            Dist::Exponential { .. } => Some(1.0),
            Dist::LogNormal { sigma, .. } => Some((sigma * sigma).exp() - 1.0),
            Dist::Empirical(samples) => {
                let n = samples.len() as f64;
                let mean = samples.iter().sum::<f64>() / n;
                if mean == 0.0 {
                    return Some(0.0);
                }
                let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
                Some(var / (mean * mean))
            }
            Dist::BoundedPareto { .. } | Dist::Shifted { .. } => None,
        }
    }
}

/// Box–Muller standard normal.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngForge;

    fn sample_mean(d: &Dist, n: usize) -> f64 {
        let mut rng = RngForge::new(17).stream("dist-test");
        (0..n).map(|_| d.sample_secs(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = Dist::constant(0.5);
        let mut rng = RngForge::new(1).stream("c");
        for _ in 0..10 {
            assert_eq!(d.sample_secs(&mut rng), 0.5);
        }
        assert_eq!(d.mean_secs(), 0.5);
        assert_eq!(d.scv(), Some(0.0));
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Dist::uniform(1.0, 3.0);
        let mut rng = RngForge::new(2).stream("u");
        for _ in 0..1000 {
            let s = d.sample_secs(&mut rng);
            assert!((1.0..3.0).contains(&s));
        }
        assert!((sample_mean(&d, 20_000) - 2.0).abs() < 0.02);
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Dist::exponential(0.2);
        assert!((sample_mean(&d, 50_000) - 0.2).abs() < 0.01);
        assert_eq!(d.scv(), Some(1.0));
    }

    #[test]
    fn lognormal_median_parameterization() {
        let d = Dist::lognormal_median_sigma(0.1, 0.5);
        let mut rng = RngForge::new(3).stream("l");
        let mut samples: Vec<f64> = (0..20_001).map(|_| d.sample_secs(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        assert!((median - 0.1).abs() < 0.01, "median {median}");
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let d = Dist::bounded_pareto(0.01, 1.0, 1.5);
        let mut rng = RngForge::new(4).stream("p");
        for _ in 0..5000 {
            let s = d.sample_secs(&mut rng);
            assert!((0.01..=1.0).contains(&s), "sample {s}");
        }
        // Mean should sit well below the upper bound for alpha > 1.
        let mean = d.mean_secs();
        assert!(mean > 0.01 && mean < 0.2, "mean {mean}");
        assert!((sample_mean(&d, 50_000) - mean).abs() < 0.01);
    }

    #[test]
    fn empirical_draws_only_observed() {
        let d = Dist::empirical(vec![0.1, 0.2, 0.3]);
        let mut rng = RngForge::new(5).stream("e");
        for _ in 0..100 {
            let s = d.sample_secs(&mut rng);
            assert!([0.1, 0.2, 0.3].contains(&s));
        }
        assert!((d.mean_secs() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn shifted_adds_offset() {
        let d = Dist::constant(0.1).shifted(0.05);
        let mut rng = RngForge::new(6).stream("s");
        assert!((d.sample_secs(&mut rng) - 0.15).abs() < 1e-12);
        assert!((d.mean_secs() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn scaling_preserves_shape() {
        let d = Dist::lognormal_median_sigma(0.1, 0.4);
        let scaled = d.scaled(10.0);
        assert!((scaled.mean_secs() - d.mean_secs() * 10.0).abs() < 1e-9);
        assert_eq!(scaled.scv(), d.scv());

        let e = Dist::exponential(0.5).scaled(2.0);
        assert!((e.mean_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_empirical_panics() {
        let _ = Dist::empirical(vec![]);
    }

    #[test]
    fn samples_never_negative() {
        let dists = [
            Dist::uniform(0.0, 1.0),
            Dist::exponential(1.0),
            Dist::lognormal_median_sigma(1.0, 2.0),
            Dist::bounded_pareto(0.001, 10.0, 0.5),
        ];
        let mut rng = RngForge::new(7).stream("nn");
        for d in &dists {
            for _ in 0..2000 {
                assert!(d.sample(&mut rng) >= SimDuration::ZERO);
            }
        }
    }
}

//! Generic event queue and run loop.
//!
//! The [`Engine`] owns a model and a time-ordered queue of that model's
//! events. Ties in event time are broken by insertion order (a monotone
//! sequence number), so execution is fully deterministic regardless of the
//! queue's internal layout. The queue itself is an adaptive
//! [`CalendarQueue`](crate::calendar::CalendarQueue) keyed by
//! `(at, seq)`; handlers schedule straight into it through the
//! [`Context`], with no intermediate staging buffer.

use crate::calendar::CalendarQueue;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceHandle;

/// A simulation model: some state plus a handler invoked for each event.
///
/// Implementors schedule follow-up events through the [`Context`] passed to
/// [`Model::handle`].
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Reacts to `event` occurring at `ctx.now()`.
    fn handle(&mut self, ctx: &mut Context<Self::Event>, event: Self::Event);
}

/// Scheduling interface handed to [`Model::handle`].
///
/// A `Context` exposes the current virtual time and lets the handler enqueue
/// future events. Events scheduled "now" run after the current handler
/// returns, in FIFO order with other same-instant events (the `(at, seq)`
/// key makes that order explicit; the calendar queue preserves it exactly).
#[derive(Debug)]
pub struct Context<E> {
    now: SimTime,
    seq: u64,
    queue: CalendarQueue<(SimTime, u64), E>,
    tracer: TraceHandle,
}

impl<E> Context<E> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — scheduling backwards in time is
    /// always a logic error in a DES.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule event in the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push((at, seq), event);
    }

    /// Schedules `event` after the relative delay `after`.
    pub fn schedule_after(&mut self, after: SimDuration, event: E) {
        let at = self.now.saturating_add(after);
        self.schedule_at(at, event);
    }

    /// The tracing handle for this simulation (disabled by default).
    ///
    /// Handlers emit spans/instants/counters through this; when tracing
    /// is off each emission costs a single branch.
    pub fn tracer(&self) -> &TraceHandle {
        &self.tracer
    }
}

/// The discrete-event simulation engine.
///
/// # Examples
///
/// ```rust
/// use hivemind_sim::engine::{Engine, Model, Context};
/// use hivemind_sim::time::{SimDuration, SimTime};
///
/// struct Echo { seen: Vec<u32> }
/// impl Model for Echo {
///     type Event = u32;
///     fn handle(&mut self, _ctx: &mut Context<u32>, ev: u32) {
///         self.seen.push(ev);
///     }
/// }
///
/// let mut engine = Engine::new(Echo { seen: vec![] });
/// engine.schedule_at(SimTime::from_secs(2), 2);
/// engine.schedule_at(SimTime::from_secs(1), 1);
/// engine.run_to_completion();
/// assert_eq!(engine.model().seen, vec![1, 2]);
/// ```
#[derive(Debug)]
pub struct Engine<M: Model> {
    model: M,
    ctx: Context<M::Event>,
    processed: u64,
}

/// Why a call to [`Engine::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained before the deadline.
    Drained,
    /// The deadline was reached with events still pending.
    DeadlineReached,
    /// The event budget was exhausted (runaway-model backstop).
    BudgetExhausted,
}

impl<M: Model> Engine<M> {
    /// Creates an engine at `SimTime::ZERO` wrapping `model`.
    pub fn new(model: M) -> Self {
        Engine::with_capacity(model, 0)
    }

    /// [`Engine::new`] with the event queue pre-sized for `capacity`
    /// concurrent events, so a caller that knows its steady-state backlog
    /// (e.g. one event per simulated device) skips the queue's growth
    /// rebuilds.
    pub fn with_capacity(model: M, capacity: usize) -> Self {
        Engine {
            model,
            ctx: Context {
                now: SimTime::ZERO,
                seq: 0,
                queue: CalendarQueue::with_capacity(capacity),
                tracer: TraceHandle::disabled(),
            },
            processed: 0,
        }
    }

    /// Installs a tracing handle; handlers observe it via
    /// [`Context::tracer`].
    pub fn set_tracer(&mut self, tracer: TraceHandle) {
        self.ctx.tracer = tracer;
    }

    /// The engine's tracing handle.
    pub fn tracer(&self) -> &TraceHandle {
        &self.ctx.tracer
    }

    /// The current virtual time (time of the most recently fired event).
    pub fn now(&self) -> SimTime {
        self.ctx.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Borrows the wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutably borrows the wrapped model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Schedules an event from outside the model (e.g. initial stimuli).
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time.
    pub fn schedule_at(&mut self, at: SimTime, event: M::Event) {
        self.ctx.schedule_at(at, event);
    }

    /// Schedules an event `after` the current time.
    pub fn schedule_after(&mut self, after: SimDuration, event: M::Event) {
        self.ctx.schedule_after(after, event);
    }

    /// Fires the next event, if any. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        match self.ctx.queue.pop() {
            None => false,
            Some(((at, _), event)) => {
                debug_assert!(at >= self.ctx.now, "event queue went backwards");
                self.ctx.now = at;
                self.model.handle(&mut self.ctx, event);
                self.processed += 1;
                true
            }
        }
    }

    /// Runs until the queue drains.
    ///
    /// Equivalent to `run_until(SimTime::MAX, u64::MAX)` but expresses
    /// intent; most experiments have naturally terminating workloads.
    pub fn run_to_completion(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX, u64::MAX)
    }

    /// Runs until the queue drains, the next event would be after
    /// `deadline`, or `max_events` have fired.
    ///
    /// Events *at* the deadline still fire. When the deadline is hit, the
    /// clock is advanced to `deadline` so metrics windows are exact.
    pub fn run_until(&mut self, deadline: SimTime, max_events: u64) -> RunOutcome {
        let mut budget = max_events;
        loop {
            let Some((at, _)) = self.ctx.queue.peek() else {
                return RunOutcome::Drained;
            };
            if at > deadline {
                self.ctx.now = deadline;
                return RunOutcome::DeadlineReached;
            }
            if budget == 0 {
                return RunOutcome::BudgetExhausted;
            }
            budget -= 1;
            self.step();
        }
    }

    /// Number of events currently queued.
    pub fn queued(&self) -> usize {
        self.ctx.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        fired: Vec<(SimTime, u32)>,
        respawn: bool,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Context<u32>, ev: u32) {
            self.fired.push((ctx.now(), ev));
            if self.respawn && ev < 5 {
                ctx.schedule_after(SimDuration::from_secs(1), ev + 1);
            }
        }
    }

    fn recorder(respawn: bool) -> Engine<Recorder> {
        Engine::new(Recorder {
            fired: vec![],
            respawn,
        })
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut e = recorder(false);
        e.schedule_at(SimTime::from_secs(3), 3);
        e.schedule_at(SimTime::from_secs(1), 1);
        e.schedule_at(SimTime::from_secs(2), 2);
        assert_eq!(e.run_to_completion(), RunOutcome::Drained);
        let order: Vec<u32> = e.model().fired.iter().map(|&(_, v)| v).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut e = recorder(false);
        for v in 0..100 {
            e.schedule_at(SimTime::from_secs(1), v);
        }
        e.run_to_completion();
        let order: Vec<u32> = e.model().fired.iter().map(|&(_, v)| v).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut e = recorder(true);
        e.schedule_at(SimTime::ZERO, 0);
        e.run_to_completion();
        assert_eq!(e.model().fired.len(), 6);
        assert_eq!(e.now(), SimTime::from_secs(5));
        assert_eq!(e.events_processed(), 6);
    }

    #[test]
    fn deadline_stops_and_pins_clock() {
        let mut e = recorder(true);
        e.schedule_at(SimTime::ZERO, 0);
        let outcome = e.run_until(
            SimTime::from_secs(2) + SimDuration::from_millis(500),
            u64::MAX,
        );
        assert_eq!(outcome, RunOutcome::DeadlineReached);
        assert_eq!(e.model().fired.len(), 3); // t=0,1,2
        assert_eq!(e.now().as_secs_f64(), 2.5);
        // Remaining events still fire afterwards.
        assert_eq!(e.run_to_completion(), RunOutcome::Drained);
        assert_eq!(e.model().fired.len(), 6);
    }

    #[test]
    fn event_budget_is_a_backstop() {
        let mut e = recorder(true);
        e.schedule_at(SimTime::ZERO, 0);
        assert_eq!(e.run_until(SimTime::MAX, 2), RunOutcome::BudgetExhausted);
        assert_eq!(e.model().fired.len(), 2);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        let mut e = recorder(false);
        e.schedule_at(SimTime::from_secs(1), 1);
        e.step();
        e.schedule_at(SimTime::ZERO, 0);
    }

    #[test]
    fn tracer_reaches_handlers_through_context() {
        struct Traced;
        impl Model for Traced {
            type Event = ();
            fn handle(&mut self, ctx: &mut Context<()>, _ev: ()) {
                ctx.tracer().instant("test", "fired", 0, ctx.now(), vec![]);
            }
        }
        let mut e = Engine::new(Traced);
        assert!(!e.tracer().is_enabled());
        e.set_tracer(crate::trace::TraceHandle::enabled());
        e.schedule_at(SimTime::from_secs(1), ());
        e.run_to_completion();
        let trace = e.tracer().finish().unwrap();
        assert_eq!(trace.count("test", "fired"), 1);
    }

    #[test]
    fn queued_reports_pending() {
        let mut e = recorder(false);
        assert_eq!(e.queued(), 0);
        e.schedule_at(SimTime::from_secs(1), 1);
        e.schedule_at(SimTime::from_secs(2), 2);
        assert_eq!(e.queued(), 2);
        e.step();
        assert_eq!(e.queued(), 1);
    }

    #[test]
    fn late_external_schedules_after_deadline_run() {
        // run_until pins the clock at the deadline; a later external
        // schedule at exactly `now` must still be accepted and fire.
        let mut e = recorder(false);
        e.schedule_at(SimTime::from_secs(1), 1);
        e.run_until(SimTime::from_secs(10), u64::MAX);
        e.schedule_at(SimTime::from_secs(10), 10);
        e.schedule_at(SimTime::from_secs(12), 12);
        assert_eq!(e.run_to_completion(), RunOutcome::Drained);
        let order: Vec<u32> = e.model().fired.iter().map(|&(_, v)| v).collect();
        assert_eq!(order, vec![1, 10, 12]);
    }
}

//! Deterministic overload-control plane: bounded admission, load
//! shedding, circuit breaking, and brownout spillover.
//!
//! The paper's central tension is that the cloud controller is both the
//! performance win and the scalability hazard: Fig. 17/18 show it
//! saturating as swarms grow. An [`OverloadPolicy`] describes how the
//! stack should *degrade gracefully* at that point instead of queueing
//! without bound: admission queues get a bound and shed on overflow,
//! stale work is dropped before it wastes a server, a per-app circuit
//! breaker stops retry storms at the source, and shed cloud invocations
//! can spill over to on-device execution with a cheaper, less accurate
//! model (the paper's edge fallback). Experiments attach a policy via
//! `ExperimentConfig::overload`.
//!
//! ## Determinism contract
//!
//! Unlike [`crate::faults`], the overload plane draws **no randomness at
//! all**: every decision is a pure function of queue lengths, counters,
//! and event times, so the plane needs no seed-chain lane. Two
//! consequences:
//!
//! 1. a run with an inert policy ([`OverloadPolicy::default`]) is
//!    **bit-for-bit identical** to a run that never heard of overload
//!    control — no extra RNG stream exists and no event is reordered;
//! 2. sweeping an overload knob (say the queue bound) never reshuffles
//!    the workload's own randomness, so saturation curves compare the
//!    *same* offered load under different control settings.
//!
//! The consumers live in their own crates — `faas::cluster` applies the
//! admission bounds and drives per-app [`CircuitBreaker`]s,
//! `core::engine` re-routes shed invocations per [`Spillover`], and
//! `net::fabric` applies [`NetBackpressure`] — but the vocabulary (and
//! the breaker state machine itself) is defined here so a policy can be
//! validated and threaded as one value.

use crate::time::{SimDuration, SimTime};

/// Trace category used by circuit-breaker transitions
/// (`breaker/open`, `breaker/half_open`, `breaker/close`).
pub const BREAKER_TRACE_CAT: &str = "breaker";
/// Trace event name emitted when a breaker opens (fail-fast begins).
pub const EV_BREAKER_OPEN: &str = "open";
/// Trace event name emitted when a cooled-down breaker admits probes.
pub const EV_BREAKER_HALF_OPEN: &str = "half_open";
/// Trace event name emitted when a probe success closes the breaker.
pub const EV_BREAKER_CLOSE: &str = "close";
/// Trace event name for a shed task (emitted in the `task` category,
/// alongside `task/lost`).
pub const EV_SHED: &str = "shed";

/// A declarative description of every overload-control mechanism armed
/// for one run.
///
/// The default policy is **inert**: [`OverloadPolicy::is_active`] returns
/// `false` and every consumer skips its overload path entirely, leaving
/// the simulation byte-identical to one that never heard of overload
/// control.
///
/// # Examples
///
/// ```rust
/// use hivemind_sim::overload::OverloadPolicy;
/// use hivemind_sim::time::SimDuration;
///
/// let policy = OverloadPolicy::default()
///     .queue_bound(64)
///     .queue_deadline(SimDuration::from_secs(2))
///     .per_app_limit(128)
///     .breaker(5, SimDuration::from_secs(1))
///     .spillover();
/// assert!(policy.is_active());
/// assert!(policy.validate().is_ok());
/// assert!(!OverloadPolicy::default().is_active());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OverloadPolicy {
    /// Cluster admission bounds (queue bound, deadline, per-app limit).
    pub admission: AdmissionLimits,
    /// Per-app retry circuit breaker; `None` keeps retries unguarded.
    pub breaker: Option<BreakerConfig>,
    /// Brownout spillover of shed cloud invocations to the device.
    pub spillover: Spillover,
    /// Network-ingress backpressure (bounded first-hop link queues).
    pub net: NetBackpressure,
}

impl OverloadPolicy {
    /// `true` if any knob deviates from the inert default.
    pub fn is_active(&self) -> bool {
        self.admission.is_active()
            || self.breaker.is_some()
            || self.spillover.enabled
            || self.net.is_active()
    }

    /// Bounds the cluster admission queue: a submission arriving while
    /// `bound` invocations already wait is shed instead of enqueued.
    pub fn queue_bound(mut self, bound: u32) -> Self {
        self.admission.queue_bound = Some(bound);
        self
    }

    /// Sheds a queued invocation whose wait already exceeds `deadline`
    /// at the moment it would be placed (stale work wastes a server).
    pub fn queue_deadline(mut self, deadline: SimDuration) -> Self {
        self.admission.queue_deadline = Some(deadline);
        self
    }

    /// Caps concurrent running invocations per application.
    pub fn per_app_limit(mut self, limit: u32) -> Self {
        self.admission.per_app_limit = Some(limit);
        self
    }

    /// Arms the per-app circuit breaker: open after `open_after`
    /// consecutive faults, fail fast for `cooldown`, then admit half-open
    /// probes (see [`BreakerConfig`] for the probe count).
    pub fn breaker(mut self, open_after: u32, cooldown: SimDuration) -> Self {
        self.breaker = Some(BreakerConfig {
            open_after,
            cooldown,
            ..BreakerConfig::default()
        });
        self
    }

    /// Replaces the full breaker configuration.
    pub fn breaker_config(mut self, cfg: BreakerConfig) -> Self {
        self.breaker = Some(cfg);
        self
    }

    /// Enables brownout spillover with the default degraded model
    /// (see [`Spillover`]).
    pub fn spillover(mut self) -> Self {
        self.spillover.enabled = true;
        self
    }

    /// Enables spillover with an explicit degraded model: `speedup`× the
    /// on-device service rate at `accuracy_penalty_pct` points of lost
    /// accuracy.
    pub fn spillover_model(mut self, speedup: f64, accuracy_penalty_pct: f64) -> Self {
        self.spillover.enabled = true;
        self.spillover.degraded_speedup = speedup;
        self.spillover.accuracy_penalty_pct = accuracy_penalty_pct;
        self
    }

    /// Bounds each device's first-hop (ingress) link queue: a transfer
    /// finding `bound` transfers already in flight on its first hop is
    /// held at the source and re-offered later, so backpressure
    /// propagates instead of buffering infinitely.
    pub fn net_ingress_bound(mut self, bound: u32) -> Self {
        self.net.ingress_bound = Some(bound);
        self
    }

    /// Checks every knob for internal consistency. Returns a
    /// human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(d) = self.admission.queue_deadline {
            if d == SimDuration::ZERO {
                return Err("admission.queue_deadline must be positive".into());
            }
        }
        if let Some(limit) = self.admission.per_app_limit {
            if limit == 0 {
                return Err("admission.per_app_limit must be at least 1".into());
            }
        }
        if let Some(b) = &self.breaker {
            if b.open_after == 0 {
                return Err("breaker.open_after must be at least 1".into());
            }
            if b.half_open_probes == 0 {
                return Err("breaker.half_open_probes must be at least 1".into());
            }
            if b.cooldown == SimDuration::ZERO {
                return Err("breaker.cooldown must be positive".into());
            }
        }
        if self.spillover.enabled {
            let s = self.spillover.degraded_speedup;
            if !(s.is_finite() && s >= 1.0) {
                return Err(format!("spillover.degraded_speedup must be >= 1, got {s}"));
            }
            let p = self.spillover.accuracy_penalty_pct;
            if !(0.0..=100.0).contains(&p) {
                return Err(format!(
                    "spillover.accuracy_penalty_pct must be in [0, 100], got {p}"
                ));
            }
        }
        if let Some(bound) = self.net.ingress_bound {
            if bound == 0 {
                return Err("net.ingress_bound must be at least 1".into());
            }
            if self.net.retry_delay == SimDuration::ZERO {
                return Err("net.retry_delay must be positive".into());
            }
        }
        Ok(())
    }
}

/// Cluster admission bounds applied by `faas::cluster`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AdmissionLimits {
    /// Maximum queued (admitted but unplaced) invocations. A submission
    /// arriving with the queue full is shed. `Some(0)` means no queueing
    /// at all: anything that cannot start immediately is shed.
    pub queue_bound: Option<u32>,
    /// Maximum time an invocation may wait in the admission queue; a
    /// queued invocation older than this at placement time is shed.
    pub queue_deadline: Option<SimDuration>,
    /// Maximum concurrent running invocations per application.
    pub per_app_limit: Option<u32>,
}

impl AdmissionLimits {
    /// `true` if any admission knob deviates from the inert default.
    pub fn is_active(&self) -> bool {
        self.queue_bound.is_some() || self.queue_deadline.is_some() || self.per_app_limit.is_some()
    }
}

/// Circuit-breaker knobs (per application).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BreakerConfig {
    /// Consecutive faulted attempts that trip the breaker open.
    pub open_after: u32,
    /// Concurrent probe invocations admitted while half-open.
    pub half_open_probes: u32,
    /// How long an open breaker fails fast before admitting probes.
    pub cooldown: SimDuration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            open_after: 5,
            half_open_probes: 1,
            cooldown: SimDuration::from_secs(1),
        }
    }
}

/// Brownout spillover: shed cloud invocations re-route to on-device
/// execution with a degraded (smaller, faster, less accurate) model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spillover {
    /// Whether shed invocations spill over to the device at all.
    pub enabled: bool,
    /// Service-rate multiplier of the degraded on-device model relative
    /// to the full on-device model (>= 1: the fallback model is smaller
    /// and faster).
    pub degraded_speedup: f64,
    /// Accuracy points lost per spilled invocation, accounted in
    /// `ShedStats` so experiments can weigh goodput against quality.
    pub accuracy_penalty_pct: f64,
}

impl Default for Spillover {
    fn default() -> Self {
        Spillover {
            enabled: false,
            degraded_speedup: 4.0,
            accuracy_penalty_pct: 15.0,
        }
    }
}

/// Network-ingress backpressure applied by `net::fabric`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetBackpressure {
    /// Maximum transfers in flight on a transfer's first-hop link before
    /// new sends are held at the source.
    pub ingress_bound: Option<u32>,
    /// How long a held transfer waits before re-offering itself to the
    /// link (deterministic, no RNG).
    pub retry_delay: SimDuration,
}

impl Default for NetBackpressure {
    fn default() -> Self {
        NetBackpressure {
            ingress_bound: None,
            retry_delay: SimDuration::from_millis(50),
        }
    }
}

impl NetBackpressure {
    /// `true` if the ingress bound is armed.
    pub fn is_active(&self) -> bool {
        self.ingress_bound.is_some()
    }
}

/// What a [`CircuitBreaker`] decided about one admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Breaker closed: admit normally.
    Admit,
    /// Breaker half-open: admit as a probe (report its outcome back).
    Probe,
    /// Breaker open (or probe slots exhausted): fail fast.
    Reject,
}

/// A state transition worth tracing, returned by breaker methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerEvent {
    /// Closed (or half-open) → open: fail-fast begins.
    Opened,
    /// Open → half-open: cool-down elapsed, probes admitted.
    HalfOpened,
    /// Half-open → closed: a probe succeeded, service restored.
    Closed,
}

/// Deterministic per-app circuit breaker.
///
/// Closed → (N consecutive faults) → Open → (cool-down) → HalfOpen →
/// (probe success) → Closed, or (probe fault) → Open again. Every
/// transition is a pure function of event times and counters — no RNG.
///
/// ```rust
/// use hivemind_sim::overload::{BreakerConfig, BreakerDecision, CircuitBreaker};
/// use hivemind_sim::time::{SimDuration, SimTime};
///
/// let cfg = BreakerConfig { open_after: 2, ..BreakerConfig::default() };
/// let mut b = CircuitBreaker::new(cfg);
/// let t = SimTime::ZERO;
/// b.record_failure(t, false);
/// assert_eq!(b.record_failure(t, false), Some(hivemind_sim::overload::BreakerEvent::Opened));
/// assert_eq!(b.admit(t), BreakerDecision::Reject);
/// let later = t + cfg.cooldown;
/// assert_eq!(b.admit(later), BreakerDecision::Probe);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive: u32,
    /// When the current open period began (valid while not Closed).
    opened_at: SimTime,
    /// When an open breaker may transition to half-open.
    open_until: SimTime,
    /// Probes admitted and not yet resolved (half-open only).
    probes_in_flight: u32,
    /// Times the breaker tripped open (re-opens from half-open included).
    opens: u32,
    /// Accumulated fail-fast time over closed open periods.
    open_time: SimDuration,
}

/// A circuit breaker's position in its state machine.
///
/// Public so the model-checking lane (`sim::mc`) and tests can compare
/// the implementation against its specification mirror.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Normal service; a failure streak is being counted.
    Closed,
    /// Failing fast until the cool-down elapses.
    Open,
    /// Cool-down elapsed; probes decide whether to close or re-open.
    HalfOpen,
}

impl CircuitBreaker {
    /// A closed breaker with zeroed counters.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive: 0,
            opened_at: SimTime::ZERO,
            open_until: SimTime::ZERO,
            probes_in_flight: 0,
            opens: 0,
            open_time: SimDuration::ZERO,
        }
    }

    /// Decides one admission at `now`. May transition open → half-open
    /// (the accompanying [`BreakerEvent::HalfOpened`] is returned so the
    /// caller can trace it).
    pub fn admit(&mut self, now: SimTime) -> BreakerDecision {
        self.admit_traced(now).0
    }

    /// Like [`Self::admit`], also reporting a half-open transition.
    pub fn admit_traced(&mut self, now: SimTime) -> (BreakerDecision, Option<BreakerEvent>) {
        match self.state {
            BreakerState::Closed => (BreakerDecision::Admit, None),
            BreakerState::Open => {
                if now >= self.open_until {
                    self.state = BreakerState::HalfOpen;
                    self.probes_in_flight = 1;
                    (BreakerDecision::Probe, Some(BreakerEvent::HalfOpened))
                } else {
                    (BreakerDecision::Reject, None)
                }
            }
            BreakerState::HalfOpen => {
                if self.probes_in_flight < self.cfg.half_open_probes {
                    self.probes_in_flight += 1;
                    (BreakerDecision::Probe, None)
                } else {
                    (BreakerDecision::Reject, None)
                }
            }
        }
    }

    /// Reports a successful attempt (a probe if admitted as one).
    ///
    /// The consecutive-failure streak is reset only while the breaker is
    /// closed (or when a probe success closes it): a stale invocation
    /// resolving *during* a cool-down — admitted before the breaker
    /// tripped, finishing while it fails fast — must not perturb the
    /// streak the next closed period starts from.
    pub fn record_success(&mut self, now: SimTime, probe: bool) -> Option<BreakerEvent> {
        if probe && self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            self.probes_in_flight = 0;
            self.consecutive = 0;
            self.open_time += now.saturating_since(self.opened_at);
            return Some(BreakerEvent::Closed);
        }
        if self.state == BreakerState::Closed {
            self.consecutive = 0;
        }
        None
    }

    /// Reports a faulted attempt (a probe if admitted as one).
    pub fn record_failure(&mut self, now: SimTime, probe: bool) -> Option<BreakerEvent> {
        if probe && self.state == BreakerState::HalfOpen {
            // Probe failed: re-open for another cool-down. The open
            // period is continuous, so `opened_at` keeps its first value.
            self.state = BreakerState::Open;
            self.probes_in_flight = 0;
            self.open_until = now + self.cfg.cooldown;
            self.opens += 1;
            return Some(BreakerEvent::Opened);
        }
        if self.state == BreakerState::Closed {
            self.consecutive += 1;
            if self.consecutive >= self.cfg.open_after {
                // The streak is preserved through the open window (it is
                // only cleared when the breaker actually closes again),
                // so a give-up resolving during the cool-down observably
                // cannot reset it.
                self.state = BreakerState::Open;
                self.opened_at = now;
                self.open_until = now + self.cfg.cooldown;
                self.opens += 1;
                return Some(BreakerEvent::Opened);
            }
        }
        None
    }

    /// Releases a probe slot whose invocation vanished without ever
    /// resolving (e.g. lost to a server crash), so half-open admission
    /// doesn't wedge waiting for an answer that will never come.
    pub fn release_probe(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
        }
    }

    /// `true` while the breaker fails fast (open or half-open).
    pub fn is_open(&self) -> bool {
        self.state != BreakerState::Closed
    }

    /// The breaker's current position in its state machine.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// The current consecutive-failure streak. Counts up while closed,
    /// is preserved verbatim through open/half-open windows, and resets
    /// to zero when the breaker closes.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive
    }

    /// The instant at which an open breaker starts admitting probes
    /// (meaningful while not closed).
    pub fn open_until(&self) -> SimTime {
        self.open_until
    }

    /// Probes admitted and not yet resolved (half-open only).
    pub fn probes_in_flight(&self) -> u32 {
        self.probes_in_flight
    }

    /// Times the breaker tripped open.
    pub fn opens(&self) -> u32 {
        self.opens
    }

    /// Total fail-fast time up to `now` (an open period still in
    /// progress counts up to `now`).
    pub fn total_open_time(&self, now: SimTime) -> SimDuration {
        if self.state == BreakerState::Closed {
            self.open_time
        } else {
            self.open_time + now.saturating_since(self.opened_at)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_inert() {
        let policy = OverloadPolicy::default();
        assert!(!policy.is_active());
        assert!(!policy.admission.is_active());
        assert!(!policy.net.is_active());
        assert!(policy.validate().is_ok());
    }

    #[test]
    fn builders_activate_their_layer() {
        assert!(OverloadPolicy::default()
            .queue_bound(8)
            .admission
            .is_active());
        assert!(OverloadPolicy::default()
            .queue_deadline(SimDuration::from_secs(1))
            .admission
            .is_active());
        assert!(OverloadPolicy::default()
            .per_app_limit(4)
            .admission
            .is_active());
        assert!(OverloadPolicy::default()
            .breaker(3, SimDuration::from_secs(1))
            .is_active());
        assert!(OverloadPolicy::default().spillover().is_active());
        assert!(OverloadPolicy::default()
            .net_ingress_bound(16)
            .net
            .is_active());
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        assert!(OverloadPolicy::default()
            .queue_deadline(SimDuration::ZERO)
            .validate()
            .is_err());
        assert!(OverloadPolicy::default()
            .per_app_limit(0)
            .validate()
            .is_err());
        assert!(OverloadPolicy::default()
            .breaker(0, SimDuration::from_secs(1))
            .validate()
            .is_err());
        assert!(OverloadPolicy::default()
            .breaker(3, SimDuration::ZERO)
            .validate()
            .is_err());
        let mut bad_probe = OverloadPolicy::default().breaker(3, SimDuration::from_secs(1));
        bad_probe.breaker.as_mut().unwrap().half_open_probes = 0;
        assert!(bad_probe.validate().is_err());
        assert!(OverloadPolicy::default()
            .spillover_model(0.5, 10.0)
            .validate()
            .is_err());
        assert!(OverloadPolicy::default()
            .spillover_model(2.0, 150.0)
            .validate()
            .is_err());
        assert!(OverloadPolicy::default()
            .net_ingress_bound(0)
            .validate()
            .is_err());
        // A zero queue bound is legal: shed anything that cannot start.
        assert!(OverloadPolicy::default().queue_bound(0).validate().is_ok());
    }

    #[test]
    fn breaker_full_cycle() {
        let cfg = BreakerConfig {
            open_after: 3,
            half_open_probes: 2,
            cooldown: SimDuration::from_secs(1),
        };
        let mut b = CircuitBreaker::new(cfg);
        let t0 = SimTime::ZERO;
        // Two faults: still closed (a success in between resets the run).
        assert_eq!(b.record_failure(t0, false), None);
        assert_eq!(b.record_success(t0, false), None);
        assert_eq!(b.record_failure(t0, false), None);
        assert_eq!(b.record_failure(t0, false), None);
        // Third consecutive fault trips it.
        assert_eq!(b.record_failure(t0, false), Some(BreakerEvent::Opened));
        assert!(b.is_open());
        assert_eq!(b.opens(), 1);
        assert_eq!(b.admit(t0), BreakerDecision::Reject);
        // Cool-down elapses: half-open, two probe slots.
        let t1 = t0 + cfg.cooldown;
        assert_eq!(
            b.admit_traced(t1),
            (BreakerDecision::Probe, Some(BreakerEvent::HalfOpened))
        );
        assert_eq!(b.admit_traced(t1), (BreakerDecision::Probe, None));
        assert_eq!(b.admit(t1), BreakerDecision::Reject);
        // Probe success closes and accounts the open time.
        let t2 = t1 + SimDuration::from_millis(500);
        assert_eq!(b.record_success(t2, true), Some(BreakerEvent::Closed));
        assert!(!b.is_open());
        assert_eq!(b.total_open_time(t2), t2.saturating_since(t0));
    }

    #[test]
    fn failed_probe_reopens() {
        let cfg = BreakerConfig {
            open_after: 1,
            ..BreakerConfig::default()
        };
        let mut b = CircuitBreaker::new(cfg);
        let t0 = SimTime::ZERO;
        assert_eq!(b.record_failure(t0, false), Some(BreakerEvent::Opened));
        let t1 = t0 + cfg.cooldown;
        assert_eq!(b.admit(t1), BreakerDecision::Probe);
        assert_eq!(b.record_failure(t1, true), Some(BreakerEvent::Opened));
        assert_eq!(b.opens(), 2);
        assert_eq!(b.admit(t1), BreakerDecision::Reject);
        // Open time keeps accruing across the re-open.
        let t2 = t1 + cfg.cooldown;
        assert_eq!(b.total_open_time(t2), t2.saturating_since(t0));
    }

    #[test]
    fn open_time_counts_in_progress_period() {
        let cfg = BreakerConfig {
            open_after: 1,
            cooldown: SimDuration::from_secs(5),
            ..BreakerConfig::default()
        };
        let mut b = CircuitBreaker::new(cfg);
        let t0 = SimTime::ZERO + SimDuration::from_secs(10);
        b.record_failure(t0, false);
        let t1 = t0 + SimDuration::from_secs(2);
        assert_eq!(b.total_open_time(t1), SimDuration::from_secs(2));
    }

    /// Regression: an invocation that gives up *during* the cool-down
    /// (admitted before the trip, resolving while the breaker fails
    /// fast) must not reset the consecutive-failure streak, and a stale
    /// success in the same window must not either. The streak is only
    /// cleared when the breaker actually closes again.
    #[test]
    fn give_up_during_cooldown_does_not_reset_streak() {
        let cfg = BreakerConfig {
            open_after: 3,
            cooldown: SimDuration::from_secs(1),
            ..BreakerConfig::default()
        };
        let mut b = CircuitBreaker::new(cfg);
        let t0 = SimTime::ZERO;
        assert_eq!(b.record_failure(t0, false), None);
        assert_eq!(b.record_failure(t0, false), None);
        assert_eq!(b.record_failure(t0, false), Some(BreakerEvent::Opened));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.consecutive_failures(), 3, "streak survives the trip");
        let open_until = b.open_until();

        // A straggler invocation gives up mid-cool-down: no transition,
        // no streak reset, no cool-down extension.
        let mid = t0 + SimDuration::from_millis(500);
        assert_eq!(b.record_failure(mid, false), None);
        assert_eq!(b.consecutive_failures(), 3);
        assert_eq!(b.open_until(), open_until);
        // A stale *success* in the same window is equally inert.
        assert_eq!(b.record_success(mid, false), None);
        assert_eq!(b.consecutive_failures(), 3);
        assert_eq!(b.state(), BreakerState::Open);

        // The cool-down boundary is exact: 1 ns early still rejects.
        let just_before = t0 + (cfg.cooldown - SimDuration::from_nanos(1));
        assert_eq!(b.admit(just_before), BreakerDecision::Reject);
        assert_eq!(
            b.admit_traced(open_until),
            (BreakerDecision::Probe, Some(BreakerEvent::HalfOpened))
        );

        // Closing via the probe is what clears the streak: three fresh
        // give-ups are needed to re-open.
        assert_eq!(
            b.record_success(open_until, true),
            Some(BreakerEvent::Closed)
        );
        assert_eq!(b.consecutive_failures(), 0);
        let t2 = open_until + SimDuration::from_millis(1);
        assert_eq!(b.record_failure(t2, false), None);
        assert_eq!(b.record_failure(t2, false), None);
        assert_eq!(b.record_failure(t2, false), Some(BreakerEvent::Opened));
    }
}

//! Deterministic hashing for simulation-internal maps.
//!
//! `std`'s default `RandomState` seeds itself per process, so hash-table
//! *behavior* — iteration order, tombstone dynamics, resize timing —
//! varies run to run even when the simulation is a pure function of
//! `(config, seed)`. No output byte depends on that (the engines never
//! iterate these maps), but allocation timing does: a table with
//! insert/remove churn accumulates DELETED control slots at
//! seed-dependent positions and rehashes or resizes at a seed-dependent
//! instant, which the tier-2 allocation regression test
//! (`crates/core/tests/alloc_steady_state.rs`) would see as a flaky
//! one-count failure. Hot churn maps therefore use this fixed-seed
//! hasher — the same rotate-xor-multiply folding as rustc's FxHash,
//! plenty for the small integer keys (task ids, job ids) they store,
//! and **not** DoS-resistant, which is fine for keys the simulation
//! itself generates.

use std::hash::{BuildHasherDefault, Hasher};

/// Fixed-seed rotate-xor-multiply hasher (FxHash-style). Behavior is a
/// pure function of the written bytes — no per-process state.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

/// The golden-ratio-derived odd multiplier used by rustc's FxHash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashMap` whose internal behavior (and therefore allocation
/// timing) is a pure function of its inputs. Construct with
/// `DetHashMap::default()`.
pub type DetHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn map_works() {
        let mut m: DetHashMap<u32, u64> = DetHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, u64::from(i) * 3);
        }
        for i in (0..1000u32).step_by(2) {
            assert_eq!(m.remove(&i), Some(u64::from(i) * 3));
        }
        assert_eq!(m.len(), 500);
        assert_eq!(m.get(&501), Some(&1503));
    }
}

//! Explicit-state model checking for coordination protocols.
//!
//! The DES engine samples *one* schedule per seed; this module exhausts
//! *every* schedule of a small protocol instance instead (dslab-mp style).
//! A protocol is lifted behind the pure step-function interface
//! [`McModel`]: the checker snapshots state by cloning, enumerates every
//! enabled action, applies each to a fresh copy, and recurses — a
//! depth-bounded DFS over the full interleaving/fault-placement tree,
//! deduplicating revisited states by a stable 64-bit fingerprint.
//!
//! Safety invariants are evaluated at **every** reached state; the first
//! (shortest) violation is reported as a [`Schedule`] — a replayable list
//! of timed actions that any host (the DES engine included) can re-apply
//! step by step to reproduce the violation outside the checker.
//!
//! Everything here is deterministic: no RNG, no wall clock, no iteration
//! over hash maps (the `seen` set is only ever probed by key). Two runs of
//! [`check`] on the same model produce byte-identical reports, regardless
//! of thread count or platform.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::overload::{BreakerConfig, BreakerDecision, BreakerEvent, BreakerState};
use crate::time::SimTime;
use crate::trace::{ArgValue, TraceHandle};

/// A protocol lifted behind a pure step function, explorable by [`check`].
///
/// Implementations must be *deterministic*: `enabled` must list actions in
/// a stable order, and `apply` must be a pure function of the state and
/// the action (no RNG, no ambient time). `Clone` is the checker's snapshot
/// mechanism and `Hash` its state fingerprint — every field that can
/// influence future behaviour must feed both.
pub trait McModel: Clone + Hash {
    /// One enabled event: a message delivery, a timer fire, or a fault
    /// injection point.
    type Action: Clone + fmt::Debug;

    /// Appends every action enabled in the current state to `out`, in a
    /// deterministic order. An empty set marks a terminal state.
    fn enabled(&self, out: &mut Vec<Self::Action>);

    /// Applies one enabled action.
    fn apply(&mut self, action: &Self::Action);

    /// The safety invariant, evaluated at every reached state. `Err`
    /// carries the violation message shown in the counterexample.
    fn invariant(&self) -> Result<(), String>;

    /// The virtual instant the state has reached; recorded per step so a
    /// counterexample replays on the DES clock.
    fn now(&self) -> SimTime;

    /// Human-readable label for an action (schedule/trace rendering).
    fn describe(&self, action: &Self::Action) -> String {
        format!("{action:?}")
    }
}

/// FNV-1a 64-bit hasher: stable across platforms, Rust versions, and
/// processes, unlike `DefaultHasher` — state counts derived from
/// fingerprint dedup land in golden-pinned output, so the hash function
/// itself is part of the byte-determinism contract.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The stable fingerprint [`check`] dedupes states by.
pub fn fingerprint<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = Fnv64::default();
    value.hash(&mut h);
    h.finish()
}

/// Exploration bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McConfig {
    /// Maximum schedule length explored (DFS depth bound).
    pub max_depth: usize,
    /// Hard cap on distinct states visited (runaway-model backstop).
    pub max_states: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            max_depth: 40,
            max_states: 5_000_000,
        }
    }
}

/// Exploration statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct McStats {
    /// Distinct states whose invariant was evaluated.
    pub states: u64,
    /// Transitions applied (including ones leading to deduped states).
    pub transitions: u64,
    /// Transitions that reached an already-explored state.
    pub deduped: u64,
    /// Deepest schedule reached.
    pub max_depth: usize,
    /// States with no enabled action within the depth bound.
    pub terminals: u64,
    /// `true` if the `max_states` cap — or, before any violation was
    /// found, the depth bound — truncated the search (the "zero
    /// violations" verdict is then only valid for the explored prefix).
    pub truncated: bool,
}

/// One step of a replayable counterexample schedule.
#[derive(Debug, Clone)]
pub struct ScheduleStep<A> {
    /// The virtual instant at which the action lands.
    pub at: SimTime,
    /// Rendered action label.
    pub label: String,
    /// The action itself, re-applicable through [`McModel::apply`].
    pub action: A,
}

/// A replayable schedule: the exact action sequence that drove the model
/// from its initial state to a violation.
#[derive(Debug, Clone, Default)]
pub struct Schedule<A> {
    /// Steps in application order; `at` is non-decreasing.
    pub steps: Vec<ScheduleStep<A>>,
}

impl<A> Schedule<A> {
    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the violation is in the initial state itself.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Emits the schedule as trace instants (category `"mc"`, one
    /// `"step"` event per action), so a counterexample can ride the
    /// standard `sim::trace` export pipeline next to DES events.
    pub fn emit_trace(&self, tracer: &TraceHandle) {
        for (i, step) in self.steps.iter().enumerate() {
            tracer.instant(
                "mc",
                "step",
                0,
                step.at,
                vec![
                    ("index", ArgValue::U64(i as u64)),
                    ("action", ArgValue::Str(step.label.clone())),
                ],
            );
        }
    }
}

impl<A> fmt::Display for Schedule<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(f, "  {i:>3}. t={} {}", step.at, step.label)?;
        }
        Ok(())
    }
}

/// A safety violation plus the schedule that reaches it.
#[derive(Debug, Clone)]
pub struct Violation<A> {
    /// The invariant's error message.
    pub message: String,
    /// Schedule length (depth at which the violation fired).
    pub depth: usize,
    /// The replayable schedule.
    pub schedule: Schedule<A>,
}

/// Result of one [`check`] run.
#[derive(Debug, Clone)]
pub struct McReport<A> {
    /// Exploration statistics.
    pub stats: McStats,
    /// The shortest violation found, if any.
    pub violation: Option<Violation<A>>,
}

impl<A> McReport<A> {
    /// `true` when the explored space satisfied every invariant.
    pub fn holds(&self) -> bool {
        self.violation.is_none()
    }
}

struct Dfs<'a, M: McModel> {
    cfg: &'a McConfig,
    /// fingerprint → shallowest depth at which the state was expanded. A
    /// state reached again at a *strictly shallower* depth is re-expanded
    /// (it has more remaining budget than before), which both preserves
    /// exhaustiveness under the depth bound and keeps reported
    /// counterexamples shortest-first.
    seen: HashMap<u64, usize>,
    stats: McStats,
    best: Option<Violation<M::Action>>,
    /// Current depth bound; shrinks below each found violation so only
    /// strictly shorter counterexamples are still pursued.
    bound: usize,
    path: Vec<ScheduleStep<M::Action>>,
    scratch: Vec<Vec<M::Action>>,
}

impl<M: McModel> Dfs<'_, M> {
    fn visit(&mut self, state: &M, depth: usize) {
        self.stats.states += 1;
        self.stats.max_depth = self.stats.max_depth.max(depth);
        if let Err(message) = state.invariant() {
            let shorter = self.best.as_ref().is_none_or(|b| depth < b.depth);
            if shorter {
                self.best = Some(Violation {
                    message,
                    depth,
                    schedule: Schedule {
                        steps: self.path.clone(),
                    },
                });
                // Only strictly shorter counterexamples are interesting
                // from here on.
                self.bound = depth.saturating_sub(1);
            }
            return;
        }
        if self.stats.states >= self.cfg.max_states {
            self.stats.truncated = true;
            return;
        }
        let mut actions = self.scratch.pop().unwrap_or_default();
        actions.clear();
        state.enabled(&mut actions);
        if actions.is_empty() {
            self.stats.terminals += 1;
            self.scratch.push(actions);
            return;
        }
        if depth >= self.bound {
            // A non-terminal state was cut off by the depth bound. That
            // only forfeits exhaustiveness while no violation has been
            // found — once one has, the bound deliberately shrinks to
            // chase strictly shorter counterexamples.
            if self.best.is_none() {
                self.stats.truncated = true;
            }
            self.scratch.push(actions);
            return;
        }
        for action in &actions {
            if depth >= self.bound {
                break;
            }
            let mut next = state.clone();
            next.apply(action);
            self.stats.transitions += 1;
            let fp = fingerprint(&next);
            let nd = depth + 1;
            match self.seen.get(&fp) {
                Some(&d0) if d0 <= nd => {
                    self.stats.deduped += 1;
                    continue;
                }
                _ => {
                    self.seen.insert(fp, nd);
                }
            }
            self.path.push(ScheduleStep {
                at: next.now(),
                label: state.describe(action),
                action: action.clone(),
            });
            self.visit(&next, nd);
            self.path.pop();
        }
        self.scratch.push(actions);
    }
}

/// Exhaustively explores `root` up to `cfg.max_depth`, checking the
/// model's invariant at every reached state.
///
/// Returns statistics plus the shortest violation found (the search
/// continues after a violation with a tightened depth bound, so the
/// reported counterexample is minimal over the explored space).
pub fn check<M: McModel>(root: &M, cfg: &McConfig) -> McReport<M::Action> {
    let mut dfs = Dfs::<M> {
        cfg,
        seen: HashMap::new(),
        stats: McStats::default(),
        best: None,
        bound: cfg.max_depth,
        path: Vec::new(),
        scratch: Vec::new(),
    };
    dfs.seen.insert(fingerprint(root), 0);
    dfs.visit(root, 0);
    McReport {
        stats: dfs.stats,
        violation: dfs.best,
    }
}

/// Specification mirror of the circuit breaker's state machine.
///
/// The monitor replays the breaker *contract* — closed → open after
/// `open_after` consecutive give-ups, open → half-open only after the full
/// cool-down, half-open → closed only through a successful probe — and
/// compares every observed decision and event against it. A divergence is
/// a legality violation: the implementation (or a mutated variant) took a
/// transition the specification forbids.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BreakerMonitor {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive: u32,
    open_until: SimTime,
    probes: u32,
}

impl BreakerMonitor {
    /// A monitor for a breaker starting closed with `cfg`.
    pub fn new(cfg: BreakerConfig) -> Self {
        BreakerMonitor {
            cfg,
            state: BreakerState::Closed,
            consecutive: 0,
            open_until: SimTime::ZERO,
            probes: 0,
        }
    }

    /// The state the specification says the breaker must be in.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Checks one admission decision (and its optional transition event)
    /// against the specification, advancing the mirror.
    pub fn on_admit(
        &mut self,
        now: SimTime,
        decision: BreakerDecision,
        event: Option<BreakerEvent>,
    ) -> Result<(), String> {
        let (want, want_ev) = match self.state {
            BreakerState::Closed => (BreakerDecision::Admit, None),
            BreakerState::Open => {
                if now >= self.open_until {
                    self.state = BreakerState::HalfOpen;
                    self.probes = 1;
                    (BreakerDecision::Probe, Some(BreakerEvent::HalfOpened))
                } else {
                    (BreakerDecision::Reject, None)
                }
            }
            BreakerState::HalfOpen => {
                if self.probes < self.cfg.half_open_probes {
                    self.probes += 1;
                    (BreakerDecision::Probe, None)
                } else {
                    (BreakerDecision::Reject, None)
                }
            }
        };
        if decision != want || event != want_ev {
            return Err(format!(
                "breaker legality: admit at t={now} decided {decision:?} (event \
                 {event:?}) but the specification requires {want:?} (event {want_ev:?})"
            ));
        }
        Ok(())
    }

    /// Checks one reported attempt outcome against the specification.
    pub fn on_outcome(
        &mut self,
        now: SimTime,
        success: bool,
        probe: bool,
        event: Option<BreakerEvent>,
    ) -> Result<(), String> {
        let want_ev = if success {
            if probe && self.state == BreakerState::HalfOpen {
                self.state = BreakerState::Closed;
                self.probes = 0;
                self.consecutive = 0;
                Some(BreakerEvent::Closed)
            } else {
                // A non-probe outcome only touches the failure streak
                // while the breaker is closed; stale results resolving
                // during a cool-down must not perturb it.
                if self.state == BreakerState::Closed {
                    self.consecutive = 0;
                }
                None
            }
        } else if probe && self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Open;
            self.probes = 0;
            self.open_until = now + self.cfg.cooldown;
            Some(BreakerEvent::Opened)
        } else if self.state == BreakerState::Closed {
            self.consecutive += 1;
            if self.consecutive >= self.cfg.open_after {
                self.state = BreakerState::Open;
                self.open_until = now + self.cfg.cooldown;
                Some(BreakerEvent::Opened)
            } else {
                None
            }
        } else {
            None
        };
        if event != want_ev {
            return Err(format!(
                "breaker legality: outcome (success={success}, probe={probe}) at t={now} \
                 produced event {event:?} but the specification requires {want_ev:?}"
            ));
        }
        Ok(())
    }

    /// Mirrors [`crate::overload::CircuitBreaker::release_probe`].
    pub fn on_release(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.probes = self.probes.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overload::CircuitBreaker;
    use crate::time::SimDuration;

    /// A toy token-ring: `n` nodes pass a token; a faulty variant can
    /// duplicate it. Invariant: exactly one token.
    #[derive(Clone, Hash)]
    struct Ring {
        holder: u8,
        tokens: u8,
        n: u8,
        steps: u8,
        horizon: u8,
        buggy: bool,
    }

    #[derive(Clone, Debug)]
    enum RingAction {
        Pass,
        Dup,
    }

    impl McModel for Ring {
        type Action = RingAction;

        fn enabled(&self, out: &mut Vec<RingAction>) {
            if self.steps >= self.horizon {
                return;
            }
            out.push(RingAction::Pass);
            if self.buggy {
                out.push(RingAction::Dup);
            }
        }

        fn apply(&mut self, action: &RingAction) {
            self.steps += 1;
            match action {
                RingAction::Pass => self.holder = (self.holder + 1) % self.n,
                RingAction::Dup => self.tokens += 1,
            }
        }

        fn invariant(&self) -> Result<(), String> {
            if self.tokens == 1 {
                Ok(())
            } else {
                Err(format!("{} tokens in the ring", self.tokens))
            }
        }

        fn now(&self) -> SimTime {
            SimTime::from_secs(self.steps as u64)
        }
    }

    fn ring(buggy: bool) -> Ring {
        Ring {
            holder: 0,
            tokens: 1,
            n: 3,
            steps: 0,
            horizon: 6,
            buggy,
        }
    }

    #[test]
    fn correct_ring_explores_exhaustively_with_dedup() {
        let report = check(&ring(false), &McConfig::default());
        assert!(report.holds());
        // Pass-only ring: state = (holder, steps); 6 steps × deterministic
        // action = a single chain of 7 states, no dedup hits.
        assert_eq!(report.stats.states, 7);
        assert_eq!(report.stats.transitions, 6);
        assert_eq!(report.stats.max_depth, 6);
        assert_eq!(report.stats.terminals, 1);
        assert!(!report.stats.truncated);
    }

    #[test]
    fn buggy_ring_yields_minimal_counterexample() {
        let report = check(&ring(true), &McConfig::default());
        let v = report.violation.expect("duplication must be caught");
        // One Dup suffices: the minimal counterexample has depth 1 even
        // though DFS order tries Pass first.
        assert_eq!(v.depth, 1);
        assert_eq!(v.schedule.len(), 1);
        assert_eq!(v.message, "2 tokens in the ring");
        assert!(v.schedule.steps[0].label.contains("Dup"));
    }

    #[test]
    fn depth_bound_truncates_exploration() {
        let cfg = McConfig {
            max_depth: 2,
            ..McConfig::default()
        };
        let report = check(&ring(false), &cfg);
        assert!(report.holds());
        assert_eq!(report.stats.max_depth, 2);
        assert_eq!(report.stats.states, 3);
    }

    #[test]
    fn state_cap_marks_truncation() {
        let cfg = McConfig {
            max_depth: 6,
            max_states: 2,
        };
        let report = check(&ring(false), &cfg);
        assert!(report.stats.truncated);
    }

    #[test]
    fn fingerprints_are_stable() {
        // Pinned value: the FNV-1a fingerprint is part of the
        // byte-determinism contract (state counts land in goldens).
        assert_eq!(fingerprint(&42u64), fingerprint(&42u64));
        assert_ne!(fingerprint(&42u64), fingerprint(&43u64));
        // Published FNV-1a 64 test vectors: empty input = offset basis,
        // "a" = 0xaf63dc4c8601ec8c.
        assert_eq!(Fnv64::default().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv64::default();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn monitor_tracks_faithful_breaker() {
        let cfg = BreakerConfig {
            open_after: 2,
            half_open_probes: 1,
            cooldown: SimDuration::from_secs(1),
        };
        let mut b = CircuitBreaker::new(cfg);
        let mut m = BreakerMonitor::new(cfg);
        let t0 = SimTime::ZERO;
        for _ in 0..2 {
            let (d, e) = b.admit_traced(t0);
            m.on_admit(t0, d, e).unwrap();
            let e = b.record_failure(t0, false);
            m.on_outcome(t0, false, false, e).unwrap();
        }
        assert_eq!(m.state(), BreakerState::Open);
        // Rejected while cooling down.
        let (d, e) = b.admit_traced(t0 + SimDuration::from_millis(500));
        m.on_admit(t0 + SimDuration::from_millis(500), d, e)
            .unwrap();
        assert_eq!(d, BreakerDecision::Reject);
        // Probe after the exact cool-down; success closes.
        let t1 = t0 + cfg.cooldown;
        let (d, e) = b.admit_traced(t1);
        m.on_admit(t1, d, e).unwrap();
        assert_eq!(d, BreakerDecision::Probe);
        let e = b.record_success(t1, true);
        m.on_outcome(t1, true, true, e).unwrap();
        assert_eq!(m.state(), BreakerState::Closed);
    }

    #[test]
    fn monitor_rejects_illegal_transition() {
        let cfg = BreakerConfig {
            open_after: 1,
            half_open_probes: 1,
            cooldown: SimDuration::from_secs(1),
        };
        let mut m = BreakerMonitor::new(cfg);
        m.on_outcome(SimTime::ZERO, false, false, Some(BreakerEvent::Opened))
            .unwrap();
        // An open breaker before cool-down must reject; claiming Admit is
        // the "skips half-open" bug shape.
        let err = m
            .on_admit(
                SimTime::from_secs(2),
                BreakerDecision::Admit,
                Some(BreakerEvent::Closed),
            )
            .unwrap_err();
        assert!(err.contains("breaker legality"), "{err}");
        assert!(err.contains("Probe"), "{err}");
    }
}

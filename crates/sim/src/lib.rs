//! # hivemind-sim
//!
//! Deterministic discrete-event simulation (DES) kernel underpinning the
//! HiveMind reproduction.
//!
//! The paper validates its scalability results with "a validated,
//! event-driven simulator … based on queueing network principles"
//! (Sec. 5.6). This crate is that simulator's foundation:
//!
//! * [`time`] — nanosecond-resolution virtual time ([`SimTime`],
//!   [`SimDuration`]) with no floating-point drift.
//! * [`engine`] — a generic event queue and run loop ([`Engine`],
//!   [`Model`]) with deterministic tie-breaking.
//! * [`calendar`] — the adaptive calendar queue ([`CalendarQueue`]) the
//!   engines schedule through: heap-identical `(time, tiebreak)` order at
//!   O(1) amortized cost, shadow-checked against a reference heap in
//!   debug builds.
//! * [`component`] — the [`Component`] state-machine
//!   interface that lets independent substrates (network, FaaS cluster,
//!   swarm) compose into one simulation without a workspace-wide event enum.
//! * [`rng`] — a forkable, named random-stream hierarchy so adding draws in
//!   one subsystem never perturbs another.
//! * [`dist`] — service-time distributions (constant, uniform, exponential,
//!   log-normal, bounded Pareto, empirical).
//! * [`stats`] — streaming summaries, percentile estimation, histograms,
//!   time series and bandwidth meters used by every experiment harness.
//! * [`hash`] — fixed-seed hashing ([`hash::DetHashMap`]) so hot maps with
//!   insert/remove churn rehash and resize at workload-determined (not
//!   process-seed-determined) instants.
//! * [`faults`] — the declarative fault-injection vocabulary
//!   ([`FaultPlan`], [`RetryPolicy`]) whose draws come from a dedicated
//!   seed-chain lane, so enabling faults never perturbs a fault-free run.
//! * [`disconnect`] — the declarative disconnected-operation vocabulary
//!   ([`DisconnectPolicy`]): lease-based autonomy during partitions,
//!   bounded update buffering, and exactly-once replay at heal — zero RNG
//!   of its own, inert by default.
//! * [`overload`] — the declarative overload-control vocabulary
//!   ([`OverloadPolicy`], [`CircuitBreaker`]): bounded admission, load
//!   shedding, circuit breaking, and brownout spillover, all decided
//!   without RNG so the plane is inert-by-default and byte-deterministic.
//! * [`trace`] — zero-cost-when-disabled structured tracing ([`Tracer`],
//!   [`TraceHandle`]) with JSONL and Chrome `trace_event` exporters, so a
//!   run can be replayed event by event in Perfetto.
//! * [`shard`] — spatial sharding primitives ([`ShardMap`], [`EffectKey`],
//!   order-stable merge) for the multi-core conservative-lookahead engine;
//!   `HIVEMIND_SHARDS` changes wall-clock time, never an output byte.
//!
//! Everything in this crate is pure computation: a run is a function of
//! `(model, seed)` and nothing else, which is what makes the reproduction's
//! figures replayable.
//!
//! ## Example
//!
//! ```rust
//! use hivemind_sim::engine::{Engine, Model, Context};
//! use hivemind_sim::time::{SimDuration, SimTime};
//!
//! /// Counts ticks until told to stop.
//! struct Ticker { ticks: u32 }
//! enum Ev { Tick }
//!
//! impl Model for Ticker {
//!     type Event = Ev;
//!     fn handle(&mut self, ctx: &mut Context<Ev>, _ev: Ev) {
//!         self.ticks += 1;
//!         if self.ticks < 10 {
//!             ctx.schedule_after(SimDuration::from_millis(1), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Ticker { ticks: 0 });
//! engine.schedule_at(SimTime::ZERO, Ev::Tick);
//! engine.run_to_completion();
//! assert_eq!(engine.model().ticks, 10);
//! assert_eq!(engine.now(), SimTime::ZERO + SimDuration::from_millis(9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod component;
pub mod disconnect;
pub mod dist;
pub mod engine;
pub mod faults;
pub mod hash;
pub mod mc;
pub mod overload;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod trace;

pub use calendar::{CalendarKey, CalendarQueue};
pub use component::Component;
pub use disconnect::DisconnectPolicy;
pub use dist::Dist;
pub use engine::{Context, Engine, Model};
pub use faults::{FaultPlan, FaultPlanError, RetryDecision, RetryPolicy};
pub use mc::{McConfig, McModel, McReport};
pub use overload::{CircuitBreaker, OverloadPolicy};
pub use rng::RngForge;
pub use shard::{merge_keyed_into, EffectKey, ShardMap};
pub use stats::Summary;
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEvent, TraceHandle, Tracer};

//! An adaptive calendar queue: the DES engine's priority queue.
//!
//! A calendar queue (Brown, CACM 1988) hashes events into time buckets —
//! "days" of a fixed width on a circular "year" — and pops by walking the
//! bucket the cursor points at. With the bucket width matched to the
//! inter-event gap, push and pop are O(1) amortized and the hot path
//! touches one short sorted bucket instead of the O(log n) pointer-chasing
//! cascade of a binary heap. That difference is decisive here: a 100k-device
//! mission front-loads millions of future captures, and a heap that size
//! costs ~20 cache-missing levels per operation.
//!
//! Buckets are ring buffers sorted ascending by key, so the two patterns a
//! DES actually produces are both O(1): keys arriving in increasing order
//! (including the all-devices-capture-at-second-`t` tie burst, which lands
//! entirely in one bucket) append at the back, and the minimum pops off
//! the front.
//!
//! Three properties this implementation guarantees:
//!
//! * **Total order, heap-identical.** Entries pop in ascending [`CalendarKey`]
//!   order; entries with fully equal keys pop in insertion (FIFO) order.
//!   A `debug_assertions` build shadows every operation against a reference
//!   `BinaryHeap` and asserts the popped key matches, so any divergence
//!   fails loudly in tier-1 tests rather than silently reordering events.
//! * **O(1) `peek` from `&self`.** The minimum is cached eagerly (recomputed
//!   after each pop by scanning forward from the cursor), so engines can
//!   answer "when is the next event?" without mutating the queue.
//! * **Adaptive width.** Bucket width is re-derived from the observed mean
//!   pop gap at each resize, and the bucket count tracks the population
//!   (grow at load > 2, shrink at load < ⅛), so both a 2-event ping-pong
//!   and a 6M-entry capture backlog get near-ideal bucket occupancy. A
//!   sparse-tail fallback (one full lap without a hit → direct search over
//!   bucket minima) bounds the worst case for any width mismatch.

use std::collections::VecDeque;

use crate::time::SimTime;

/// A key a [`CalendarQueue`] can order: a total order whose primary
/// component is virtual time.
///
/// The queue buckets entries by [`CalendarKey::time`] and breaks ties
/// (same bucket, or same instant) by the key's full `Ord`. Any tuple
/// `(SimTime, tiebreak…)` with derived ordering qualifies.
pub trait CalendarKey: Copy + Ord {
    /// The time component used for bucket placement.
    fn time(&self) -> SimTime;
}

impl CalendarKey for SimTime {
    fn time(&self) -> SimTime {
        *self
    }
}

impl CalendarKey for (SimTime, u64) {
    fn time(&self) -> SimTime {
        self.0
    }
}

impl CalendarKey for (SimTime, u32) {
    fn time(&self) -> SimTime {
        self.0
    }
}

impl CalendarKey for crate::shard::EffectKey {
    fn time(&self) -> SimTime {
        self.at
    }
}

/// Fewest buckets the calendar ever holds.
const MIN_BUCKETS: usize = 16;
/// Most buckets the calendar ever holds (2^22 bucket headers is already
/// ~130 MB; real populations resize long before this).
const MAX_BUCKETS: usize = 1 << 22;
/// Initial bucket width: 2^10 ns ≈ 1 µs, the DES kernel's natural gap.
const DEFAULT_SHIFT: u32 = 10;
/// Widest bucket: 2^40 ns ≈ 18 min. Beyond this the direct-search
/// fallback is cheaper than the cursor walk.
const MAX_SHIFT: u32 = 40;
/// Pops needed before a resize trusts the observed gap statistics.
const REBUILD_MIN_POPS: u64 = 16;
/// Width-drift tolerance in shift steps: once the observed mean pop gap
/// is ≥ 2^5 = 32× off the bucket width in either direction, the next
/// drift check forces a rebuild even if the population never crossed a
/// size threshold. This is what rescues the "front-load millions of
/// future captures, then drain" pattern: all pushes happen before any
/// pop, so size-triggered rebuilds adapt the count but never the width.
const DRIFT_SHIFT: u32 = 5;
/// Drift checks run every `DRIFT_CHECK_MASK + 1` pops (the check costs a
/// division, which would be measurable at nine-digit pop rates).
const DRIFT_CHECK_MASK: u64 = 0xFF;
/// Capacity classes in the spare-buffer pool (`floor(log2(capacity))`,
/// saturated into the top class). 32 covers any realistic ring buffer.
const POOL_CLASSES: usize = 32;

/// A priority queue of `(K, V)` entries popping in ascending `K` order,
/// implemented as an adaptive calendar (see module docs).
///
/// Semantically interchangeable with a min-heap over `K` plus FIFO
/// tie-breaking on fully-equal keys; `debug_assertions` builds verify
/// exactly that against a live reference heap.
///
/// # Examples
///
/// ```rust
/// use hivemind_sim::calendar::CalendarQueue;
/// use hivemind_sim::time::SimTime;
///
/// let mut q: CalendarQueue<(SimTime, u64), &str> = CalendarQueue::new();
/// q.push((SimTime::from_secs(2), 0), "later");
/// q.push((SimTime::from_secs(1), 1), "sooner");
/// assert_eq!(q.peek(), Some((SimTime::from_secs(1), 1)));
/// assert_eq!(q.pop(), Some(((SimTime::from_secs(1), 1), "sooner")));
/// assert_eq!(q.pop(), Some(((SimTime::from_secs(2), 0), "later")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct CalendarQueue<K, V> {
    /// Each bucket holds its entries sorted *ascending* by key: the bucket
    /// minimum is `front()`, in-order arrivals are `push_back`. The vec is
    /// kept at its high-water length — shrinking only lowers [`Self::mask`]
    /// — so every ring buffer keeps its capacity across rebuilds and a
    /// steady-state resize cycle never touches the allocator.
    buckets: Vec<VecDeque<(K, V)>>,
    /// Active bucket count minus one; the count is always a power of two
    /// and at most `buckets.len()`. Only `buckets[..=mask]` are in use.
    mask: usize,
    /// Bucket width is `1 << shift` nanoseconds.
    shift: u32,
    /// Scan start, aligned to a bucket boundary. Invariant: every stored
    /// entry's time is ≥ `cursor` (pushes into the past rewind it).
    cursor: u64,
    len: usize,
    /// The minimum entry, held out of the buckets entirely. `Some` iff
    /// `len > 0`. Small queues (the DES kernel's steady state is one or
    /// two pending events) live in this slot and never touch a bucket.
    head: Option<(K, V)>,
    /// Gap statistics feeding the adaptive width (virtual-time ns).
    last_pop_ns: u64,
    anchor_pop_ns: u64,
    pops_since_rebuild: u64,
    /// Lifetime push+pop count (profiling breakdowns read this; it never
    /// feeds scheduling decisions).
    ops: u64,
    /// Rebuild scratch, retained across rebuilds so redistribution reuses
    /// one high-water buffer instead of allocating per resize.
    spill: Vec<(K, V)>,
    /// Spare ring buffers recycled between buckets, grouped into
    /// power-of-two capacity classes. The hot window walks forward
    /// through physical bucket indices as virtual time advances, so
    /// capacity left on a drained bucket would strand there while the
    /// next window's buckets allocate from scratch; instead an emptied
    /// bucket donates its buffer here and a bucket receiving its first
    /// entry takes back the largest available (so the recurring tie
    /// burst finds a deep buffer instead of regrowing a shallow one).
    /// Pure pointer swaps, O(1) via `pool_mask` — never affects order.
    pool: [Vec<VecDeque<(K, V)>>; POOL_CLASSES],
    /// Bit `c` set iff `pool[c]` is non-empty.
    pool_mask: u32,
    /// Rebuild scratch: occupancy of each target bucket, then the heavy
    /// ones sorted by need. Retained like `spill`.
    rebuild_counts: Vec<u32>,
    rebuild_heavy: Vec<(u32, u32)>,
    /// Reference heap shadowing every push/pop in debug builds.
    #[cfg(debug_assertions)]
    shadow: std::collections::BinaryHeap<std::cmp::Reverse<K>>,
}

impl<K: CalendarKey, V> CalendarQueue<K, V> {
    /// An empty queue with the default geometry.
    pub fn new() -> CalendarQueue<K, V> {
        CalendarQueue::with_capacity(0)
    }

    /// An empty queue pre-sized for roughly `capacity` concurrent
    /// entries, skipping the first few growth rebuilds.
    pub fn with_capacity(capacity: usize) -> CalendarQueue<K, V> {
        let nb = capacity.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        CalendarQueue {
            buckets: (0..nb).map(|_| VecDeque::new()).collect(),
            mask: nb - 1,
            shift: DEFAULT_SHIFT,
            cursor: 0,
            len: 0,
            head: None,
            last_pop_ns: 0,
            anchor_pop_ns: 0,
            pops_since_rebuild: 0,
            ops: 0,
            spill: Vec::new(),
            pool: std::array::from_fn(|_| Vec::new()),
            pool_mask: 0,
            rebuild_counts: Vec::new(),
            rebuild_heavy: Vec::new(),
            #[cfg(debug_assertions)]
            shadow: std::collections::BinaryHeap::new(),
        }
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lifetime push+pop operation count, for profiling breakdowns.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The minimum key without removing it. O(1), `&self`.
    #[inline]
    pub fn peek(&self) -> Option<K> {
        self.head.as_ref().map(|&(k, _)| k)
    }

    /// Removes all entries, keeping bucket allocations.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
        self.head = None;
        self.pops_since_rebuild = 0;
        #[cfg(debug_assertions)]
        self.shadow.clear();
    }

    /// Parks an emptied bucket's ring buffer for reuse. O(1).
    #[inline]
    fn donate_spare(&mut self, d: VecDeque<(K, V)>) {
        debug_assert!(d.is_empty() && d.capacity() > 0);
        let cls = (usize::BITS - 1 - d.capacity().leading_zeros()).min(31) as usize;
        self.pool[cls].push(d);
        self.pool_mask |= 1 << cls;
    }

    /// Hands out the largest parked ring buffer, if any. O(1).
    #[inline]
    fn take_spare(&mut self) -> Option<VecDeque<(K, V)>> {
        if self.pool_mask == 0 {
            return None;
        }
        let cls = (u32::BITS - 1 - self.pool_mask.leading_zeros()) as usize;
        let d = self.pool[cls].pop().expect("mask bit implies spares");
        if self.pool[cls].is_empty() {
            self.pool_mask &= !(1 << cls);
        }
        Some(d)
    }

    #[inline]
    fn align(&self, t: u64) -> u64 {
        (t >> self.shift) << self.shift
    }

    #[inline]
    fn bucket_index(&self, t: u64) -> usize {
        ((t >> self.shift) as usize) & self.mask
    }

    /// Places an entry into its bucket. `before_equals` selects which side
    /// of fully-equal keys the entry lands on: a fresh push goes after
    /// them (FIFO), a displaced old head goes back before them (it was
    /// inserted earlier than anything still stored).
    #[inline]
    fn bucket_insert(&mut self, key: K, value: V, before_equals: bool) {
        let b = self.bucket_index(key.time().as_nanos());
        if self.buckets[b].capacity() == 0 {
            if let Some(spare) = self.take_spare() {
                self.buckets[b] = spare;
            }
        }
        let bucket = &mut self.buckets[b];
        // Ascending bucket: in-order keys append at the back; only
        // out-of-order arrivals pay a positional insert.
        match bucket.back() {
            Some((bk, _)) if *bk > key || (before_equals && *bk >= key) => {
                let at = if before_equals {
                    bucket.partition_point(|(k, _)| *k < key)
                } else {
                    bucket.partition_point(|(k, _)| *k <= key)
                };
                bucket.insert(at, (key, value));
            }
            _ => bucket.push_back((key, value)),
        }
    }

    /// Inserts an entry. Equal keys pop in insertion order.
    #[inline]
    pub fn push(&mut self, key: K, value: V) {
        let t = key.time().as_nanos();
        if self.len == 0 || t < self.cursor {
            self.cursor = self.align(t);
        }
        match self.head {
            None => self.head = Some((key, value)),
            Some((hk, _)) if key < hk => {
                let (ok, ov) = self.head.replace((key, value)).expect("head present");
                self.bucket_insert(ok, ov, true);
            }
            _ => self.bucket_insert(key, value, false),
        }
        self.len += 1;
        self.ops += 1;
        #[cfg(debug_assertions)]
        self.shadow.push(std::cmp::Reverse(key));
        if self.len > 2 * (self.mask + 1) && self.mask + 1 < MAX_BUCKETS {
            self.rebuild();
        }
    }

    /// Removes and returns the minimum entry.
    #[inline]
    pub fn pop(&mut self) -> Option<(K, V)> {
        let (k, v) = self.head.take()?;
        self.len -= 1;
        self.ops += 1;
        let t = k.time().as_nanos();
        self.cursor = self.align(t);
        self.last_pop_ns = t;
        self.pops_since_rebuild += 1;
        if self.len > 0 {
            let (_, b) = self.scan_min();
            let bucket = &mut self.buckets[b];
            self.head = bucket.pop_front();
            if bucket.is_empty() && bucket.capacity() > 0 {
                let spare = std::mem::take(bucket);
                self.donate_spare(spare);
            }
        }
        #[cfg(debug_assertions)]
        {
            let std::cmp::Reverse(sk) = self.shadow.pop().expect("shadow tracks len");
            assert!(
                sk == k,
                "calendar queue pop order diverged from reference heap"
            );
        }
        if 8 * self.len < self.mask + 1 && self.mask + 1 > MIN_BUCKETS {
            self.rebuild();
        } else if self.pops_since_rebuild & DRIFT_CHECK_MASK == 0 {
            if let Some(target) = self.observed_shift() {
                if target.abs_diff(self.shift) >= DRIFT_SHIFT {
                    self.rebuild();
                }
            }
        }
        Some((k, v))
    }

    /// The bucket-width shift matching the observed mean pop gap, when
    /// enough pops have been seen since the last rebuild to trust it.
    fn observed_shift(&self) -> Option<u32> {
        if self.pops_since_rebuild < REBUILD_MIN_POPS {
            return None;
        }
        let span = self.last_pop_ns.saturating_sub(self.anchor_pop_ns);
        let avg = (span / self.pops_since_rebuild).clamp(1, 1 << MAX_SHIFT);
        Some(avg.next_power_of_two().trailing_zeros().min(MAX_SHIFT))
    }

    /// Finds the minimum entry by walking buckets from the cursor; one
    /// windowed lap, then a direct search over bucket minima (sparse tail).
    /// Requires `len > 0`.
    fn scan_min(&mut self) -> (K, usize) {
        debug_assert!(self.len > 0);
        let width = 1u64 << self.shift;
        let mut b = self.bucket_index(self.cursor);
        let mut wend = self.cursor.saturating_add(width);
        for _ in 0..=self.mask {
            if let Some(&(k, _)) = self.buckets[b].front() {
                if k.time().as_nanos() < wend {
                    self.cursor = self.align(k.time().as_nanos());
                    return (k, b);
                }
            }
            b = (b + 1) & self.mask;
            let next = wend.saturating_add(width);
            if next == wend {
                break; // saturated at the end of time
            }
            wend = next;
        }
        let mut best: Option<(K, usize)> = None;
        for (i, bucket) in self.buckets[..=self.mask].iter().enumerate() {
            if let Some(&(k, _)) = bucket.front() {
                if best.is_none_or(|(bk, _)| k < bk) {
                    best = Some((k, i));
                }
            }
        }
        let (k, i) = best.expect("len > 0 implies some bucket minimum");
        self.cursor = self.align(k.time().as_nanos());
        (k, i)
    }

    /// Resizes the calendar to match the current population and, when
    /// enough pops have been observed, re-derives the bucket width from
    /// the mean pop gap. Preserves FIFO order among equal keys.
    fn rebuild(&mut self) {
        if let Some(shift) = self.observed_shift() {
            self.shift = shift;
        }
        self.anchor_pop_ns = self.last_pop_ns;
        self.pops_since_rebuild = 0;

        let nb = self.len.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        debug_assert!(self.spill.is_empty());
        for i in 0..=self.mask {
            let bucket = &mut self.buckets[i];
            self.spill.extend(bucket.drain(..));
            if bucket.capacity() > 0 {
                let spare = std::mem::take(bucket);
                self.donate_spare(spare);
            }
        }
        // Shrinking only lowers the mask: the tail buckets stay allocated
        // (empty, since everything was just drained) so a later re-grow
        // finds their ring buffers intact.
        if self.buckets.len() < nb {
            self.buckets.resize_with(nb, VecDeque::new);
        }
        self.mask = nb - 1;
        // Pre-assign the deepest spare buffers to the buckets that will
        // need them most. Redistribution order is arbitrary, so without
        // this the big spares land on whichever buckets come first and
        // the tie-burst bucket regrows a shallow one on every rebuild.
        // Only buckets needing ≥ 16 entries matter: smaller buffers are
        // abundant in the pool.
        self.rebuild_counts.clear();
        self.rebuild_counts.resize(nb, 0);
        for &(k, _) in &self.spill {
            let b = ((k.time().as_nanos() >> self.shift) as usize) & self.mask;
            self.rebuild_counts[b] += 1;
        }
        self.rebuild_heavy.clear();
        self.rebuild_heavy.extend(
            self.rebuild_counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c >= 16)
                .map(|(i, &c)| (c, i as u32)),
        );
        self.rebuild_heavy.sort_unstable_by(|a, b| b.cmp(a));
        let mut heavy = std::mem::take(&mut self.rebuild_heavy);
        for &(_, idx) in &heavy {
            match self.take_spare() {
                Some(spare) => self.buckets[idx as usize] = spare,
                None => break,
            }
        }
        heavy.clear();
        self.rebuild_heavy = heavy;
        // Buckets drained front-to-back are ascending, so equal keys come
        // out earliest-insertion first; the push rule (equal appends after)
        // restores the exact FIFO layout. The head slot stays put: it is
        // the global minimum and never lives in a bucket.
        let mut spill = std::mem::take(&mut self.spill);
        for (k, v) in spill.drain(..) {
            self.bucket_insert(k, v, false);
        }
        self.spill = spill;
        if let Some(&(hk, _)) = self.head.as_ref() {
            self.cursor = self.align(hk.time().as_nanos());
        }
    }
}

impl<K: CalendarKey, V> Default for CalendarQueue<K, V> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl<K, V> std::fmt::Debug for CalendarQueue<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalendarQueue")
            .field("len", &self.len)
            .field("buckets", &(self.mask + 1))
            .field("width_ns", &(1u64 << self.shift))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    type Q = CalendarQueue<(SimTime, u64), u64>;

    #[test]
    fn pops_in_key_order() {
        let mut q = Q::new();
        for (i, secs) in [5u64, 1, 9, 3, 3, 7].iter().enumerate() {
            q.push((SimTime::from_secs(*secs), i as u64), i as u64);
        }
        let mut keys = Vec::new();
        while let Some((k, _)) = q.pop() {
            keys.push(k);
        }
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(keys.len(), 6);
    }

    #[test]
    fn equal_keys_pop_fifo() {
        // Identical full keys (the wake-queue case): insertion order wins.
        let mut q: CalendarQueue<(SimTime, u32), u64> = CalendarQueue::new();
        let k = (SimTime::from_secs(1), 7u32);
        for v in 0..10u64 {
            q.push(k, v);
        }
        let vals: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(vals, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn equal_keys_survive_rebuild_in_fifo_order() {
        let mut q: CalendarQueue<(SimTime, u32), u64> = CalendarQueue::new();
        let k = (SimTime::from_secs(1), 7u32);
        // Enough entries to force at least one growth rebuild (load > 2).
        for v in 0..200u64 {
            q.push(k, v);
        }
        let vals: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(vals, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn peek_is_stable_and_non_mutating() {
        let mut q = Q::new();
        assert_eq!(q.peek(), None);
        q.push((SimTime::from_secs(3), 0), 0);
        q.push((SimTime::from_secs(1), 1), 1);
        assert_eq!(q.peek(), Some((SimTime::from_secs(1), 1)));
        assert_eq!(q.peek(), Some((SimTime::from_secs(1), 1)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn interleaved_push_pop_tracks_reference() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut q = Q::new();
        let mut h: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();
        // A deterministic LCG drives a mixed workload with hold pattern.
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut seq = 0u64;
        let mut now = 0u64;
        for round in 0..5_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let gap = x >> 48; // 0..65536 ns
            let key = (SimTime::from_nanos(now + gap), seq);
            seq += 1;
            q.push(key, seq);
            h.push(Reverse(key));
            if round % 3 != 0 {
                let (k, _) = q.pop().expect("non-empty");
                let Reverse(hk) = h.pop().expect("non-empty");
                assert_eq!(k, hk);
                now = k.0.as_nanos();
            }
        }
        while let Some((k, _)) = q.pop() {
            let Reverse(hk) = h.pop().expect("same length");
            assert_eq!(k, hk);
        }
        assert!(h.is_empty());
    }

    #[test]
    fn grows_and_shrinks_without_losing_entries() {
        let mut q = Q::new();
        for i in 0..10_000u64 {
            q.push((SimTime::from_nanos(i * 1_000), i), i);
        }
        assert!(q.mask + 1 > MIN_BUCKETS, "population forced growth");
        let mut n = 0u64;
        let mut last = None;
        while let Some((k, _)) = q.pop() {
            if let Some(p) = last {
                assert!(p <= k);
            }
            last = Some(k);
            n += 1;
        }
        assert_eq!(n, 10_000);
        assert_eq!(q.mask + 1, MIN_BUCKETS, "drain shrank the calendar");
        assert!(
            q.buckets.len() > MIN_BUCKETS,
            "high-water bucket storage is retained across shrinks"
        );
    }

    #[test]
    fn tie_heavy_then_sparse_gaps() {
        // The capture pattern: bursts at whole seconds, then a 1 s void.
        let mut q = Q::new();
        let mut seq = 0u64;
        for sec in 0..20u64 {
            for _ in 0..500 {
                q.push((SimTime::from_secs(sec), seq), seq);
                seq += 1;
            }
        }
        let mut popped = 0u64;
        let mut last = None;
        while let Some((k, _)) = q.pop() {
            if let Some(p) = last {
                assert!(p <= k);
            }
            last = Some(k);
            popped += 1;
        }
        assert_eq!(popped, seq);
    }

    #[test]
    fn front_loaded_backlog_adapts_width_on_drain() {
        // The fig17 mission pattern: a large backlog pushed before any
        // pop (so size rebuilds never see pop-gap stats), with gaps far
        // wider than the default bucket. The drift check must widen the
        // buckets early in the drain instead of lapping empty buckets
        // for the whole run.
        let mut q = Q::new();
        for i in 0..50_000u64 {
            q.push((SimTime::from_nanos(i * 4_000_000), i), i);
        }
        let shift_before = q.shift;
        for _ in 0..2_000 {
            q.pop().expect("backlog");
        }
        assert!(
            q.shift > shift_before,
            "drift rebuild widened buckets: {} -> {}",
            shift_before,
            q.shift
        );
        let mut n = 2_000u64;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 50_000);
    }

    #[test]
    fn far_future_sentinel_is_safe() {
        let mut q = Q::new();
        q.push((SimTime::MAX, 0), 0);
        q.push((SimTime::ZERO, 1), 1);
        assert_eq!(q.pop().map(|(k, _)| k.1), Some(1));
        assert_eq!(q.pop().map(|(k, _)| k.1), Some(0));
    }

    #[test]
    fn push_into_past_rewinds_cursor() {
        let mut q = Q::new();
        q.push((SimTime::from_secs(100), 0), 0);
        let _ = q.pop();
        // After popping at t=100 s the cursor sits there; an external
        // schedule far earlier must still pop first.
        q.push((SimTime::from_secs(200), 1), 1);
        q.push((SimTime::from_secs(1), 2), 2);
        assert_eq!(q.pop().map(|(k, _)| k.1), Some(2));
        assert_eq!(q.pop().map(|(k, _)| k.1), Some(1));
    }

    #[test]
    fn clear_keeps_geometry() {
        let mut q = Q::new();
        for i in 0..100u64 {
            q.push((SimTime::from_secs(i), i), i);
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek(), None);
        q.push((SimTime::from_secs(5) + SimDuration::from_millis(1), 0), 7);
        assert_eq!(q.pop().map(|(_, v)| v), Some(7));
    }
}

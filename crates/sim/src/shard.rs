//! Spatial sharding primitives for the parallel DES engine.
//!
//! A sharded engine partitions its devices into contiguous blocks — one
//! per swarm region — and runs each block's device-local events on its
//! own worker under conservative lookahead. Everything a shard produces
//! for the shared global phase is stamped with an [`EffectKey`] and
//! re-ordered through [`merge_keyed`], whose output depends only on the
//! keys — never on how devices were grouped into shards. That invariance
//! is the heart of the byte-determinism contract: `HIVEMIND_SHARDS`
//! changes wall-clock time, never a single output byte.
//!
//! * [`ShardMap`] — contiguous device → shard assignment (spatial
//!   regions: the controller assigns adjacent field strips to adjacent
//!   device ids, so contiguous id blocks *are* spatial regions).
//! * [`EffectKey`] — the `(time, lane, seq)` merge key; `lane` is a
//!   shard-count-invariant identity (a device id), `seq` a per-lane
//!   monotone counter.
//! * [`merge_keyed`] — order-stable k-way merge of per-shard batches.
//! * [`merge_keyed_into`] — the batched-exchange variant: merges
//!   pre-sorted runs (leftover pending + per-shard buffers) into a
//!   caller-owned vector once per barrier epoch, allocation-free in
//!   steady state.
//! * [`shards_from`] — `HIVEMIND_SHARDS` parsing (default 1: sharding
//!   is opt-in, the single-shard path is the reference semantics).

use crate::time::SimTime;

/// Environment variable selecting the shard count.
pub const SHARDS_ENV: &str = "HIVEMIND_SHARDS";

/// Parses a `HIVEMIND_SHARDS`-style value. `None`, empty, or garbage
/// fall back to 1 (unsharded); `0` or `auto` mean "one shard per
/// available core".
pub fn shards_from(var: Option<&str>) -> u32 {
    let auto = || {
        std::thread::available_parallelism()
            .map(|n| n.get() as u32)
            .unwrap_or(1)
    };
    match var.map(str::trim) {
        Some("0") | Some("auto") => auto(),
        Some(v) => match v.parse::<u32>() {
            Ok(n) if n >= 1 => n,
            _ => 1,
        },
        None => 1,
    }
}

/// Reads the shard count from the environment (see [`shards_from`]).
pub fn shards_from_env() -> u32 {
    shards_from(std::env::var(SHARDS_ENV).ok().as_deref())
}

/// Contiguous device → shard assignment.
///
/// Devices `[first(s), first(s+1))` belong to shard `s`; block sizes
/// differ by at most one. Contiguity is deliberate: the swarm controller
/// hands adjacent field strips to adjacent device ids, so a contiguous
/// id block is a spatial region and intra-shard traffic is
/// neighbour-local.
///
/// # Examples
///
/// ```rust
/// use hivemind_sim::shard::ShardMap;
///
/// let map = ShardMap::new(10, 4);
/// assert_eq!(map.shards(), 4);
/// assert_eq!(map.range(0), 0..3);
/// assert_eq!(map.range(3), 8..10);
/// assert_eq!(map.shard_of(8), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    devices: u32,
    shards: u32,
}

impl ShardMap {
    /// Builds a map of `devices` over `shards` blocks. The shard count
    /// is clamped to `[1, devices]` so every shard owns at least one
    /// device (for `devices == 0`, a single empty shard).
    pub fn new(devices: u32, shards: u32) -> ShardMap {
        ShardMap {
            devices,
            shards: shards.clamp(1, devices.max(1)),
        }
    }

    /// Total devices covered.
    pub fn devices(&self) -> u32 {
        self.devices
    }

    /// Number of shards (≥ 1).
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// First device of shard `s`. Blocks of `ceil(d/n)` cover the first
    /// `d % n` shards, the remainder get `floor(d/n)`.
    pub fn first(&self, s: u32) -> u32 {
        let d = self.devices as u64;
        let n = self.shards as u64;
        let s = s as u64;
        let base = d / n;
        let extra = d % n;
        (s * base + s.min(extra)) as u32
    }

    /// Device range `[first(s), first(s+1))` owned by shard `s`.
    pub fn range(&self, s: u32) -> std::ops::Range<u32> {
        self.first(s)..self.first(s + 1)
    }

    /// The shard owning `device`.
    pub fn shard_of(&self, device: u32) -> u32 {
        debug_assert!(device < self.devices);
        let d = self.devices as u64;
        let n = self.shards as u64;
        let base = d / n;
        let extra = d % n;
        let dev = device as u64;
        let split = extra * (base + 1);
        let s = if dev < split {
            dev / (base + 1)
        } else {
            extra + (dev - split) / base.max(1)
        };
        s as u32
    }
}

/// The order-stable merge key for cross-shard event exchange.
///
/// Ordering is `(time, lane, seq)`. The lane must be a shard-count
/// invariant identity (the engine uses device ids) and `seq` a counter
/// that is monotone per lane, so the sort order of any set of keys is
/// independent of which shard produced which key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EffectKey {
    /// The virtual instant the effect applies at.
    pub at: SimTime,
    /// Shard-count-invariant producer identity (device id).
    pub lane: u32,
    /// Per-lane emission counter (ties within one lane keep causal
    /// order even when an earlier emission is future-dated).
    pub seq: u64,
}

impl EffectKey {
    /// Builds a key.
    pub fn new(at: SimTime, lane: u32, seq: u64) -> EffectKey {
        EffectKey { at, lane, seq }
    }
}

/// Merges per-shard batches of keyed items into one globally ordered
/// stream.
///
/// Each batch must be sorted by key (shards emit in local processing
/// order, which sorts per lane; the engine sorts each batch before
/// handing it over). The output is the unique `(time, lane, seq)` order
/// of the union — by construction independent of how items were
/// distributed across batches, which is what makes the sharded engine's
/// global phase byte-identical for every shard count.
pub fn merge_keyed<T>(mut batches: Vec<Vec<(EffectKey, T)>>) -> Vec<(EffectKey, T)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    match batches.len() {
        0 => return Vec::new(),
        1 => return batches.pop().expect("one batch"),
        _ => {}
    }
    let total = batches.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    // K-way merge over batch cursors; the heap is keyed by the head
    // key with the batch index as a tiebreaker it can never need (keys
    // are unique across shards: one lane lives in exactly one batch).
    let mut cursors: Vec<std::vec::IntoIter<(EffectKey, T)>> =
        batches.into_iter().map(Vec::into_iter).collect();
    let mut heap: BinaryHeap<Reverse<(EffectKey, usize)>> =
        BinaryHeap::with_capacity(cursors.len());
    let mut heads: Vec<Option<(EffectKey, T)>> = Vec::with_capacity(cursors.len());
    for (i, c) in cursors.iter_mut().enumerate() {
        let head = c.next();
        if let Some((k, _)) = &head {
            heap.push(Reverse((*k, i)));
        }
        heads.push(head);
    }
    while let Some(Reverse((_, i))) = heap.pop() {
        let (k, v) = heads[i].take().expect("head present while queued");
        debug_assert!(out
            .last()
            .map(|(p, _): &(EffectKey, T)| *p < k)
            .unwrap_or(true));
        out.push((k, v));
        let next = cursors[i].next();
        if let Some((nk, _)) = &next {
            heap.push(Reverse((*nk, i)));
        }
        heads[i] = next;
    }
    out
}

/// Merges pre-sorted runs of keyed items into `out`, appending in global
/// `(time, lane, seq)` order.
///
/// The batched-exchange counterpart of [`merge_keyed`]: instead of
/// consuming owned per-shard vectors and re-heapifying each item, the
/// caller keeps its effect buffers (and any leftover not-yet-due run from
/// the previous barrier) alive, hands them over as slices once per
/// barrier epoch, and reuses `out` as the next epoch's pending stream.
/// Items must be `Copy` (they are copied out of the runs; the source
/// buffers are untouched and can simply be cleared afterwards).
///
/// Each run must be sorted by key; keys must be unique across runs (one
/// lane lives in exactly one shard). The output order therefore depends
/// only on the union of keys — never on how items were split into runs —
/// and matches [`merge_keyed`] exactly.
pub fn merge_keyed_into<T: Copy>(runs: &[&[(EffectKey, T)]], out: &mut Vec<(EffectKey, T)>) {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    out.reserve(total);
    match runs {
        [] => {}
        [a] => out.extend_from_slice(a),
        [a, b] => merge_two_into(a, b, out),
        _ => {
            // K-way linear pick-min: k is the shard count plus one
            // (tiny), so a scan beats heap bookkeeping.
            let mut cur = vec![0usize; runs.len()];
            loop {
                let mut best: Option<(EffectKey, usize)> = None;
                for (i, r) in runs.iter().enumerate() {
                    if let Some(&(k, _)) = r.get(cur[i]) {
                        if best.is_none_or(|(bk, _)| k < bk) {
                            best = Some((k, i));
                        }
                    }
                }
                let Some((_, i)) = best else { break };
                out.push(runs[i][cur[i]]);
                cur[i] += 1;
            }
        }
    }
    debug_assert!(
        out.windows(2).all(|w| w[0].0 < w[1].0),
        "merged run sorted by unique keys"
    );
}

/// Two-run merge (the single-shard engine's leftover + fresh-batch case),
/// kept allocation-free for the steady-state hot path.
fn merge_two_into<T: Copy>(
    mut a: &[(EffectKey, T)],
    mut b: &[(EffectKey, T)],
    out: &mut Vec<(EffectKey, T)>,
) {
    loop {
        match (a.first(), b.first()) {
            (Some(&(ka, _)), Some(&(kb, _))) => {
                if ka <= kb {
                    out.push(a[0]);
                    a = &a[1..];
                } else {
                    out.push(b[0]);
                    b = &b[1..];
                }
            }
            (Some(_), None) => {
                out.extend_from_slice(a);
                return;
            }
            (None, _) => {
                out.extend_from_slice(b);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_from_parses_and_falls_back() {
        assert_eq!(shards_from(Some("4")), 4);
        assert_eq!(shards_from(Some(" 2 ")), 2);
        assert_eq!(shards_from(None), 1);
        assert_eq!(shards_from(Some("")), 1);
        assert_eq!(shards_from(Some("lots")), 1);
        assert!(shards_from(Some("0")) >= 1);
        assert!(shards_from(Some("auto")) >= 1);
    }

    #[test]
    fn shard_map_blocks_are_contiguous_and_balanced() {
        for devices in [1u32, 2, 7, 16, 100, 4096] {
            for shards in [1u32, 2, 3, 8, 200] {
                let map = ShardMap::new(devices, shards);
                assert!(map.shards() >= 1 && map.shards() <= devices.max(1));
                let mut covered = 0u32;
                for s in 0..map.shards() {
                    let r = map.range(s);
                    assert_eq!(r.start, covered, "contiguous blocks");
                    for dev in r.clone() {
                        assert_eq!(map.shard_of(dev), s, "dev {dev} of {devices}/{shards}");
                    }
                    covered = r.end;
                }
                assert_eq!(covered, devices, "blocks tile the fleet");
                let sizes: Vec<u32> = (0..map.shards())
                    .map(|s| map.range(s).len() as u32)
                    .collect();
                let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
                assert!(max - min <= 1, "balanced within one: {sizes:?}");
            }
        }
    }

    #[test]
    fn merge_equals_global_sort_for_any_partition() {
        // A fixed event population, partitioned two different ways,
        // must merge to the identical stream.
        let key = |ns: u64, lane: u32, seq: u64| EffectKey::new(SimTime::from_nanos(ns), lane, seq);
        let all = vec![
            (key(5, 0, 0), "a"),
            (key(5, 1, 0), "b"),
            (key(5, 2, 0), "c"),
            (key(7, 0, 1), "d"),
            (key(7, 2, 1), "e"),
            (key(9, 1, 1), "f"),
        ];
        let mut expected = all.clone();
        expected.sort_by_key(|&(k, _)| k);

        let by_lane = |lanes: &[&[u32]]| -> Vec<Vec<(EffectKey, &str)>> {
            lanes
                .iter()
                .map(|ls| {
                    all.iter()
                        .filter(|(k, _)| ls.contains(&k.lane))
                        .cloned()
                        .collect()
                })
                .collect()
        };
        for partition in [
            by_lane(&[&[0, 1, 2]]),
            by_lane(&[&[0], &[1], &[2]]),
            by_lane(&[&[0, 1], &[2]]),
            by_lane(&[&[2], &[0, 1]]),
        ] {
            assert_eq!(merge_keyed(partition), expected);
        }
    }

    #[test]
    fn merge_handles_empty_batches() {
        let empty: Vec<Vec<(EffectKey, u8)>> = vec![vec![], vec![]];
        assert!(merge_keyed(empty).is_empty());
        assert!(merge_keyed(Vec::<Vec<(EffectKey, u8)>>::new()).is_empty());
    }

    #[test]
    fn merge_into_matches_merge_keyed_for_any_partition() {
        // A deterministic LCG builds a population of unique keys, split
        // into k runs round-robin by lane; the slice-based merge must
        // reproduce the owned merge byte for byte, for every k.
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut step = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x
        };
        let mut all: Vec<(EffectKey, u64)> = Vec::new();
        let mut seqs = [0u64; 7];
        for i in 0..500u64 {
            let lane = (step() % 7) as u32;
            let at = SimTime::from_nanos(step() % 1_000_000);
            let seq = seqs[lane as usize];
            seqs[lane as usize] += 1;
            all.push((EffectKey::new(at, lane, seq), i));
        }
        for k in [1usize, 2, 3, 5, 7] {
            let mut runs: Vec<Vec<(EffectKey, u64)>> = vec![Vec::new(); k];
            for (key, v) in &all {
                runs[(key.lane as usize) % k].push((*key, *v));
            }
            for r in &mut runs {
                r.sort_by_key(|&(k, _)| k);
            }
            let slices: Vec<&[(EffectKey, u64)]> = runs.iter().map(Vec::as_slice).collect();
            let mut out = Vec::new();
            merge_keyed_into(&slices, &mut out);
            assert_eq!(out, merge_keyed(runs.clone()), "k = {k}");
        }
    }

    #[test]
    fn merge_into_appends_after_existing_prefix() {
        let key = |ns: u64| EffectKey::new(SimTime::from_nanos(ns), 0, ns);
        let mut out = vec![(key(1), 10u64)];
        let a = [(key(2), 20u64), (key(5), 50)];
        let b = [(key(3), 30u64)];
        merge_keyed_into(&[&a, &b], &mut out);
        assert_eq!(
            out,
            vec![(key(1), 10), (key(2), 20), (key(3), 30), (key(5), 50)]
        );
    }

    #[test]
    fn merge_into_handles_empty_runs() {
        let mut out: Vec<(EffectKey, u8)> = Vec::new();
        merge_keyed_into(&[], &mut out);
        assert!(out.is_empty());
        let empty: &[(EffectKey, u8)] = &[];
        merge_keyed_into(&[empty, empty, empty], &mut out);
        assert!(out.is_empty());
    }
}

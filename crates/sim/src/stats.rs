//! Measurement primitives for experiments.
//!
//! Every figure in the paper reduces to medians, tails (p99), means, and
//! time series of counters. This module provides:
//!
//! * [`Summary`] — a sample reservoir with exact quantiles, used for
//!   latency distributions (Figs. 4, 5a, 6, 11, 13, 16).
//! * [`Histogram`] — fixed-bin counts for PDF-style violin data.
//! * [`TimeSeries`] — `(t, value)` samples for load/active-task curves
//!   (Figs. 5b, 5c).
//! * [`Meter`] — windowed byte/event accounting for bandwidth figures
//!   (Figs. 3b, 14b, 17).

use std::cell::OnceCell;
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// A collection of scalar samples with exact order statistics.
///
/// Samples are stored raw (an experiment produces at most a few hundred
/// thousand), so quantiles are exact rather than sketched. The buffer
/// keeps insertion order; quantile queries build a sorted copy once and
/// cache it until the next mutation, so repeated percentile reads (the
/// common figure-table pattern) sort at most once and never need `&mut`.
/// The mean is maintained as a running sum in insertion order — exactly
/// the fold `samples.iter().sum()` would produce, so results are
/// bit-identical to summing on demand.
///
/// # Examples
///
/// ```rust
/// use hivemind_sim::stats::Summary;
///
/// let mut s = Summary::new();
/// for v in 1..=100 {
///     s.record(v as f64);
/// }
/// assert_eq!(s.len(), 100);
/// assert!((s.quantile(0.5) - 50.0).abs() <= 1.0);
/// assert!((s.mean() - 50.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Samples in insertion order (never reordered by queries).
    samples: Vec<f64>,
    /// Sorted copy, built by the first quantile query after a mutation.
    sorted: OnceCell<Vec<f64>>,
    /// Running sum of `samples` in insertion order.
    sum: f64,
}

impl PartialEq for Summary {
    fn eq(&self, other: &Self) -> bool {
        self.samples == other.samples
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite — a NaN in a latency stream is
    /// always an upstream bug and should fail loudly.
    pub fn record(&mut self, value: f64) {
        assert!(value.is_finite(), "summary sample must be finite");
        self.samples.push(value);
        self.sum += value;
        // A hot sorted cache stays hot: one positional insert is far
        // cheaper than the clone-and-resort a later quantile would pay.
        // (The straggler monitor interleaves record/quantile per
        // completion — invalidating here would make that pass quadratic
        // in allocations.)
        if let Some(sorted) = self.sorted.get_mut() {
            let i = sorted.partition_point(|x| x.total_cmp(&value).is_lt());
            sorted.insert(i, value);
        }
    }

    /// Records a duration, in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum / self.samples.len() as f64
        }
    }

    /// Population standard deviation; `0.0` when empty.
    pub fn std_dev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self.samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>()
            / self.samples.len() as f64;
        var.sqrt()
    }

    /// The sorted cache, built on first use after a mutation.
    fn sorted(&self) -> &[f64] {
        self.sorted.get_or_init(|| {
            let mut v = self.samples.clone();
            v.sort_by(f64::total_cmp);
            v
        })
    }

    /// Exact `q`-quantile (nearest-rank); `0.0` when empty.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= q <= 1.0`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.samples.is_empty() {
            return 0.0;
        }
        let sorted = self.sorted();
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        sorted[rank - 1]
    }

    /// Median (p50).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// 99th percentile — the paper's tail-latency metric.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Smallest sample; `0.0` when empty.
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
            .pipe_finite()
    }

    /// Largest sample; `0.0` when empty.
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .pipe_finite()
    }

    /// All samples, in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Merges another summary into this one.
    ///
    /// When both sides already have a hot sorted cache the caches are
    /// two-way merged in O(n + m), so a percentile query on the result
    /// does not re-sort. The running sum is extended sample-by-sample in
    /// buffer order, matching an on-demand `iter().sum()` bit-for-bit.
    pub fn merge(&mut self, other: &Summary) {
        for &v in &other.samples {
            self.sum += v;
        }
        let merged_cache = match (self.sorted.get(), other.sorted.get()) {
            (Some(a), Some(b)) => {
                let mut m = Vec::with_capacity(a.len() + b.len());
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    if a[i].total_cmp(&b[j]).is_le() {
                        m.push(a[i]);
                        i += 1;
                    } else {
                        m.push(b[j]);
                        j += 1;
                    }
                }
                m.extend_from_slice(&a[i..]);
                m.extend_from_slice(&b[j..]);
                Some(m)
            }
            _ => None,
        };
        self.samples.extend_from_slice(&other.samples);
        self.sorted.take();
        if let Some(m) = merged_cache {
            let _ = self.sorted.set(m);
        }
    }

    /// Builds a [`Histogram`] of the samples with `bins` equal-width bins
    /// spanning `[min, max]`.
    pub fn histogram(&self, bins: usize) -> Histogram {
        Histogram::from_samples(&self.samples, bins)
    }
}

trait PipeFinite {
    fn pipe_finite(self) -> f64;
}
impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} p50={:.4} p99={:.4}",
            self.len(),
            self.mean(),
            self.median(),
            self.p99()
        )
    }
}

/// Order-preserving bijection from `f64` to `u64`: `key_of(a) <= key_of(b)`
/// iff `a.total_cmp(&b).is_le()`.
fn key_of(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 0 {
        b | (1 << 63)
    } else {
        !b
    }
}

fn val_of(k: u64) -> f64 {
    f64::from_bits(if k >> 63 == 1 { k & !(1 << 63) } else { !k })
}

/// A running fixed-quantile estimator with *exact* order statistics.
///
/// [`Summary`] is the right tool when all samples arrive before the first
/// quantile query: recording is an O(1) push and the sort happens once.
/// But a monitor that interleaves `record` and `quantile` per event (the
/// straggler detector does exactly that) keeps `Summary`'s sorted cache
/// hot, turning every record into an O(n) positional insert — quadratic
/// over a run. This tracker answers the same nearest-rank quantile in
/// O(log n) per operation by holding the multiset split in two binary
/// heaps at the rank boundary: `low` (a max-heap) holds exactly the
/// `ceil(q·n)` smallest samples, so the current quantile is always
/// `low`'s root. Heaps rather than ordered maps because both are
/// `Vec`-backed: past their high-water capacity, recording a sample
/// never touches the allocator, which keeps the straggler monitor off
/// the engine's steady-state allocation budget.
///
/// Values returned are bit-identical to `Summary::quantile(q)` over the
/// same samples.
///
/// # Examples
///
/// ```rust
/// use hivemind_sim::stats::{QuantileTracker, Summary};
///
/// let mut t = QuantileTracker::new(0.90);
/// let mut s = Summary::new();
/// for v in [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0] {
///     t.record(v);
///     s.record(v);
///     assert_eq!(t.quantile(), s.quantile(0.90));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct QuantileTracker {
    q: f64,
    /// Max-heap of the `ceil(q·len)` smallest sample keys.
    low: std::collections::BinaryHeap<u64>,
    /// Min-heap of every remaining sample key.
    high: std::collections::BinaryHeap<std::cmp::Reverse<u64>>,
    len: usize,
}

impl QuantileTracker {
    /// Creates a tracker for the `q`-quantile.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= q <= 1.0`.
    pub fn new(q: f64) -> Self {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        QuantileTracker {
            q,
            low: std::collections::BinaryHeap::new(),
            high: std::collections::BinaryHeap::new(),
            len: 0,
        }
    }

    /// Nearest rank (1-indexed) of the tracked quantile at count `n` —
    /// the same formula [`Summary::quantile`] uses.
    fn rank(&self, n: usize) -> usize {
        ((self.q * n as f64).ceil() as usize).clamp(1, n)
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn record(&mut self, value: f64) {
        assert!(value.is_finite(), "quantile sample must be finite");
        let k = key_of(value);
        self.len += 1;
        let fits_low = self.low.peek().is_none_or(|&max| k <= max);
        if fits_low {
            self.low.push(k);
        } else {
            self.high.push(std::cmp::Reverse(k));
        }
        // The target rank moves by at most one per insert, so each loop
        // runs at most once.
        let target = self.rank(self.len);
        while self.low.len() > target {
            let k = self.low.pop().expect("low non-empty");
            self.high.push(std::cmp::Reverse(k));
        }
        while self.low.len() < target {
            let std::cmp::Reverse(k) = self.high.pop().expect("high non-empty");
            self.low.push(k);
        }
    }

    /// Records a duration, in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The current exact nearest-rank quantile; `0.0` when empty.
    pub fn quantile(&self) -> f64 {
        match self.low.peek() {
            Some(&k) => val_of(k),
            None => 0.0,
        }
    }
}

/// Fixed-bin histogram over `[min, max]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Builds a histogram from raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn from_samples(samples: &[f64], bins: usize) -> Histogram {
        assert!(bins > 0, "histogram needs at least one bin");
        if samples.is_empty() {
            return Histogram {
                min: 0.0,
                max: 0.0,
                counts: vec![0; bins],
            };
        }
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut counts = vec![0u64; bins];
        let width = (max - min).max(f64::MIN_POSITIVE);
        for &s in samples {
            let idx = (((s - min) / width) * bins as f64) as usize;
            counts[idx.min(bins - 1)] += 1;
        }
        Histogram { min, max, counts }
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The `(low, high)` range covered.
    pub fn range(&self) -> (f64, f64) {
        (self.min, self.max)
    }

    /// Total number of samples binned.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The center value of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len());
        let width = (self.max - self.min) / self.counts.len() as f64;
        self.min + width * (i as f64 + 0.5)
    }
}

/// A time-stamped series of scalar observations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends an observation.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous observation (series must be
    /// chronological).
    pub fn record(&mut self, t: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "time series must be chronological");
        }
        self.points.push((t, value));
    }

    /// The raw points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last value at or before `t` (step interpolation), or `None`
    /// if `t` precedes the first observation.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.points.partition_point(|&(pt, _)| pt <= t) {
            0 => None,
            idx => Some(self.points[idx - 1].1),
        }
    }

    /// Resamples the series at a fixed period over `[start, end]`,
    /// carrying the last value forward (0.0 before the first point).
    pub fn resample(
        &self,
        start: SimTime,
        end: SimTime,
        period: SimDuration,
    ) -> Vec<(SimTime, f64)> {
        assert!(period > SimDuration::ZERO);
        let mut out = Vec::new();
        let mut t = start;
        while t <= end {
            out.push((t, self.value_at(t).unwrap_or(0.0)));
            t += period;
        }
        out
    }

    /// Maximum observed value; `0.0` when empty.
    pub fn max(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::NEG_INFINITY, f64::max)
            .pipe_finite()
    }
}

/// Windowed throughput meter: counts quantities (bytes, requests) and
/// reports per-window rates, e.g. network bandwidth in MB/s.
#[derive(Debug, Clone, PartialEq)]
pub struct Meter {
    window: SimDuration,
    /// Completed window totals.
    windows: Vec<f64>,
    current_window_start: SimTime,
    current_total: f64,
    grand_total: f64,
}

impl Meter {
    /// Creates a meter with the given aggregation window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(window > SimDuration::ZERO, "meter window must be positive");
        Meter {
            window,
            windows: Vec::new(),
            current_window_start: SimTime::ZERO,
            current_total: 0.0,
            grand_total: 0.0,
        }
    }

    /// Adds `amount` at time `t`. Windows roll over automatically; skipped
    /// windows count as zero.
    pub fn add(&mut self, t: SimTime, amount: f64) {
        self.roll_to(t);
        self.current_total += amount;
        self.grand_total += amount;
    }

    fn roll_to(&mut self, t: SimTime) {
        while t >= self.current_window_start + self.window {
            self.windows.push(self.current_total);
            self.current_total = 0.0;
            self.current_window_start += self.window;
        }
    }

    /// Closes the meter at `end`, flushing any in-progress partial window.
    ///
    /// A partial window is reported at full-window granularity; callers
    /// that need exact tail accounting should align `end` to the window.
    pub fn finish(&mut self, end: SimTime) {
        self.roll_to(end);
        if end > self.current_window_start {
            self.windows.push(self.current_total);
            self.current_total = 0.0;
            self.current_window_start = end;
        }
    }

    /// Total amount across all time.
    pub fn total(&self) -> f64 {
        self.grand_total
    }

    /// Per-second rates of each completed window.
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let secs = self.window.as_secs_f64();
        self.windows.iter().map(|w| w / secs).collect()
    }

    /// Mean per-second rate across completed windows; `0.0` if none.
    pub fn mean_rate(&self) -> f64 {
        if self.windows.is_empty() {
            return 0.0;
        }
        // Same per-window division then left-to-right sum as iterating
        // `rates_per_sec()`, without materializing the rate vector.
        let secs = self.window.as_secs_f64();
        self.windows.iter().map(|w| w / secs).sum::<f64>() / self.windows.len() as f64
    }

    /// 99th-percentile per-second window rate.
    pub fn p99_rate(&self) -> f64 {
        let s: Summary = self.rates_per_sec().into_iter().collect();
        s.p99()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_quantiles_exact() {
        let s: Summary = (1..=1000).map(|v| v as f64).collect();
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 1000.0);
        assert_eq!(s.median(), 500.0);
        assert_eq!(s.p99(), 990.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 1000.0);
    }

    #[test]
    fn summary_empty_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn summary_merge_combines() {
        let mut a: Summary = vec![1.0, 2.0].into_iter().collect();
        let b: Summary = vec![3.0, 4.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert!((a.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn summary_rejects_nan() {
        Summary::new().record(f64::NAN);
    }

    #[test]
    fn summary_std_dev() {
        let s: Summary = vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_cover_samples() {
        let samples: Vec<f64> = (0..100).map(|v| v as f64).collect();
        let h = Histogram::from_samples(&samples, 10);
        assert_eq!(h.total(), 100);
        assert!(h.counts().iter().all(|&c| c == 10));
        assert_eq!(h.range(), (0.0, 99.0));
        let c0 = h.bin_center(0);
        assert!(c0 > 0.0 && c0 < 99.0 / 10.0);
    }

    #[test]
    fn histogram_empty_and_single() {
        let h = Histogram::from_samples(&[], 4);
        assert_eq!(h.total(), 0);
        let h = Histogram::from_samples(&[5.0, 5.0], 4);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn time_series_step_interpolation() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs(1), 10.0);
        ts.record(SimTime::from_secs(3), 30.0);
        assert_eq!(ts.value_at(SimTime::ZERO), None);
        assert_eq!(ts.value_at(SimTime::from_secs(1)), Some(10.0));
        assert_eq!(ts.value_at(SimTime::from_secs(2)), Some(10.0));
        assert_eq!(ts.value_at(SimTime::from_secs(5)), Some(30.0));
        assert_eq!(ts.max(), 30.0);
    }

    #[test]
    fn time_series_resample() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs(1), 1.0);
        ts.record(SimTime::from_secs(2), 2.0);
        let r = ts.resample(
            SimTime::ZERO,
            SimTime::from_secs(3),
            SimDuration::from_secs(1),
        );
        let vals: Vec<f64> = r.iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, vec![0.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "chronological")]
    fn time_series_rejects_out_of_order() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs(2), 1.0);
        ts.record(SimTime::from_secs(1), 1.0);
    }

    #[test]
    fn quantile_tracker_matches_summary_exactly() {
        // Deterministic pseudo-random stream (SplitMix64) with forced
        // duplicates and a wide dynamic range; the tracker must agree
        // with Summary's nearest-rank quantile bit-for-bit after every
        // single insert, at several q values.
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let mut t = QuantileTracker::new(q);
            let mut s = Summary::new();
            let mut x: u64 = 0x9e3779b97f4a7c15;
            for i in 0..500 {
                x = x
                    .wrapping_mul(0xbf58476d1ce4e5b9)
                    .wrapping_add(0x2545f4914f6cdd1d);
                let v = if i % 7 == 0 {
                    2.5 // forced duplicate
                } else {
                    (x >> 11) as f64 / (1u64 << 40) as f64
                };
                t.record(v);
                s.record(v);
                assert_eq!(
                    t.quantile().to_bits(),
                    s.quantile(q).to_bits(),
                    "q={q} i={i}"
                );
                let _ = s.quantile(q); // keep Summary's sorted cache hot
            }
            assert_eq!(t.len(), s.len());
        }
    }

    #[test]
    fn quantile_tracker_handles_negatives_and_zero() {
        let mut t = QuantileTracker::new(0.5);
        let mut s = Summary::new();
        for v in [-3.5, 0.0, -0.0, 7.25, -1.0, 2.0, -3.5] {
            t.record(v);
            s.record(v);
            assert_eq!(t.quantile().to_bits(), s.quantile(0.5).to_bits());
        }
    }

    #[test]
    fn quantile_tracker_empty_is_zero() {
        let t = QuantileTracker::new(0.9);
        assert!(t.is_empty());
        assert_eq!(t.quantile(), 0.0);
    }

    #[test]
    fn meter_windows_and_rates() {
        let mut m = Meter::new(SimDuration::from_secs(1));
        m.add(SimTime::from_secs(0), 100.0);
        m.add(SimTime::from_secs(0) + SimDuration::from_millis(500), 100.0);
        m.add(SimTime::from_secs(2) + SimDuration::from_millis(100), 50.0);
        m.finish(SimTime::from_secs(3));
        // Windows: [0,1)=200, [1,2)=0, [2,3)=50.
        assert_eq!(m.rates_per_sec(), vec![200.0, 0.0, 50.0]);
        assert!((m.mean_rate() - 250.0 / 3.0).abs() < 1e-9);
        assert_eq!(m.total(), 250.0);
        assert_eq!(m.p99_rate(), 200.0);
    }
}
